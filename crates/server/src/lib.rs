//! `panoramad` — the persistent analysis service.
//!
//! The `panorama` CLI pays the full parse→analyze→report pipeline per
//! invocation. This crate keeps the analyzer resident and turns it into
//! a request/response service: newline-delimited JSON requests arrive on
//! stdin (or a Unix socket), responses carry the same report schema the
//! CLI's `--json` flag prints (DESIGN.md §4d). Three things live behind
//! the protocol:
//!
//! * a **content-addressed routine-summary cache** ([`dataflow::cache`])
//!   shared across requests — re-analyzing an unchanged program, or a
//!   program sharing routines with an earlier one, replays summaries
//!   instead of recomputing them, byte-identically;
//! * a **concurrent scheduler** ([`scheduler`]) — independent requests
//!   run in parallel on `--jobs` workers, and a multi-root call DAG
//!   inside one request is warmed root-parallel into the shared cache;
//!   responses are emitted in request order regardless of completion
//!   order;
//! * a **metrics layer** ([`metrics`]) — phase timings, cache hit/miss
//!   counters, queue gauges and peak GAR state, snapshotted by
//!   `{"cmd": "stats"}` and dumped at shutdown under `--metrics`.

#![warn(missing_docs)]

pub mod flight;
pub mod metrics;
pub mod protocol;
pub mod scheduler;

use dataflow::{
    CacheCounters, DiskCache, DiskTierSnapshot, MemoryCache, SummaryCache, TieredCache,
};
use flight::{FlightRecord, FlightRecorder};
use metrics::Metrics;
use panorama::{driver, FuelLimits};
use protocol::{
    dump_response, error_response, health_response, metrics_response, ok_response, panic_response,
    stats_response, traced_response, Request,
};
use scheduler::{Emitter, Job, Queue};
use serde::Value;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;
use trace::ledger;

/// Largest accepted request line, in bytes. A longer line is consumed
/// (so the stream stays framed) and answered with an in-order error
/// response instead of growing an unbounded buffer.
pub const MAX_LINE_BYTES: usize = 8 * 1024 * 1024;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads analyzing requests concurrently.
    pub jobs: usize,
    /// Summary cache: `None` disables caching, `Some(None)` is
    /// unbounded, `Some(Some(n))` keeps at most `n` routine entries.
    pub cache: Option<Option<usize>>,
    /// Persistent cache directory: when set (and `cache` is enabled),
    /// the in-memory cache is backed by a crash-safe disk tier shared
    /// across daemon restarts (see [`dataflow::panostore`]). IO faults
    /// degrade the tier to memory-only; they never fail requests.
    pub cache_dir: Option<std::path::PathBuf>,
    /// Byte budget for the disk tier (`None` = panostore default).
    pub cache_budget_bytes: Option<u64>,
    /// Daemon-wide analysis budgets; per-request `fuel`/`timeout_ms`
    /// fields override them field by field. The default carries a
    /// 60-second wall-clock deadline so one pathological program
    /// degrades to a conservative report instead of wedging a worker.
    pub limits: FuelLimits,
    /// Post-mortem file: when set, the flight-recorder ring is dumped
    /// here whenever a request ends in `internal_panic` or a degraded
    /// outcome, and on `{"cmd": "dump"}`. The file always holds the
    /// most recent dump.
    pub postmortem: Option<std::path::PathBuf>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            jobs: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            cache: Some(None),
            cache_dir: None,
            cache_budget_bytes: None,
            limits: FuelLimits {
                deadline_ms: Some(60_000),
                ..FuelLimits::unlimited()
            },
            postmortem: None,
        }
    }
}

/// The resident service: one summary cache and one metrics ledger,
/// shared by every request (and every connection in socket mode).
pub struct Daemon {
    jobs: usize,
    cache: Option<Arc<dyn SummaryCache>>,
    limits: FuelLimits,
    metrics: Arc<Metrics>,
    trace_registry: Option<Arc<trace::Registry>>,
    flight: FlightRecorder,
    postmortem: Option<std::path::PathBuf>,
    start: Instant,
}

impl Daemon {
    /// Builds a daemon from a configuration.
    pub fn new(config: Config) -> Daemon {
        let cache: Option<Arc<dyn SummaryCache>> = config.cache.map(|cap| {
            let memory = match cap {
                None => MemoryCache::new(),
                Some(n) => MemoryCache::with_capacity(n),
            };
            match &config.cache_dir {
                // `DiskCache::open` is infallible by contract: a
                // poisoned or unwritable directory yields a disabled
                // tier (visible in stats as `disk_disabled`), and the
                // daemon serves memory-only, byte-identically.
                Some(dir) => {
                    let disk = Arc::new(DiskCache::open(dir.clone(), config.cache_budget_bytes));
                    Arc::new(TieredCache::new(memory, disk)) as Arc<dyn SummaryCache>
                }
                None => Arc::new(memory) as Arc<dyn SummaryCache>,
            }
        });
        Daemon {
            jobs: config.jobs.max(1),
            cache,
            limits: config.limits,
            metrics: Arc::new(Metrics::default()),
            trace_registry: None,
            flight: FlightRecorder::default(),
            postmortem: config.postmortem,
            start: Instant::now(),
        }
    }

    /// The flight recorder (the `{"cmd": "dump"}` payload).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Attaches a span-trace registry: every worker records the
    /// requests it serves on its own process track, aligned to the
    /// registry's epoch, for a `--trace-out` Chrome trace dump at
    /// shutdown (DESIGN.md §4f).
    pub fn with_trace_registry(mut self, registry: Arc<trace::Registry>) -> Daemon {
        self.trace_registry = Some(registry);
        self
    }

    /// The daemon's metric counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Cache counter snapshot (`None` when caching is disabled).
    pub fn cache_counters(&self) -> Option<CacheCounters> {
        self.cache.as_ref().map(|c| c.counters())
    }

    /// Disk-tier snapshot (`None` without `--cache-dir`).
    pub fn disk_snapshot(&self) -> Option<DiskTierSnapshot> {
        self.cache.as_ref().and_then(|c| c.disk())
    }

    /// Serves one NDJSON stream: reads request lines from `input` until
    /// EOF or `{"cmd": "shutdown"}`, writes response lines to `output`
    /// in request order. Returns `true` if a shutdown command ended the
    /// stream. Blank lines are skipped; unparsable lines get an
    /// `{"ok": false}` response in their stream position.
    pub fn serve<R: BufRead, W: Write + Send>(
        &self,
        mut input: R,
        output: W,
    ) -> std::io::Result<bool> {
        let queue: Queue<Result<Request, String>> = Queue::default();
        let emitter = Emitter::new(output);
        let mut shutdown = false;
        let scope_result = crossbeam::thread::scope(|scope| {
            let (queue_ref, emitter_ref) = (&queue, &emitter);
            let workers: Vec<_> = (0..self.jobs)
                .map(|w| scope.spawn(move |_| self.worker(w, queue_ref, emitter_ref)))
                .collect();
            let mut read_error = None;
            let mut seq = 0u64;
            loop {
                let payload = match read_line_capped(&mut input, MAX_LINE_BYTES) {
                    Ok(None) => break,
                    Err(e) => {
                        read_error = Some(e);
                        break;
                    }
                    Ok(Some(Err(msg))) => Err(msg),
                    Ok(Some(Ok(line))) => {
                        if line.trim().is_empty() {
                            continue;
                        }
                        let payload = protocol::parse_request(&line);
                        if matches!(payload, Ok(Request::Shutdown)) {
                            shutdown = true;
                            break;
                        }
                        payload
                    }
                };
                self.metrics.enqueued();
                queue.push(Job { seq, payload });
                seq += 1;
            }
            queue.close();
            for w in workers {
                // A worker that somehow died through both panic
                // barriers only costs its in-flight responses, which
                // `finish` below synthesizes.
                let _ = w.join();
            }
            (read_error, seq)
        });
        // The scope errs only if a worker thread died through both
        // panic barriers (`worker` catches its loop, the loop catches
        // each job). Rather than poisoning the daemon with a panic,
        // surface it as a stream error — socket mode drops just this
        // connection, stdin mode exits with a message.
        let (io_err, total) = match scope_result {
            Ok(v) => v,
            Err(_) => {
                return Err(std::io::Error::other(
                    "scheduler scope failed: worker thread died outside the panic barriers",
                ))
            }
        };
        if let Some(e) = io_err {
            return Err(e);
        }
        let (_, dropped) = emitter.finish(total, |_| {
            panic_response(&Value::Null, "response dropped: worker died mid-request")
        })?;
        for _ in &dropped {
            self.metrics.dequeued();
            self.metrics.record_failure();
        }
        Ok(shutdown)
    }

    /// Serves connections on a Unix socket, each as one NDJSON stream,
    /// until a connection sends `{"cmd": "shutdown"}`. Connections are
    /// accepted sequentially; concurrency lives in the per-stream worker
    /// pool. The socket file is removed first if it already exists, and
    /// removed again on return.
    pub fn serve_socket(&self, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        let result = loop {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(e) => break Err(e),
            };
            let reader = BufReader::new(stream.try_clone()?);
            match self.serve(reader, stream) {
                Ok(true) => break Ok(()),
                Ok(false) => {}
                // A dropped connection only kills that connection.
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => {}
                Err(e) => break Err(e),
            }
        };
        let _ = std::fs::remove_file(path);
        result
    }

    /// The outer worker shell: a respawn barrier around the job loop.
    /// The loop already isolates each job, so only faults in the
    /// scheduler path itself (notably the `sched` failpoint) land here;
    /// such a panic drops the in-flight job — `serve` synthesizes its
    /// response at `finish` — and the worker re-enters its loop.
    fn worker(
        &self,
        index: usize,
        queue: &Queue<Result<Request, String>>,
        emitter: &Emitter<impl Write>,
    ) {
        // Daemon-wide profiling (`--trace-out`): this worker records
        // every request it serves on its own collector, aligned to the
        // registry epoch so all worker tracks share one timeline.
        let scope = self
            .trace_registry
            .as_ref()
            .map(|reg| trace::CollectorScope::install(trace::Collector::with_epoch(reg.epoch())));
        loop {
            match catch_unwind(AssertUnwindSafe(|| self.worker_loop(queue, emitter))) {
                Ok(()) => break,
                Err(_) => self.metrics.record_panic(),
            }
        }
        if let (Some(reg), Some(scope)) = (self.trace_registry.as_ref(), scope) {
            if let Some(c) = scope.finish() {
                reg.adopt(&format!("worker-{index}"), c);
            }
        }
    }

    fn worker_loop(&self, queue: &Queue<Result<Request, String>>, emitter: &Emitter<impl Write>) {
        while let Some(job) = queue.pop() {
            failpoints::fail_point("sched", &job.seq.to_string());
            let id = request_id(&job.payload);
            let payload = job.payload;
            // Per-job isolation: a panic anywhere in the analysis
            // pipeline becomes a structured `internal_panic` response in
            // the job's stream position; the worker and its peers keep
            // serving.
            let line =
                catch_unwind(AssertUnwindSafe(|| self.handle(payload))).unwrap_or_else(|payload| {
                    self.metrics.record_panic();
                    self.metrics.record_failure();
                    panic_response(&id, &panic_message(payload.as_ref()))
                });
            self.metrics.dequeued();
            emitter.emit(job.seq, line);
        }
    }

    fn handle(&self, payload: Result<Request, String>) -> String {
        match payload {
            Ok(Request::Analyze {
                id,
                source,
                opts,
                oracle,
                limits,
                trace,
                emit,
                precision,
            }) => self.handle_analyze(&id, &source, opts, oracle, limits, trace, emit, precision),
            Ok(Request::Stats { id }) => stats_response(
                &id,
                self.metrics
                    .snapshot(self.cache_counters(), self.disk_snapshot()),
            ),
            Ok(Request::Metrics { id }) => metrics_response(
                &id,
                self.metrics
                    .prometheus(self.cache_counters(), self.disk_snapshot()),
            ),
            Ok(Request::Health { id }) => health_response(&id, self.health()),
            Ok(Request::Dump { id }) => {
                self.write_postmortem("dump command");
                dump_response(&id, self.flight.dump())
            }
            // Shutdown never reaches the queue (the reader stops on it).
            Ok(Request::Shutdown) => unreachable!("shutdown is handled by the reader"),
            Err(msg) => {
                self.metrics.record_failure();
                error_response(&Value::Null, &msg)
            }
        }
    }

    /// The `{"cmd": "health"}` payload: liveness, version, uptime,
    /// worker count and cache-tier state (including a disabled disk
    /// tier's reason — the signal operators page on).
    fn health(&self) -> Value {
        let cache = match self.cache_counters() {
            None => Value::Null,
            Some(c) => {
                let mut fields = vec![
                    ("enabled".to_string(), Value::Bool(true)),
                    ("entries".to_string(), Value::UInt(c.entries as u64)),
                ];
                match self.disk_snapshot() {
                    None => fields.push(("disk".to_string(), Value::Bool(false))),
                    Some(d) => {
                        fields.push(("disk".to_string(), Value::Bool(true)));
                        fields.push((
                            "disk_disabled".to_string(),
                            match &d.disabled {
                                None => Value::Null,
                                Some(reason) => Value::Str(reason.clone()),
                            },
                        ));
                    }
                }
                Value::Object(fields)
            }
        };
        Value::Object(vec![
            ("status".to_string(), Value::Str("ok".to_string())),
            (
                "version".to_string(),
                Value::Str(env!("CARGO_PKG_VERSION").to_string()),
            ),
            (
                "uptime_ms".to_string(),
                Value::UInt(self.start.elapsed().as_millis() as u64),
            ),
            ("jobs".to_string(), Value::UInt(self.jobs as u64)),
            ("cache".to_string(), cache),
            (
                "flight_records".to_string(),
                Value::UInt(self.flight.len() as u64),
            ),
        ])
    }

    /// Writes the flight-recorder ring to the `--postmortem` file, when
    /// one is configured. Dump failures are stderr diagnostics — they
    /// must never fail the request that triggered them.
    fn write_postmortem(&self, why: &str) {
        if let Some(path) = &self.postmortem {
            if let Err(e) = self.flight.dump_to_file(path) {
                eprintln!(
                    "panoramad: cannot write post-mortem ({why}) to {}: {e}",
                    path.display()
                );
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_analyze(
        &self,
        id: &Value,
        source: &str,
        opts: panorama::Options,
        oracle: bool,
        limits: FuelLimits,
        trace_req: bool,
        emit: bool,
        precision: bool,
    ) -> String {
        // Request budgets win field by field; unset fields inherit the
        // daemon defaults.
        let limits = limits.or(self.limits);
        // Result-constraining budgets bypass the cache entirely (the
        // analyzer refuses to mix budgeted and unbudgeted state), so
        // warming it would be wasted full-precision work. So do traced
        // and precision-accounted requests: both bypass the cache in
        // the driver to keep their span tree / precision report
        // deterministic, so warming would feed a cache the request
        // never reads.
        let determinism_bypass = trace_req || precision;
        if self.cache.is_some() && !limits.constrains_results() && !determinism_bypass {
            self.warm_call_dag_roots(source, opts);
        } else if self.cache.is_some() && determinism_bypass {
            self.metrics.record_trace_bypass();
        }
        let req = driver::Request {
            source,
            opts,
            oracle,
            limits,
            trace_spans: trace_req,
            emit,
            precision,
        };
        // Flight recording: every request runs under its own collector
        // and its own precision ledger, panic-safely — the guards
        // restore the worker's daemon-wide track even when the pipeline
        // unwinds. Catching the panic *here* (inside the worker's outer
        // barrier) is what lets the flight record and post-mortem dump
        // carry the spans and ledger of the failed request itself.
        let request_trace = RequestTrace::start();
        let ledger_scope = ledger::LedgerScope::install();
        let result = catch_unwind(AssertUnwindSafe(|| {
            driver::run_with_cache(&req, self.cache.clone())
        }));
        let request_ledger = ledger_scope.finish().unwrap_or_default();
        let collector = request_trace.finish();
        // Untraced requests still feed the worker's `--trace-out`
        // track: splice the per-request spans back in, shifted onto the
        // worker's epoch. Traced requests embed their tree in the
        // response instead (the long-standing bypass contract).
        if !trace_req {
            if let (Some(c), Some(mut worker)) = (collector.as_ref(), trace::uninstall()) {
                worker.splice(c);
                trace::install(worker);
            }
        }
        self.metrics
            .record_precision(request_ledger.events(), request_ledger.dropped());
        let spans = collector
            .as_ref()
            .map_or(Value::Null, |c| span_tree_value(&c.tree()));
        let mut record = FlightRecord {
            seq: 0,
            id: id.clone(),
            digest: flight::source_digest(source),
            source_bytes: source.len() as u64,
            outcome: String::new(),
            degrade_reason: None,
            error: None,
            events: request_ledger.events().to_vec(),
            events_dropped: request_ledger.dropped(),
            spans,
        };
        match result {
            Ok(Ok(out)) => {
                let degraded = out.analysis.degraded();
                if degraded {
                    self.metrics.record_degraded(out.analysis.degrade_reason);
                }
                self.metrics.record_analysis(
                    &out.analysis.times,
                    out.analysis.stats.peak_state_size,
                    oracle,
                );
                self.metrics.record_lints(&out.analysis.lints);
                record.degrade_reason = out.analysis.degrade_reason.map(|r| r.as_str().to_string());
                record.outcome =
                    if out.analysis.degrade_reason == Some(panorama::DegradeReason::Deadline) {
                        "timeout".to_string()
                    } else if degraded {
                        "degraded".to_string()
                    } else {
                        "ok".to_string()
                    };
                self.flight.record(record);
                if degraded {
                    self.write_postmortem("degraded analysis");
                }
                match (trace_req, collector) {
                    (true, Some(c)) => traced_response(id, out.json(), span_tree_value(&c.tree())),
                    _ => ok_response(id, out.json()),
                }
            }
            Ok(Err(e)) => {
                self.metrics.record_failure();
                record.outcome = "failed".to_string();
                record.error = Some(e.to_string());
                self.flight.record(record);
                error_response(id, &e.to_string())
            }
            Err(payload) => {
                self.metrics.record_panic();
                self.metrics.record_failure();
                let message = panic_message(payload.as_ref());
                record.outcome = "internal_panic".to_string();
                record.error = Some(message.clone());
                self.flight.record(record);
                self.write_postmortem("internal panic");
                panic_response(id, &message)
            }
        }
    }

    /// Intra-request parallelism: when a program's call DAG has several
    /// roots (routines nobody calls), each root's reachable subtree is
    /// summarized bottom-up into the shared cache on its own thread. The
    /// request's real analysis then replays every summary from the
    /// cache, so the emitted report stays byte-identical to a cold
    /// serial run. Pipeline errors are ignored here — the real analysis
    /// reports them in stream order.
    fn warm_call_dag_roots(&self, source: &str, opts: panorama::Options) {
        let Some(cache) = self.cache.as_ref() else {
            return;
        };
        let Ok(program) = fortran::parse_program(source) else {
            return;
        };
        let Ok(sema) = fortran::analyze(&program) else {
            return;
        };
        let Ok(graph) = hsg::build_hsg(&program) else {
            return;
        };
        let called: BTreeSet<&String> = sema.call_graph.values().flatten().collect();
        let roots: Vec<&String> = sema
            .bottom_up
            .iter()
            .filter(|r| !called.contains(r))
            .collect();
        if roots.len() < 2 {
            return;
        }
        let result = crossbeam::thread::scope(|scope| {
            for root in roots {
                let (program, sema, graph) = (&program, &sema, &graph);
                let cache = Arc::clone(cache);
                let metrics = Arc::clone(&self.metrics);
                scope.spawn(move |_| {
                    // Warming is best-effort: a panic here loses only
                    // this root's warm-up — the real analysis redoes
                    // the work under the per-job isolation barrier and
                    // reports the fault in stream position.
                    let warmed = catch_unwind(AssertUnwindSafe(|| {
                        let reach = reachable(&sema.call_graph, root);
                        let mut az =
                            dataflow::Analyzer::with_cache(program, sema, graph, opts, Some(cache));
                        // Bottom-up order keeps every summarization extent
                        // self-contained, so each routine becomes a cache
                        // entry (see `Analyzer::summarize_routine`).
                        for name in sema.bottom_up.iter().filter(|n| reach.contains(n.as_str())) {
                            az.summarize_routine(name);
                        }
                    }));
                    if warmed.is_err() {
                        metrics.record_panic();
                    }
                });
            }
        });
        // Unreachable with the catch_unwind above, but a scope failure
        // must not take the worker down for a best-effort warm-up.
        if result.is_err() {
            self.metrics.record_panic();
        }
    }
}

/// The `id` of a parsed request, for labeling a panic response when the
/// handler never got far enough to build one.
fn request_id(payload: &Result<Request, String>) -> Value {
    match payload {
        Ok(Request::Analyze { id, .. })
        | Ok(Request::Stats { id })
        | Ok(Request::Metrics { id })
        | Ok(Request::Health { id })
        | Ok(Request::Dump { id }) => id.clone(),
        _ => Value::Null,
    }
}

/// Swaps a fresh per-request collector onto the worker thread for a
/// `"trace": true` request, restoring whatever collector the worker had
/// (its daemon-wide `--trace-out` track) on drop — including through a
/// panic in the analysis, so one traced request can never eat its
/// worker's track.
struct RequestTrace {
    saved: Option<trace::Collector>,
    scope: Option<trace::CollectorScope>,
}

impl RequestTrace {
    fn start() -> RequestTrace {
        let saved = trace::uninstall();
        RequestTrace {
            saved,
            scope: Some(trace::CollectorScope::install(trace::Collector::new())),
        }
    }

    fn finish(mut self) -> Option<trace::Collector> {
        let collector = self.scope.take().and_then(trace::CollectorScope::finish);
        if let Some(saved) = self.saved.take() {
            trace::install(saved);
        }
        collector
    }
}

impl Drop for RequestTrace {
    fn drop(&mut self) {
        self.scope.take();
        if let Some(saved) = self.saved.take() {
            trace::install(saved);
        }
    }
}

/// Renders a span forest as the `"trace"` payload of a traced response:
/// `{"spans": [...]}`, each node carrying `name`, `start_us`, `dur_us`,
/// `counters`, `events` and `children` (DESIGN.md §4f).
fn span_tree_value(nodes: &[trace::SpanNode]) -> Value {
    Value::Object(vec![("spans".to_string(), span_nodes_value(nodes))])
}

fn span_nodes_value(nodes: &[trace::SpanNode]) -> Value {
    Value::Array(
        nodes
            .iter()
            .map(|n| {
                Value::Object(vec![
                    ("name".to_string(), Value::Str(n.name.clone())),
                    ("start_us".to_string(), Value::UInt(n.start_us)),
                    ("dur_us".to_string(), Value::UInt(n.dur_us)),
                    (
                        "counters".to_string(),
                        Value::Object(
                            n.counters
                                .iter()
                                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                                .collect(),
                        ),
                    ),
                    (
                        "events".to_string(),
                        Value::Array(
                            n.events
                                .iter()
                                .map(|e| {
                                    Value::Object(vec![
                                        ("at_us".to_string(), Value::UInt(e.at_us)),
                                        ("name".to_string(), Value::Str(e.name.clone())),
                                        ("detail".to_string(), Value::Str(e.detail.clone())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("children".to_string(), span_nodes_value(&n.children)),
                ])
            })
            .collect(),
    )
}

/// Renders a caught panic payload (`&str` and `String` payloads cover
/// everything `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Reads one newline-terminated line, enforcing `cap`. `Ok(None)` is
/// EOF; `Ok(Some(Err(msg)))` is an oversized or non-UTF-8 line that was
/// fully consumed (the stream stays framed) and should be answered with
/// `msg` in stream position.
fn read_line_capped<R: BufRead>(
    input: &mut R,
    cap: usize,
) -> std::io::Result<Option<Result<String, String>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped = 0usize;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            if buf.is_empty() && dropped == 0 {
                return Ok(None);
            }
            break;
        }
        let (take, consumed, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, pos + 1, true),
            None => (chunk.len(), chunk.len(), false),
        };
        if dropped == 0 && buf.len() + take <= cap {
            buf.extend_from_slice(&chunk[..take]);
        } else {
            dropped += take;
        }
        input.consume(consumed);
        if done {
            break;
        }
    }
    if dropped > 0 {
        return Ok(Some(Err(format!(
            "bad request: line exceeds the {cap} byte limit"
        ))));
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(
            Err("bad request: line is not valid UTF-8".to_string()),
        )),
    }
}

/// The set of routines reachable from `root` in the call graph.
fn reachable<'a>(
    call_graph: &'a std::collections::BTreeMap<String, BTreeSet<String>>,
    root: &'a str,
) -> BTreeSet<&'a str> {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![root];
    while let Some(r) = stack.pop() {
        if !seen.insert(r) {
            continue;
        }
        if let Some(callees) = call_graph.get(r) {
            stack.extend(callees.iter().map(String::as_str));
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"      PROGRAM t\n      REAL a(10)\n      INTEGER i\n      DO i = 1, 10\n        a(i) = 1.0\n      ENDDO\n      END\n"#;

    fn serve_lines(daemon: &Daemon, input: &str) -> Vec<Value> {
        let mut out = Vec::new();
        daemon
            .serve(std::io::Cursor::new(input.to_string()), &mut out)
            .unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect()
    }

    #[test]
    fn analyze_stats_and_errors_in_order() {
        // One worker: the metric assertions below need the error request
        // processed before the stats snapshot, not merely emitted first.
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\"}}\nnot json\n{}\n",
            r#"{"id": "s", "cmd": "stats"}"#
        );
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0].get("id").unwrap(), &Value::Int(1));
        assert_eq!(responses[0].get("ok").unwrap(), &Value::Bool(true));
        assert_eq!(
            responses[0]
                .get("report")
                .unwrap()
                .get("schema_version")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert_eq!(responses[1].get("ok").unwrap(), &Value::Bool(false));
        assert!(responses[1].get("id").unwrap().is_null());
        let stats = responses[2].get("stats").unwrap();
        assert_eq!(
            stats
                .get("requests")
                .unwrap()
                .get("failed")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn repeat_request_hits_cache() {
        // One worker: concurrent identical requests can all miss the
        // cold cache, so hit counting needs serial processing.
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let line = format!(r#"{{"id": 1, "source": "{SRC}"}}"#);
        let input = format!("{line}\n{line}\n{line}\n");
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[0], responses[1]);
        let counters = daemon.cache_counters().unwrap();
        assert!(counters.hits >= 2, "expected cache hits: {counters:?}");
    }

    #[test]
    fn traced_request_embeds_span_tree() {
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\", \"trace\": true}}\n{{\"id\": 2, \"source\": \"{SRC}\"}}\n"
        );
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].get("ok").unwrap(), &Value::Bool(true));
        assert!(responses[0].get("report").is_some());
        let spans = responses[0].get("trace").unwrap().get("spans").unwrap();
        let Value::Array(roots) = spans else {
            panic!("spans is not an array: {spans:?}");
        };
        let names: Vec<&str> = roots
            .iter()
            .filter_map(|n| n.get("name").and_then(Value::as_str))
            .collect();
        for want in ["parse", "sema", "hsg", "dataflow", "privatize"] {
            assert!(names.contains(&want), "missing {want} span in {names:?}");
        }
        // An untraced request carries no trace key.
        assert!(responses[1].get("trace").is_none());
    }

    #[test]
    fn metrics_command_returns_prometheus_text() {
        // One worker so the analysis lands in the counters before the
        // metrics snapshot runs.
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\"}}\n{}\n",
            r#"{"id": "m", "cmd": "metrics"}"#
        );
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses[1].get("ok").unwrap(), &Value::Bool(true));
        let text = responses[1]
            .get("metrics")
            .and_then(Value::as_str)
            .expect("metrics text");
        assert!(text.contains("panorama_requests_total{outcome=\"completed\"} 1\n"));
        assert!(text.contains("panorama_cache_hits_total"));
        assert!(text.contains(
            "panorama_phase_latency_microseconds_bucket{phase=\"dataflow\",le=\"+Inf\"} 1\n"
        ));
    }

    #[test]
    fn trace_registry_collects_worker_tracks() {
        let reg = Arc::new(trace::Registry::new());
        let daemon = Daemon::new(Config {
            jobs: 2,
            ..Config::default()
        })
        .with_trace_registry(Arc::clone(&reg));
        let input =
            format!("{{\"id\": 1, \"source\": \"{SRC}\"}}\n{{\"id\": 2, \"source\": \"{SRC}\"}}\n");
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses.len(), 2);
        let json = reg.chrome_trace();
        assert!(json.contains("\"process_name\""), "no process track");
        assert!(json.contains("worker-"), "no worker label");
        assert!(json.contains("\"parse\""), "no parse span");
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn health_command_reports_daemon_state() {
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\"}}\n{}\n",
            r#"{"id": "h", "cmd": "health"}"#
        );
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses[1].get("ok").unwrap(), &Value::Bool(true));
        let health = responses[1].get("health").unwrap();
        assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
        assert!(!health.get("version").unwrap().as_str().unwrap().is_empty());
        assert!(health.get("uptime_ms").unwrap().as_u64().is_some());
        assert_eq!(health.get("jobs").unwrap().as_u64(), Some(1));
        let cache = health.get("cache").unwrap();
        assert_eq!(cache.get("enabled").unwrap(), &Value::Bool(true));
        assert_eq!(cache.get("disk").unwrap(), &Value::Bool(false));
        // The analyze request before the health check left one record.
        assert_eq!(health.get("flight_records").unwrap().as_u64(), Some(1));
        // Without a cache the field is null, with a disk tier it carries
        // the disabled reason slot.
        let no_cache = Daemon::new(Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        });
        let responses = serve_lines(&no_cache, "{\"id\": 1, \"cmd\": \"health\"}\n");
        assert!(responses[0]
            .get("health")
            .unwrap()
            .get("cache")
            .unwrap()
            .is_null());
    }

    #[test]
    fn precision_request_attaches_report_and_counters() {
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\", \"precision\": true, \"fuel\": 1}}\n{}\n",
            r#"{"id": "s", "cmd": "stats"}"#
        );
        let responses = serve_lines(&daemon, &input);
        assert_eq!(responses[0].get("ok").unwrap(), &Value::Bool(true));
        let report = responses[0].get("report").unwrap();
        let precision = report.get("precision").expect("precision key in report");
        assert!(precision.get("precision_ratio").unwrap().as_str().is_some());
        let fuel_widen = precision
            .get("causes")
            .unwrap()
            .get("fuel_widen")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(fuel_widen > 0, "fuel-starved run must record widenings");
        // The always-on worker ledger feeds the daemon-wide counters.
        let stats_precision = responses[1].get("stats").unwrap().get("precision").unwrap();
        assert!(
            stats_precision
                .get("events")
                .unwrap()
                .get("fuel_widen")
                .unwrap()
                .as_u64()
                .unwrap()
                >= fuel_widen
        );
    }

    #[test]
    fn panic_lands_in_flight_record_and_postmortem_file() {
        if failpoints::env_active() {
            // Whole-binary FAILPOINTS injection owns the registry; the
            // targeted configuration below would fight it.
            return;
        }
        let postmortem =
            std::env::temp_dir().join(format!("panoledger-postmortem-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&postmortem);
        let daemon = Daemon::new(Config {
            jobs: 1,
            postmortem: Some(postmortem.clone()),
            ..Config::default()
        });
        // The analyze failpoint's argument is the routine name, so the
        // selector only fires for the sabotaged routine.
        failpoints::configure("analyze=panic(zzboom)");
        let sabotaged = r#"      PROGRAM zzboom\n      END\n"#;
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\"}}\n{{\"id\": 2, \"source\": \"{sabotaged}\"}}\n{}\n",
            r#"{"id": "d", "cmd": "dump"}"#
        );
        let responses = serve_lines(&daemon, &input);
        failpoints::clear();
        assert_eq!(responses[0].get("ok").unwrap(), &Value::Bool(true));
        assert_eq!(responses[1].get("ok").unwrap(), &Value::Bool(false));
        assert_eq!(
            responses[1]
                .get("error")
                .unwrap()
                .get("kind")
                .unwrap()
                .as_str(),
            Some("internal_panic")
        );
        // The dump command returns the ring: the healthy request, then
        // the panicked one with its identity preserved.
        let flight = responses[2].get("flight").unwrap();
        let records = flight.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("outcome").unwrap().as_str(), Some("ok"));
        let crashed = &records[1];
        assert_eq!(
            crashed.get("outcome").unwrap().as_str(),
            Some("internal_panic")
        );
        assert_eq!(crashed.get("id").unwrap(), &Value::Int(2));
        // The digest covers the JSON-decoded source (real newlines,
        // not the `\n` escapes in the request line).
        let decoded = sabotaged.replace("\\n", "\n");
        assert_eq!(
            crashed.get("digest").unwrap().as_str(),
            Some(flight::source_digest(&decoded).as_str())
        );
        assert!(crashed.get("error").unwrap().as_str().is_some());
        // The post-mortem file was written when the panic was caught
        // (before the dump command) and re-written by the dump; it
        // round-trips through JSON with the same outcome.
        let text = std::fs::read_to_string(&postmortem).expect("postmortem file");
        let parsed: Value = serde_json::from_str(&text).unwrap();
        let dumped = parsed.get("records").unwrap().as_array().unwrap();
        assert!(dumped
            .iter()
            .any(|r| r.get("outcome").unwrap().as_str() == Some("internal_panic")));
        let _ = std::fs::remove_file(&postmortem);
        // The worker survived: metrics recorded exactly one contained
        // panic and kept serving the dump command.
        assert_eq!(
            daemon
                .metrics()
                .panics
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn every_request_leaves_a_flight_record_with_spans() {
        let daemon = Daemon::new(Config {
            jobs: 1,
            ..Config::default()
        });
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\"}}\nnot json\n{{\"id\": \"d\", \"cmd\": \"dump\"}}\n"
        );
        let responses = serve_lines(&daemon, &input);
        // Unparsable lines never reach the analyzer, so only the
        // analyze request recorded.
        let records_value = responses[2]
            .get("flight")
            .unwrap()
            .get("records")
            .unwrap()
            .clone();
        let records = records_value.as_array().unwrap();
        assert_eq!(records.len(), 1);
        let rec = &records[0];
        assert_eq!(rec.get("outcome").unwrap().as_str(), Some("ok"));
        assert!(rec.get("source_bytes").unwrap().as_u64().unwrap() > 0);
        // The record carries the span tree even though the request was
        // untraced — that is what makes the post-mortem actionable.
        let spans = rec.get("spans").unwrap().get("spans").unwrap();
        let names: Vec<&str> = spans
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|n| n.get("name").and_then(Value::as_str))
            .collect();
        assert!(names.contains(&"dataflow"), "missing dataflow in {names:?}");
        assert!(rec.get("precision_events").unwrap().as_array().is_some());
    }

    #[test]
    fn shutdown_command_stops_stream() {
        let daemon = Daemon::new(Config::default());
        let mut out = Vec::new();
        let input = format!(
            "{{\"id\": 1, \"source\": \"{SRC}\"}}\n{}\n{}\n",
            r#"{"cmd": "shutdown"}"#, r#"{"id": 2, "cmd": "stats"}"#
        );
        let shutdown = daemon.serve(std::io::Cursor::new(input), &mut out).unwrap();
        assert!(shutdown);
        // The line after shutdown was never processed.
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 1);
    }

    #[test]
    fn reachable_walks_transitively() {
        let mut g = std::collections::BTreeMap::new();
        g.insert(
            "a".to_string(),
            ["b".to_string()].into_iter().collect::<BTreeSet<_>>(),
        );
        g.insert(
            "b".to_string(),
            ["c".to_string()].into_iter().collect::<BTreeSet<_>>(),
        );
        let r = reachable(&g, "a");
        assert_eq!(r, ["a", "b", "c"].into_iter().collect());
        assert_eq!(reachable(&g, "c"), ["c"].into_iter().collect());
    }
}
