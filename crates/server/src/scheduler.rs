//! The concurrent scheduler: a blocking work queue feeding a fixed pool
//! of worker threads, and an ordered emitter that buffers out-of-order
//! completions so responses leave in request order.
//!
//! Determinism contract: a client replaying the same request stream
//! reads byte-identical response lines whatever `--jobs` is — workers
//! race only on *when* a response is computed, never on where it lands
//! in the output or what it contains (analysis reports are pure, and
//! cached-summary replays are byte-identical to cold runs).

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Condvar, Mutex};

/// A unit of scheduled work: a request's sequence number plus its
/// payload, produced by the reader thread.
pub struct Job<T> {
    /// Position in the request stream; responses are emitted in this
    /// order.
    pub seq: u64,
    /// The parsed request (or the parse error to report).
    pub payload: T,
}

struct QueueState<T> {
    jobs: VecDeque<Job<T>>,
    closed: bool,
}

/// A blocking MPMC work queue. `pop` parks until a job arrives or the
/// queue is closed and drained.
pub struct Queue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }
}

impl<T> Queue<T> {
    /// Enqueues a job.
    pub fn push(&self, job: Job<T>) {
        let mut state = self.state.lock().expect("queue lock");
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Marks the stream finished; blocked and future `pop`s return
    /// `None` once the backlog drains.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Takes the next job, blocking while the queue is open and empty.
    pub fn pop(&self) -> Option<Job<T>> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }
}

struct EmitState<W> {
    next_seq: u64,
    pending: BTreeMap<u64, String>,
    out: W,
    error: Option<std::io::Error>,
}

/// Reorders worker output back into request order. Line `seq` is held
/// until every line before it has been written.
pub struct Emitter<W: Write> {
    state: Mutex<EmitState<W>>,
}

impl<W: Write> Emitter<W> {
    /// Wraps a writer; emission starts at sequence number 0.
    pub fn new(out: W) -> Emitter<W> {
        Emitter {
            state: Mutex::new(EmitState {
                next_seq: 0,
                pending: BTreeMap::new(),
                out,
                error: None,
            }),
        }
    }

    /// Hands over the response line for `seq`, writing it and any
    /// now-unblocked successors. I/O errors are remembered and returned
    /// by [`Emitter::finish`] (workers cannot usefully handle them).
    pub fn emit(&self, seq: u64, line: String) {
        let mut state = self.state.lock().expect("emitter lock");
        state.pending.insert(seq, line);
        loop {
            let next = state.next_seq;
            let Some(line) = state.pending.remove(&next) else {
                break;
            };
            state.next_seq += 1;
            if state.error.is_some() {
                continue;
            }
            let res = writeln!(state.out, "{line}").and_then(|()| state.out.flush());
            if let Err(e) = res {
                state.error = Some(e);
            }
        }
    }

    /// Tears down the emitter, returning the writer or the first write
    /// error. Pending lines (impossible unless a worker died) are
    /// dropped.
    pub fn finish(self) -> std::io::Result<W> {
        let state = self.state.into_inner().expect("emitter lock");
        match state.error {
            Some(e) => Err(e),
            None => Ok(state.out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_drains_after_close() {
        let q: Queue<u32> = Queue::default();
        q.push(Job { seq: 0, payload: 1 });
        q.push(Job { seq: 1, payload: 2 });
        q.close();
        assert_eq!(q.pop().map(|j| j.payload), Some(1));
        assert_eq!(q.pop().map(|j| j.payload), Some(2));
        assert!(q.pop().is_none());
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let q: std::sync::Arc<Queue<u32>> = std::sync::Arc::new(Queue::default());
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|j| j.payload));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(Job { seq: 0, payload: 9 });
        assert_eq!(h.join().unwrap(), Some(9));
    }

    #[test]
    fn emitter_reorders_out_of_order_completions() {
        let em = Emitter::new(Vec::new());
        em.emit(2, "third".to_string());
        em.emit(0, "first".to_string());
        em.emit(1, "second".to_string());
        let out = em.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "first\nsecond\nthird\n");
    }
}
