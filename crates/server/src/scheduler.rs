//! The concurrent scheduler: a blocking work queue feeding a fixed pool
//! of worker threads, and an ordered emitter that buffers out-of-order
//! completions so responses leave in request order.
//!
//! Determinism contract: a client replaying the same request stream
//! reads byte-identical response lines whatever `--jobs` is — workers
//! race only on *when* a response is computed, never on where it lands
//! in the output or what it contains (analysis reports are pure, and
//! cached-summary replays are byte-identical to cold runs).

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the guard when a previous holder panicked.
/// Every structure in this module is a plain value store — a panic
/// mid-update cannot leave it logically torn — so poisoning is noise:
/// shrugging it off is what lets the daemon outlive a crashed worker.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A unit of scheduled work: a request's sequence number plus its
/// payload, produced by the reader thread.
pub struct Job<T> {
    /// Position in the request stream; responses are emitted in this
    /// order.
    pub seq: u64,
    /// The parsed request (or the parse error to report).
    pub payload: T,
}

struct QueueState<T> {
    jobs: VecDeque<Job<T>>,
    closed: bool,
}

/// A blocking MPMC work queue. `pop` parks until a job arrives or the
/// queue is closed and drained.
pub struct Queue<T> {
    state: Mutex<QueueState<T>>,
    ready: Condvar,
}

impl<T> Default for Queue<T> {
    fn default() -> Self {
        Queue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }
}

impl<T> Queue<T> {
    /// Enqueues a job.
    pub fn push(&self, job: Job<T>) {
        let mut state = lock_recover(&self.state);
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Marks the stream finished; blocked and future `pop`s return
    /// `None` once the backlog drains.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Takes the next job, blocking while the queue is open and empty.
    pub fn pop(&self) -> Option<Job<T>> {
        let mut state = lock_recover(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct EmitState<W> {
    next_seq: u64,
    pending: BTreeMap<u64, String>,
    out: W,
    error: Option<std::io::Error>,
}

/// Reorders worker output back into request order. Line `seq` is held
/// until every line before it has been written.
pub struct Emitter<W: Write> {
    state: Mutex<EmitState<W>>,
}

impl<W: Write> Emitter<W> {
    /// Wraps a writer; emission starts at sequence number 0.
    pub fn new(out: W) -> Emitter<W> {
        Emitter {
            state: Mutex::new(EmitState {
                next_seq: 0,
                pending: BTreeMap::new(),
                out,
                error: None,
            }),
        }
    }

    /// Hands over the response line for `seq`, writing it and any
    /// now-unblocked successors. I/O errors are remembered and returned
    /// by [`Emitter::finish`] (workers cannot usefully handle them).
    pub fn emit(&self, seq: u64, line: String) {
        let mut state = lock_recover(&self.state);
        state.pending.insert(seq, line);
        loop {
            let next = state.next_seq;
            let Some(line) = state.pending.remove(&next) else {
                break;
            };
            state.next_seq += 1;
            if state.error.is_some() {
                continue;
            }
            let res = writeln!(state.out, "{line}").and_then(|()| state.out.flush());
            if let Err(e) = res {
                state.error = Some(e);
            }
        }
    }

    /// Tears down the emitter after `expected` lines were scheduled.
    /// Sequence numbers that never arrived — a worker died between
    /// popping the job and emitting its response — get a line from
    /// `synthesize`, so the client still sees exactly one in-order
    /// response per request. Returns the writer plus the seqs that had
    /// to be synthesized, or the first write error.
    pub fn finish(
        self,
        expected: u64,
        synthesize: impl Fn(u64) -> String,
    ) -> std::io::Result<(W, Vec<u64>)> {
        let mut state = self
            .state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut synthesized = Vec::new();
        for seq in state.next_seq..expected {
            let line = match state.pending.remove(&seq) {
                Some(line) => line,
                None => {
                    synthesized.push(seq);
                    synthesize(seq)
                }
            };
            if state.error.is_none() {
                let res = writeln!(state.out, "{line}").and_then(|()| state.out.flush());
                if let Err(e) = res {
                    state.error = Some(e);
                }
            }
        }
        match state.error {
            Some(e) => Err(e),
            None => Ok((state.out, synthesized)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_drains_after_close() {
        let q: Queue<u32> = Queue::default();
        q.push(Job { seq: 0, payload: 1 });
        q.push(Job { seq: 1, payload: 2 });
        q.close();
        assert_eq!(q.pop().map(|j| j.payload), Some(1));
        assert_eq!(q.pop().map(|j| j.payload), Some(2));
        assert!(q.pop().is_none());
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_blocks_until_push() {
        let q: std::sync::Arc<Queue<u32>> = std::sync::Arc::new(Queue::default());
        let q2 = std::sync::Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|j| j.payload));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(Job { seq: 0, payload: 9 });
        assert_eq!(h.join().unwrap(), Some(9));
    }

    #[test]
    fn emitter_reorders_out_of_order_completions() {
        let em = Emitter::new(Vec::new());
        em.emit(2, "third".to_string());
        em.emit(0, "first".to_string());
        em.emit(1, "second".to_string());
        let (out, synthesized) = em.finish(3, |_| unreachable!("no gaps")).unwrap();
        assert!(synthesized.is_empty());
        assert_eq!(String::from_utf8(out).unwrap(), "first\nsecond\nthird\n");
    }

    #[test]
    fn finish_synthesizes_lines_for_dropped_seqs() {
        // Responses 0 and 3 arrived; 1 and 2 were lost to a dead worker.
        let em = Emitter::new(Vec::new());
        em.emit(3, "d".to_string());
        em.emit(0, "a".to_string());
        let (out, synthesized) = em.finish(4, |seq| format!("gap {seq}")).unwrap();
        assert_eq!(synthesized, vec![1, 2]);
        assert_eq!(String::from_utf8(out).unwrap(), "a\ngap 1\ngap 2\nd\n");
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        let q: std::sync::Arc<Queue<u32>> = std::sync::Arc::new(Queue::default());
        let q2 = std::sync::Arc::clone(&q);
        // Poison the mutex by panicking while holding it.
        let _ = std::thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("poison");
        })
        .join();
        q.push(Job { seq: 0, payload: 5 });
        q.close();
        assert_eq!(q.pop().map(|j| j.payload), Some(5));
        assert!(q.pop().is_none());
    }
}
