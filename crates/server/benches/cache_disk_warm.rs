//! The persistent-cache payoff claim: a fresh process warmed only from
//! disk (`--cache-dir`) must land between a cold analysis and a
//! memory-warm one — it pays segment reads and wire decoding, but not
//! the dataflow recomputation. Three points on that curve:
//!
//! * `cold`           — no cache at all;
//! * `memory_warm`    — the in-process `MemoryCache` hit path;
//! * `disk_warm_fresh_process` — a brand-new `TieredCache` (empty
//!   memory tier) over a pre-populated directory per iteration, the
//!   stand-in for a daemon restart.

use benchsuite::kernels;
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::{DiskCache, MemoryCache, SummaryCache, TieredCache};
use panorama::{analyze_source, analyze_source_with_cache, Options};
use std::hint::black_box;
use std::sync::Arc;

fn suite_source() -> String {
    kernels()
        .iter()
        .map(|k| k.source)
        .collect::<Vec<_>>()
        .join("\n")
}

fn bench_cache_disk_warm(c: &mut Criterion) {
    let src = suite_source();
    let dir = std::env::temp_dir().join(format!("panostore-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut g = c.benchmark_group("cache_disk_warm");
    g.sample_size(20);

    g.bench_function("cold", |b| {
        b.iter(|| analyze_source(black_box(&src), Options::default()).unwrap())
    });

    let memory: Arc<dyn SummaryCache> = Arc::new(MemoryCache::new());
    analyze_source_with_cache(&src, Options::default(), Some(Arc::clone(&memory))).unwrap();
    g.bench_function("memory_warm", |b| {
        b.iter(|| {
            analyze_source_with_cache(
                black_box(&src),
                Options::default(),
                Some(Arc::clone(&memory)),
            )
            .unwrap()
        })
    });

    // Populate the disk tier once, then measure fresh-instance replay:
    // every iteration opens the store anew (index rebuild included) and
    // decodes every summary from its segments.
    {
        let tiered: Arc<dyn SummaryCache> = Arc::new(TieredCache::new(
            MemoryCache::new(),
            Arc::new(DiskCache::open(dir.clone(), None)),
        ));
        analyze_source_with_cache(&src, Options::default(), Some(tiered)).unwrap();
    }
    g.bench_function("disk_warm_fresh_process", |b| {
        b.iter(|| {
            let tiered: Arc<dyn SummaryCache> = Arc::new(TieredCache::new(
                MemoryCache::new(),
                Arc::new(DiskCache::open(dir.clone(), None)),
            ));
            analyze_source_with_cache(black_box(&src), Options::default(), Some(tiered)).unwrap()
        })
    });

    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_cache_disk_warm);
criterion_main!(benches);
