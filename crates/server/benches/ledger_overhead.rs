//! The near-zero-cost-when-off claim behind `panoledger`: with no
//! ledger installed, every `ledger::record` site in the pipeline is a
//! single relaxed atomic load and the site closure never runs, so
//! end-to-end analysis throughput must be within noise (the same ≤3%
//! acceptance bar as `trace_overhead`) of a build without the
//! accounting. The `enabled` benchmark bounds what an accounted run
//! pays, and `report` adds the full `PrecisionReport` aggregation a
//! `--precision-report` run performs.

use benchsuite::kernels;
use criterion::{criterion_group, criterion_main, Criterion};
use panorama::{analyze_source, driver, Options};
use std::hint::black_box;
use trace::ledger;

fn suite_source() -> String {
    kernels()
        .iter()
        .map(|k| k.source)
        .collect::<Vec<_>>()
        .join("\n")
}

fn bench_ledger_overhead(c: &mut Criterion) {
    let src = suite_source();
    let mut g = c.benchmark_group("ledger_overhead");

    g.bench_function("disabled", |b| {
        assert!(!ledger::enabled(), "a ledger leaked into the benchmark");
        b.iter(|| analyze_source(black_box(&src), Options::default()).unwrap())
    });

    g.bench_function("enabled", |b| {
        b.iter(|| {
            let scope = ledger::LedgerScope::install();
            let analysis = analyze_source(black_box(&src), Options::default()).unwrap();
            let ledger = scope.finish().expect("ledger installed");
            black_box((analysis, ledger.events().len()))
        })
    });

    g.bench_function("report", |b| {
        b.iter(|| {
            let req = driver::Request {
                precision: true,
                ..driver::Request::new(black_box(&src))
            };
            let out = driver::run(&req).unwrap();
            black_box(out.precision.expect("precision report").events_total())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_ledger_overhead);
criterion_main!(benches);
