//! The cache payoff claim behind `panoramad`: re-analyzing a program
//! whose routine summaries are already cached must be at least ~2x
//! faster than a cold analysis, because the dataflow phase — the bulk
//! of the pipeline — is replayed instead of recomputed.

use benchsuite::kernels;
use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::{MemoryCache, SummaryCache};
use panorama::{analyze_source, analyze_source_with_cache, Options};
use std::hint::black_box;
use std::sync::Arc;

fn suite_source() -> String {
    kernels()
        .iter()
        .map(|k| k.source)
        .collect::<Vec<_>>()
        .join("\n")
}

fn bench_warm_vs_cold(c: &mut Criterion) {
    let src = suite_source();
    let mut g = c.benchmark_group("server_warm_vs_cold");

    g.bench_function("cold", |b| {
        b.iter(|| analyze_source(black_box(&src), Options::default()).unwrap())
    });

    let cache: Arc<dyn SummaryCache> = Arc::new(MemoryCache::new());
    analyze_source_with_cache(&src, Options::default(), Some(Arc::clone(&cache))).unwrap();
    g.bench_function("warm", |b| {
        b.iter(|| {
            analyze_source_with_cache(
                black_box(&src),
                Options::default(),
                Some(Arc::clone(&cache)),
            )
            .unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_warm_vs_cold);
criterion_main!(benches);
