//! The near-zero-cost-when-off claim behind `panotrace`: with no
//! collector installed, every instrumentation site in the pipeline is a
//! single relaxed atomic load, so end-to-end analysis throughput must
//! be within noise (the acceptance bar is ≤3%) of an uninstrumented
//! build. The `enabled` benchmark bounds what a traced run pays.

use benchsuite::kernels;
use criterion::{criterion_group, criterion_main, Criterion};
use panorama::{analyze_source, Options};
use std::hint::black_box;

fn suite_source() -> String {
    kernels()
        .iter()
        .map(|k| k.source)
        .collect::<Vec<_>>()
        .join("\n")
}

fn bench_trace_overhead(c: &mut Criterion) {
    let src = suite_source();
    let mut g = c.benchmark_group("trace_overhead");

    g.bench_function("disabled", |b| {
        assert!(!trace::enabled(), "a collector leaked into the benchmark");
        b.iter(|| analyze_source(black_box(&src), Options::default()).unwrap())
    });

    g.bench_function("enabled", |b| {
        b.iter(|| {
            let scope = trace::CollectorScope::install(trace::Collector::new());
            let analysis = analyze_source(black_box(&src), Options::default()).unwrap();
            let collector = scope.finish().expect("collector installed");
            black_box((analysis, collector.tree().len()))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
