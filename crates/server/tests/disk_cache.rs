//! The persistent summary-cache tier through the daemon: `--cache-dir`
//! warm restarts replay reports byte-identically, the stats/metrics
//! surfaces carry the disk counters, and injected disk faults degrade
//! the tier — never a request, never the stream.

use panoramad::{Config, Daemon};
use serde::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Failpoint configuration is process-global: tests that install one
/// must not interleave.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn fp_lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

struct FpGuard;
impl Drop for FpGuard {
    fn drop(&mut self) {
        failpoints::clear();
    }
}

/// A private scratch directory, removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "panoramad-diskcache-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A program with a called subroutine, so summarization produces cache
/// entries (the summary cache is keyed per routine).
const SRC: &str = "      PROGRAM main\n      REAL a(100), b(100)\n      INTEGER i, m\n      m = 40\n      DO i = 1, m\n        CALL fill(a, b, i, m)\n      ENDDO\n      END\n      SUBROUTINE fill(x, y, j, n)\n      REAL x(100), y(100)\n      INTEGER j, n, k\n      DO k = 1, n\n        IF (k .LT. j) THEN\n          x(k) = y(k) + 1.0\n        ENDIF\n        y(k) = x(k) * 2.0\n      ENDDO\n      END\n";

fn daemon_with_dir(dir: Option<PathBuf>) -> Daemon {
    Daemon::new(Config {
        jobs: 1,
        cache_dir: dir,
        ..Config::default()
    })
}

fn analyze_line(id: u64) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("id".to_string(), Value::Int(id as i64)),
        ("source".to_string(), Value::Str(SRC.to_string())),
    ]))
    .unwrap()
}

/// Serves `input` and returns the raw response lines (byte-identity is
/// the contract under test, so no JSON round-tripping here).
fn serve_raw(daemon: &Daemon, input: &str) -> Vec<String> {
    let mut out = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input.to_string()), &mut out)
        .expect("serve");
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect()
}

fn serve_values(daemon: &Daemon, input: &str) -> Vec<Value> {
    serve_raw(daemon, input)
        .iter()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect()
}

/// Warm restart: a fresh daemon over a directory populated by an
/// earlier daemon serves the same report **byte-identically** to an
/// uncached daemon, and its summaries come from disk.
#[test]
fn warm_restart_replays_byte_identical_reports_from_disk() {
    if failpoints::env_active() {
        return; // the CI matrix drives the env-injection test below
    }
    let _serial = fp_lock();
    let scratch = Scratch::new("warm");

    let baseline = serve_raw(
        &Daemon::new(Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        }),
        &(analyze_line(1) + "\n"),
    );

    // Cold daemon populates the disk tier.
    let cold = daemon_with_dir(Some(scratch.path()));
    let cold_lines = serve_raw(&cold, &(analyze_line(1) + "\n"));
    assert_eq!(cold_lines, baseline, "cold cached run diverged");
    let snap = cold.disk_snapshot().expect("disk tier");
    assert!(snap.disabled.is_none(), "{snap:?}");
    assert!(snap.entries > 0, "nothing persisted: {snap:?}");

    // Fresh daemon, same directory: the report is byte-identical and
    // the summaries were fed from disk.
    let warm = daemon_with_dir(Some(scratch.path()));
    let warm_lines = serve_raw(&warm, &(analyze_line(1) + "\n"));
    assert_eq!(warm_lines, baseline, "warm-from-disk run diverged");
    let snap = warm.disk_snapshot().expect("disk tier");
    assert!(snap.disk_hits > 0, "no disk hits: {snap:?}");
    assert_eq!(snap.quarantined, 0, "{snap:?}");
}

/// The disk counters ride `{"cmd": "stats"}` and `{"cmd": "metrics"}`.
#[test]
fn stats_and_metrics_surface_disk_counters() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let scratch = Scratch::new("stats");
    let daemon = daemon_with_dir(Some(scratch.path()));
    let input = format!(
        "{}\n{}\n{}\n",
        analyze_line(1),
        r#"{"id": "s", "cmd": "stats"}"#,
        r#"{"id": "m", "cmd": "metrics"}"#
    );
    let responses = serve_values(&daemon, &input);
    assert_eq!(responses.len(), 3);
    let cache = responses[1].get("stats").unwrap().get("cache").unwrap();
    for key in [
        "disk_hits",
        "disk_misses",
        "quarantined",
        "write_errors",
        "bytes_on_disk",
    ] {
        assert!(
            cache.get(key).is_some(),
            "stats cache lacks {key}: {cache:?}"
        );
    }
    assert!(cache.get("bytes_on_disk").unwrap().as_u64().unwrap() > 0);
    assert!(cache.get("disk_disabled").unwrap().is_null(), "{cache:?}");
    let text = responses[2]
        .get("metrics")
        .and_then(Value::as_str)
        .expect("metrics text");
    for series in [
        "panorama_cache_disk_hits_total",
        "panorama_cache_disk_misses_total",
        "panorama_cache_disk_quarantined_total",
        "panorama_cache_disk_write_errors_total",
        "panorama_cache_disk_bytes",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    // Without --cache-dir, none of the disk series exist.
    let plain = daemon_with_dir(None);
    let responses = serve_values(&plain, &format!("{}\n", r#"{"id": "m", "cmd": "metrics"}"#));
    let text = responses[0].get("metrics").and_then(Value::as_str).unwrap();
    assert!(!text.contains("panorama_cache_disk_"), "{text}");
}

/// A persistent write fault degrades the tier to memory-only with a
/// structured reason; every request still succeeds, byte-identically
/// to an uncached daemon.
#[test]
fn disk_write_fault_degrades_tier_not_requests() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let _reset = FpGuard;
    let scratch = Scratch::new("wfault");
    let baseline = serve_raw(
        &Daemon::new(Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        }),
        &format!("{}\n{}\n", analyze_line(1), analyze_line(2)),
    );

    failpoints::configure("disk-write=err(disk is on fire)");
    let daemon = daemon_with_dir(Some(scratch.path()));
    let lines = serve_raw(
        &daemon,
        &format!("{}\n{}\n", analyze_line(1), analyze_line(2)),
    );
    assert_eq!(lines, baseline, "degraded run diverged from --no-cache");
    let snap = daemon.disk_snapshot().expect("disk tier");
    assert!(snap.write_errors >= 1, "{snap:?}");
    let reason = snap.disabled.as_deref().expect("tier disabled");
    assert!(reason.contains("disk is on fire"), "{reason}");
}

/// Read faults over a warm directory are misses (or quarantines), never
/// failures: the daemon re-analyzes and the stream stays well formed.
#[test]
fn disk_read_fault_is_a_miss_not_a_failure() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let scratch = Scratch::new("rfault");
    {
        let cold = daemon_with_dir(Some(scratch.path()));
        serve_raw(&cold, &(analyze_line(1) + "\n"));
        assert!(cold.disk_snapshot().unwrap().entries > 0);
    }
    let _reset = FpGuard;
    failpoints::configure("disk-read=err");
    let warm = daemon_with_dir(Some(scratch.path()));
    let responses = serve_values(
        &warm,
        &format!("{}\n{}\n", analyze_line(1), analyze_line(2)),
    );
    assert_eq!(responses.len(), 2);
    for r in &responses {
        assert_eq!(r.get("ok").unwrap(), &Value::Bool(true), "{r:?}");
    }
}

/// A cache path that cannot exist (a directory under a regular file)
/// yields a disabled tier with a structured reason — the daemon serves
/// normally.
#[test]
fn poisoned_cache_dir_is_never_fatal() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let scratch = Scratch::new("poison");
    std::fs::create_dir_all(scratch.path()).unwrap();
    let file = scratch.path().join("not-a-dir");
    std::fs::write(&file, b"plain file").unwrap();
    let daemon = daemon_with_dir(Some(file.join("cache")));
    let responses = serve_values(&daemon, &(analyze_line(1) + "\n"));
    assert_eq!(responses.len(), 1);
    assert_eq!(responses[0].get("ok").unwrap(), &Value::Bool(true));
    let snap = daemon.disk_snapshot().expect("snapshot even when disabled");
    assert!(snap.disabled.is_some(), "{snap:?}");
}

/// The CI `cache-crash-matrix` entry point: with `FAILPOINTS` armed at
/// any disk site, a daemon with a cache directory must keep every
/// response well formed and in order, and a reopen of the same
/// directory must come up clean. Without the environment this is a
/// smoke test of the same contract.
#[test]
fn cache_dir_stream_stays_well_formed_under_env_injection() {
    let _serial = fp_lock();
    let scratch = Scratch::new("env");
    for round in 0..2 {
        let daemon = daemon_with_dir(Some(scratch.path()));
        let n = 4u64;
        let input: String = (1..=n).map(|i| analyze_line(i) + "\n").collect();
        let responses = serve_values(&daemon, &input);
        assert_eq!(responses.len(), n as usize, "round {round}");
        for (expect, r) in (1u64..).zip(responses.iter()) {
            assert!(r.get("ok").is_some(), "round {round}: {r:?}");
            if let Some(got) = r.get("id").unwrap().as_u64() {
                assert_eq!(got, expect, "round {round}: {responses:?}");
            }
        }
    }
}
