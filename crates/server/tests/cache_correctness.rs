//! Cache correctness at the core-library level: sharing a routine
//! summary across *different programs* must not change any verdict, and
//! any content change — even one subscript — must miss the cache.

use panorama::{
    analyze_source, analyze_source_limited, analyze_source_with_cache, json_report, FuelLimits,
    Options, SummaryCache,
};
use panoramad::{Config, Daemon};
use std::sync::Arc;

/// Upcasts for the `analyze_source_with_cache` parameter.
fn share(cache: &Arc<panorama::MemoryCache>) -> Option<Arc<dyn SummaryCache>> {
    Some(Arc::clone(cache) as Arc<dyn SummaryCache>)
}

/// `work` fills a private work array — privatizable in every caller.
const SHARED_ROUTINE: &str = "
      SUBROUTINE work(w, n, j)
      INTEGER n, j, k
      REAL w(n)
      DO k = 1, n
        w(k) = j * 1.0
      ENDDO
      w(1) = w(2) + 1.0
      END
";

fn caller_a() -> String {
    format!(
        "
      PROGRAM pa
      REAL w(50), a(100)
      INTEGER i
      DO i = 1, 100
        CALL work(w, 50, i)
        a(i) = w(1)
      ENDDO
      END
{SHARED_ROUTINE}"
    )
}

fn caller_b() -> String {
    format!(
        "
      PROGRAM pb
      REAL buf(30), out(40)
      INTEGER m
      DO m = 1, 40
        CALL work(buf, 30, m)
        out(m) = buf(3)
      ENDDO
      END
{SHARED_ROUTINE}"
    )
}

fn report(src: &str, cache: Option<Arc<dyn SummaryCache>>) -> String {
    let analysis = match cache {
        Some(c) => analyze_source_with_cache(src, Options::default(), Some(c)).unwrap(),
        None => analyze_source(src, Options::default()).unwrap(),
    };
    serde_json::to_string(&json_report(&analysis, None)).unwrap()
}

#[test]
fn shared_routine_replay_matches_cold_analysis() {
    let cache = Arc::new(panorama::MemoryCache::new());
    let a = caller_a();
    let b = caller_b();

    // Cold baselines, no cache anywhere.
    let cold_a = report(&a, None);
    let cold_b = report(&b, None);

    // Program A populates the cache; program B replays `work` from it.
    let warm_a = report(&a, share(&cache));
    let before_b = cache.counters();
    let warm_b = report(&b, share(&cache));
    let after_b = cache.counters();

    assert_eq!(warm_a, cold_a);
    assert_eq!(warm_b, cold_b);
    assert!(
        after_b.hits > before_b.hits,
        "program B never hit program A's `work` entry: {after_b:?}"
    );

    // Both verdicts privatize the shared work array.
    for src in [&a, &b] {
        let an = analyze_source_with_cache(src, Options::default(), share(&cache)).unwrap();
        let v = an.verdicts.iter().find(|v| v.depth == 0).unwrap();
        assert!(v.parallel_after_privatization, "{}", v.id);
    }
}

#[test]
fn subscript_mutation_misses_the_cache() {
    let cache = Arc::new(panorama::MemoryCache::new());
    let a = caller_a();
    let _ = report(&a, share(&cache));
    let entries_before = cache.counters().entries;
    assert!(entries_before >= 2, "expected entries for pa and work");

    // One subscript changes inside the shared routine: w(2) -> w(k).
    let mutated = a.replace("w(1) = w(2) + 1.0", "w(1) = w(k) + 1.0");
    assert_ne!(mutated, a);
    let warm = report(&mutated, share(&cache));
    let cold = report(&mutated, None);

    // The stale entry was not reused (the report matches a cold run) and
    // the mutated routine got its own, new cache entries.
    assert_eq!(warm, cold);
    assert!(
        cache.counters().entries > entries_before,
        "mutated routine should occupy new entries: {:?}",
        cache.counters()
    );
}

#[test]
fn daemon_shares_summaries_between_programs() {
    // The same property end to end through the NDJSON protocol.
    let daemon = Daemon::new(Config {
        jobs: 1,
        cache: Some(None),
        ..Config::default()
    });
    let mk = |id: &str, src: &str| {
        serde_json::to_string(&serde::Value::Object(vec![
            ("id".to_string(), serde::Value::Str(id.to_string())),
            ("source".to_string(), serde::Value::Str(src.to_string())),
        ]))
        .unwrap()
    };
    let input = format!("{}\n{}\n", mk("a", &caller_a()), mk("b", &caller_b()));
    let mut out = Vec::new();
    daemon.serve(std::io::Cursor::new(input), &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    assert_eq!(text.lines().count(), 2);
    let counters = daemon.cache_counters().unwrap();
    assert!(counters.hits > 0, "no cross-program sharing: {counters:?}");
}

#[test]
fn degraded_analyses_never_populate_the_cache() {
    let cache = Arc::new(panorama::MemoryCache::new());
    let a = caller_a();

    // Step-starved: a result-constraining budget bypasses the cache
    // wholesale — widened summaries must never become replayable state.
    let starved = analyze_source_limited(
        &a,
        Options::default(),
        share(&cache),
        FuelLimits {
            steps: Some(3),
            ..FuelLimits::unlimited()
        },
    )
    .unwrap();
    assert!(starved.degraded(), "3 steps must starve this program");
    assert_eq!(
        cache.counters().entries,
        0,
        "degraded summaries leaked into the cache: {:?}",
        cache.counters()
    );

    // Deadline-starved: reads stay allowed (hits only restore
    // precision) but a degraded run still writes nothing.
    let deadlined = analyze_source_limited(
        &a,
        Options::default(),
        share(&cache),
        FuelLimits {
            deadline_ms: Some(0),
            ..FuelLimits::unlimited()
        },
    )
    .unwrap();
    assert!(deadlined.degraded());
    assert_eq!(cache.counters().entries, 0);

    // A later unbudgeted run over the same cache gets full precision —
    // byte-identical to a cold run — and now fills the cache.
    let full = analyze_source_limited(
        &a,
        Options::default(),
        share(&cache),
        FuelLimits::unlimited(),
    )
    .unwrap();
    assert!(!full.degraded());
    let cold = analyze_source(&a, Options::default()).unwrap();
    assert_eq!(
        serde_json::to_string(&json_report(&full, None)).unwrap(),
        serde_json::to_string(&json_report(&cold, None)).unwrap()
    );
    assert!(cache.counters().entries >= 2, "{:?}", cache.counters());
}

#[test]
fn starved_verdicts_are_conservative_not_wrong() {
    // Fuel starvation may flip parallel -> serial and privatizable ->
    // not, never the reverse.
    let a = caller_a();
    let full = analyze_source(&a, Options::default()).unwrap();
    for fuel in [0u64, 2, 8, 32, 128] {
        let starved = analyze_source_limited(
            &a,
            Options::default(),
            None,
            FuelLimits {
                steps: Some(fuel),
                ..FuelLimits::unlimited()
            },
        )
        .unwrap();
        assert_eq!(starved.verdicts.len(), full.verdicts.len());
        for v in &starved.verdicts {
            let f = full
                .verdicts
                .iter()
                .find(|f| f.id == v.id)
                .unwrap_or_else(|| panic!("verdict {} vanished under fuel {fuel}", v.id));
            if v.parallel_as_is {
                assert!(
                    f.parallel_as_is,
                    "fuel {fuel} invented parallelism: {}",
                    v.id
                );
            }
            if v.parallel_after_privatization {
                assert!(
                    f.parallel_after_privatization,
                    "fuel {fuel} invented privatizability: {}",
                    v.id
                );
            }
        }
    }
}

/// Byte-identical caller `PROGRAM`; the two callees differ only in the
/// storage they can reach. Under `--no-interprocedural` the caller's
/// summary depends on that reach (the conservative clobber is scoped to
/// the callee's COMMON blocks), so the caller's cache key must differ
/// even though its own AST does not.
const ALIAS_CALLER: &str = "
      PROGRAM px
      REAL c(50), b(10)
      COMMON /blk/ c
      INTEGER i
      DO i = 1, 50
        c(i) = float(i)
        CALL f(b)
      ENDDO
      END
";

#[test]
fn caller_side_aliasing_participates_in_the_cache_key() {
    let opts = Options {
        interprocedural: false,
        ..Options::default()
    };
    let storage_free = format!(
        "{ALIAS_CALLER}
      SUBROUTINE f(b)
      REAL b(10)
      b(1) = 1.0
      END
"
    );
    let reaches_blk = format!(
        "{ALIAS_CALLER}
      SUBROUTINE f(b)
      REAL c(50), b(10)
      COMMON /blk/ c
      b(1) = 1.0
      c(1) = 2.0
      END
"
    );

    // The two programs genuinely disagree about `c`: proof that reusing
    // the caller's summary across them would change a verdict.
    let flags = |src: &str| {
        let an = analyze_source_with_cache(src, opts, None).unwrap();
        let v = an.verdicts.iter().find(|v| v.routine == "px").unwrap();
        let c = v.arrays.iter().find(|a| a.array == "c").unwrap();
        (c.flow_dep, c.output_dep, c.anti_dep)
    };
    assert_eq!(flags(&storage_free), (false, false, false));
    assert_ne!(flags(&reaches_blk), (false, false, false));

    // Warm the cache with the storage-free program, then analyze the
    // /blk/-reaching one through the same cache: the report must match
    // its cold run bit for bit (no stale caller summary was replayed).
    let cache = Arc::new(panorama::MemoryCache::new());
    let warm_json = |src: &str| {
        let an = analyze_source_with_cache(src, opts, share(&cache)).unwrap();
        serde_json::to_string(&json_report(&an, None)).unwrap()
    };
    let cold_json = |src: &str| {
        let an = analyze_source_with_cache(src, opts, None).unwrap();
        serde_json::to_string(&json_report(&an, None)).unwrap()
    };
    let _ = warm_json(&storage_free);
    let before = cache.counters();
    let warm = warm_json(&reaches_blk);
    let after = cache.counters();
    assert_eq!(warm, cold_json(&reaches_blk));
    assert_eq!(
        after.hits, before.hits,
        "the caller key must miss when the callee's storage reach changes: {after:?}"
    );
    assert!(after.misses > before.misses, "{after:?}");

    // Replaying each program against its own warm entries stays a hit.
    let before = cache.counters();
    assert_eq!(warm_json(&storage_free), cold_json(&storage_free));
    assert_eq!(warm_json(&reaches_blk), cold_json(&reaches_blk));
    assert!(cache.counters().hits > before.hits);
}
