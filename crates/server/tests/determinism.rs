//! The daemon's determinism contract: for a fixed request stream, the
//! response byte stream is identical whatever the worker count and
//! whether the summary cache is enabled — concurrency and caching must
//! change *when* reports are computed, never what they say.

use benchsuite::kernels;
use panoramad::{Config, Daemon};
use serde::Value;

/// One analyze request per benchsuite kernel (one also runs the race
/// oracle), then each kernel again — the repeats force cache replays on
/// the cached configurations.
fn request_stream() -> String {
    request_stream_with_budget(None)
}

/// Like [`request_stream`], with a per-request `fuel` field attached.
fn request_stream_with_budget(fuel: Option<u64>) -> String {
    let mut lines = Vec::new();
    for pass in 0..2 {
        for (i, k) in kernels().iter().enumerate() {
            let mut fields = vec![
                (
                    "id".to_string(),
                    Value::Str(format!("{}/{pass}", k.loop_label)),
                ),
                ("source".to_string(), Value::Str(k.source.to_string())),
                ("oracle".to_string(), Value::Bool(pass == 0 && i == 0)),
            ];
            if let Some(fuel) = fuel {
                fields.push(("fuel".to_string(), Value::UInt(fuel)));
            }
            let obj = Value::Object(fields);
            lines.push(serde_json::to_string(&obj).unwrap());
        }
    }
    lines.join("\n") + "\n"
}

fn serve(config: Config, input: &str) -> String {
    let daemon = Daemon::new(config);
    let mut out = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input.to_string()), &mut out)
        .expect("serve");
    String::from_utf8(out).expect("utf8 output")
}

#[test]
fn reports_identical_across_jobs_and_cache() {
    let input = request_stream();
    let baseline = serve(
        Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        },
        &input,
    );
    assert!(!baseline.is_empty());
    for (jobs, cache) in [
        (4, None),
        (1, Some(None)),
        (4, Some(None)),
        (4, Some(Some(8))),
    ] {
        let got = serve(
            Config {
                jobs,
                cache,
                ..Config::default()
            },
            &input,
        );
        assert_eq!(
            got, baseline,
            "response stream diverged at jobs={jobs}, cache={cache:?}"
        );
    }
}

#[test]
fn warm_cache_reports_identical_to_cold() {
    // One daemon, same stream twice: the second pass replays every
    // routine summary from the first pass's cache.
    let input = request_stream();
    let daemon = Daemon::new(Config {
        jobs: 2,
        cache: Some(None),
        ..Config::default()
    });
    let mut first = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input.clone()), &mut first)
        .expect("serve");
    let mut second = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input), &mut second)
        .expect("serve");
    assert_eq!(first, second);
    let counters = daemon.cache_counters().expect("cache enabled");
    assert!(
        counters.hits > counters.misses,
        "second pass should be dominated by cache hits: {counters:?}"
    );
}

#[test]
fn fuel_limited_reports_identical_across_jobs_and_cache() {
    // The same contract with a per-request step budget: a fixed fuel
    // value must produce byte-identical (degraded) reports whatever the
    // worker count, and the cache must not be able to change them.
    let input = request_stream_with_budget(Some(100));
    let baseline = serve(
        Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        },
        &input,
    );
    assert!(!baseline.is_empty());
    assert!(
        baseline.contains("\"degraded\":true"),
        "100 steps should starve at least one kernel"
    );
    for (jobs, cache) in [(4, None), (1, Some(None)), (4, Some(None))] {
        let got = serve(
            Config {
                jobs,
                cache,
                ..Config::default()
            },
            &input,
        );
        assert_eq!(
            got, baseline,
            "fuel-limited stream diverged at jobs={jobs}, cache={cache:?}"
        );
    }
}

/// One `"trace": true` request per benchsuite kernel, plus the
/// range-flip kernels so the determinism contract covers the
/// value-range pass's provenance (`range_refute`/`range_compare`).
fn traced_request_stream() -> String {
    let mut lines = Vec::new();
    let mut push = |id: &str, source: &str| {
        let obj = Value::Object(vec![
            ("id".to_string(), Value::Str(id.to_string())),
            ("source".to_string(), Value::Str(source.to_string())),
            ("trace".to_string(), Value::Bool(true)),
        ]);
        lines.push(serde_json::to_string(&obj).unwrap());
    };
    for k in kernels() {
        push(k.loop_label, k.source);
    }
    for k in benchsuite::range_kernels() {
        push(k.tag, k.source);
    }
    lines.join("\n") + "\n"
}

/// Number of requests [`traced_request_stream`] produces.
fn traced_request_count() -> usize {
    kernels().len() + benchsuite::range_kernels().len()
}

/// Zeroes every `start_us`/`dur_us`/`at_us` field in place: wall-clock
/// durations are the only nondeterministic part of a span tree.
fn zero_timestamps(v: &mut Value) {
    match v {
        Value::Object(fields) => {
            for (key, val) in fields.iter_mut() {
                if matches!(key.as_str(), "start_us" | "dur_us" | "at_us") {
                    *val = Value::UInt(0);
                } else {
                    zero_timestamps(val);
                }
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                zero_timestamps(item);
            }
        }
        _ => {}
    }
}

#[test]
fn span_trees_and_provenance_identical_across_jobs_and_cache() {
    // The determinism contract extends to observability: with
    // timestamps normalized, the span tree a `"trace": true` response
    // embeds — and every verdict's provenance chain — is byte-identical
    // whatever the worker count and cache configuration.
    let input = traced_request_stream();
    let normalize = |raw: String| -> Vec<String> {
        raw.lines()
            .map(|line| {
                let mut v: Value = serde_json::from_str(line).expect("response json");
                zero_timestamps(&mut v);
                serde_json::to_string(&v).unwrap()
            })
            .collect()
    };
    let baseline = normalize(serve(
        Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        },
        &input,
    ));
    assert_eq!(baseline.len(), traced_request_count());
    for line in &baseline {
        let v: Value = serde_json::from_str(line).expect("normalized json");
        let id = v.get("id").unwrap();
        let spans = v
            .get("trace")
            .and_then(|t| t.get("spans"))
            .unwrap_or_else(|| panic!("{id:?}: no trace.spans"));
        let Value::Array(roots) = spans else {
            panic!("{id:?}: spans is not an array");
        };
        let names: Vec<&str> = roots
            .iter()
            .filter_map(|n| n.get("name").and_then(Value::as_str))
            .collect();
        for want in ["parse", "sema", "hsg", "dataflow", "privatize"] {
            assert!(names.contains(&want), "{id:?}: missing {want} in {names:?}");
        }
        let Some(Value::Array(verdicts)) = v.get("report").and_then(|r| r.get("verdicts")) else {
            panic!("{id:?}: no verdicts array");
        };
        assert!(!verdicts.is_empty(), "{id:?}: empty verdicts");
        for verdict in verdicts {
            let Some(Value::Array(prov)) = verdict.get("provenance") else {
                panic!("{id:?}: verdict without provenance array");
            };
            assert!(!prov.is_empty(), "{id:?}: empty provenance");
            let last = prov.last().unwrap();
            assert_eq!(
                last.get("op").unwrap(),
                &Value::Str("decide".to_string()),
                "{id:?}: provenance does not end in a decide entry"
            );
        }
    }
    // The stream must actually exercise the value-range pass: some
    // verdict's provenance carries a range oracle entry.
    assert!(
        baseline
            .iter()
            .any(|l| l.contains("range_compare") || l.contains("range_refute")),
        "no range provenance anywhere in the traced stream"
    );
    for (jobs, cache) in [(4, None), (1, Some(None)), (4, Some(None))] {
        let got = normalize(serve(
            Config {
                jobs,
                cache,
                ..Config::default()
            },
            &input,
        ));
        assert_eq!(
            got, baseline,
            "traced stream diverged at jobs={jobs}, cache={cache:?}"
        );
    }
}

/// One `"precision": true` request per benchsuite kernel, each sent
/// twice (cache replay pressure on cached configurations), optionally
/// fuel-starved so the reports carry real degradation accounting.
fn precision_request_stream(fuel: Option<u64>) -> String {
    let mut lines = Vec::new();
    for pass in 0..2 {
        for k in kernels() {
            let mut fields = vec![
                (
                    "id".to_string(),
                    Value::Str(format!("prec {}/{pass}", k.loop_label)),
                ),
                ("source".to_string(), Value::Str(k.source.to_string())),
                ("precision".to_string(), Value::Bool(true)),
            ];
            if let Some(fuel) = fuel {
                fields.push(("fuel".to_string(), Value::UInt(fuel)));
            }
            lines.push(serde_json::to_string(&Value::Object(fields)).unwrap());
        }
    }
    lines.join("\n") + "\n"
}

#[test]
fn precision_reports_identical_across_jobs_and_cache() {
    // The determinism contract extends to the precision ledger: the
    // `"precision"` payload (cause counts, loop split, ratio, event
    // list) is byte-identical whatever the worker count and cache
    // configuration — both at full budget (all-zero ledger) and
    // fuel-starved (every kernel degrading).
    for fuel in [None, Some(100)] {
        let input = precision_request_stream(fuel);
        let baseline = serve(
            Config {
                jobs: 1,
                cache: None,
                ..Config::default()
            },
            &input,
        );
        for line in baseline.lines() {
            let v: Value = serde_json::from_str(line).expect("response json");
            let id = v.get("id").unwrap();
            let precision = v
                .get("report")
                .and_then(|r| r.get("precision"))
                .unwrap_or_else(|| panic!("{id:?}: no precision payload"));
            for key in [
                "causes",
                "loops",
                "precision_ratio",
                "events",
                "events_dropped",
            ] {
                assert!(
                    precision.get(key).is_some(),
                    "{id:?}: missing precision.{key}"
                );
            }
        }
        if fuel.is_some() {
            assert!(
                baseline.contains("\"fuel_widen\""),
                "starved stream never recorded a fuel widening"
            );
            assert!(
                baseline.contains("\"degraded\":true"),
                "100 steps should starve at least one kernel"
            );
        }
        for (jobs, cache) in [(4, None), (1, Some(None)), (4, Some(None))] {
            let got = serve(
                Config {
                    jobs,
                    cache,
                    ..Config::default()
                },
                &input,
            );
            assert_eq!(
                got, baseline,
                "precision stream diverged at fuel={fuel:?}, jobs={jobs}, cache={cache:?}"
            );
        }
    }
}

/// One `"emit": true` request per benchsuite kernel, each sent twice so
/// cached configurations replay the second pass.
fn emit_request_stream() -> String {
    let mut lines = Vec::new();
    for pass in 0..2 {
        for k in kernels() {
            let obj = Value::Object(vec![
                (
                    "id".to_string(),
                    Value::Str(format!("emit {}/{pass}", k.loop_label)),
                ),
                ("source".to_string(), Value::Str(k.source.to_string())),
                ("emit".to_string(), Value::Bool(true)),
            ]);
            lines.push(serde_json::to_string(&obj).unwrap());
        }
    }
    lines.join("\n") + "\n"
}

#[test]
fn emitted_transforms_identical_across_jobs_and_cache() {
    // The determinism contract extends to the emission backend: the
    // `"transform"` payload (clauses, directives, skip diagnostics and
    // the full annotated source) is byte-identical whatever the worker
    // count and cache configuration.
    let input = emit_request_stream();
    let baseline = serve(
        Config {
            jobs: 1,
            cache: None,
            ..Config::default()
        },
        &input,
    );
    for line in baseline.lines() {
        let v: Value = serde_json::from_str(line).expect("response json");
        let id = v.get("id").unwrap();
        let transform = v
            .get("report")
            .and_then(|r| r.get("transform"))
            .unwrap_or_else(|| panic!("{id:?}: no transform payload"));
        let source = transform
            .get("source")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("{id:?}: no transform.source"));
        assert!(
            source.contains("!$OMP PARALLEL DO"),
            "{id:?}: no directive in emitted source"
        );
        assert!(transform.get("loops").is_some(), "{id:?}: no loops array");
    }
    for (jobs, cache) in [(4, None), (1, Some(None)), (4, Some(None))] {
        let got = serve(
            Config {
                jobs,
                cache,
                ..Config::default()
            },
            &input,
        );
        assert_eq!(
            got, baseline,
            "emit stream diverged at jobs={jobs}, cache={cache:?}"
        );
    }
}

#[test]
fn stats_surface_request_and_lint_counters() {
    // Satellite of the observability PR: the `{"cmd": "stats"}`
    // snapshot carries per-outcome request counters, per-code lint
    // counters, queue gauges and the cache hit ratio.
    let daemon = Daemon::new(Config {
        jobs: 1,
        ..Config::default()
    });
    let input = format!(
        "{}{}\n",
        request_stream(),
        r#"{"id": "probe", "cmd": "stats"}"#
    );
    let mut out = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input), &mut out)
        .expect("serve");
    let text = String::from_utf8(out).expect("utf8");
    let last: Value = serde_json::from_str(text.lines().last().unwrap()).expect("stats json");
    let stats = last.get("stats").expect("stats payload");
    let requests = stats.get("requests").expect("requests");
    assert_eq!(
        requests.get("completed").unwrap().as_u64(),
        Some(2 * kernels().len() as u64)
    );
    for key in [
        "failed",
        "degraded",
        "timeouts",
        "panics",
        "oracle_runs",
        "trace_bypass",
    ] {
        assert!(requests.get(key).is_some(), "missing requests.{key}");
    }
    let lints = stats.get("lints").expect("lints");
    let Value::Object(codes) = lints else {
        panic!("lints is not an object");
    };
    assert!(!codes.is_empty());
    let cache = stats.get("cache").expect("cache");
    assert!(cache.get("hit_ratio").unwrap().as_f64().is_some());
    assert!(
        stats
            .get("queue")
            .and_then(|q| q.get("peak_depth"))
            .and_then(Value::as_u64)
            .unwrap()
            >= 1
    );
    let hist = stats
        .get("phase_histograms_us")
        .and_then(|h| h.get("dataflow"))
        .expect("dataflow histogram");
    assert_eq!(
        hist.get("count").unwrap().as_u64(),
        Some(2 * kernels().len() as u64)
    );
}

#[test]
fn stats_count_traced_cache_bypasses_distinctly() {
    // Traced requests deliberately skip warming the summary cache so
    // span trees stay deterministic; the stats snapshot reports those
    // skips under `requests.trace_bypass`, not as cache misses.
    let daemon = Daemon::new(Config {
        jobs: 1,
        ..Config::default() // cache enabled
    });
    let input = format!(
        "{}{}\n",
        traced_request_stream(),
        r#"{"id": "probe", "cmd": "stats"}"#
    );
    let mut out = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input), &mut out)
        .expect("serve");
    let text = String::from_utf8(out).expect("utf8");
    let last: Value = serde_json::from_str(text.lines().last().unwrap()).expect("stats json");
    let stats = last.get("stats").expect("stats payload");
    assert_eq!(
        stats
            .get("requests")
            .and_then(|r| r.get("trace_bypass"))
            .and_then(Value::as_u64),
        Some(traced_request_count() as u64)
    );
    // The bypassed requests never touched the warm path: the cache
    // object is present (cache enabled) and records no activity.
    let cache = stats.get("cache").expect("cache");
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(0));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(0));
}

#[test]
fn daemon_lints_match_direct_analysis() {
    // The `lints` array a daemon response carries is byte-identical to
    // the one the library (and therefore `panorama --lint --json`)
    // computes for the same source — concurrency, queueing and the
    // summary cache must not touch it.
    let daemon = Daemon::new(Config {
        jobs: 4,
        cache: Some(None),
        ..Config::default()
    });
    let input = request_stream();
    let mut out = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input), &mut out)
        .expect("serve");
    let text = String::from_utf8(out).expect("utf8");
    let by_id: std::collections::BTreeMap<String, Value> = text
        .lines()
        .map(|line| {
            let v: Value = serde_json::from_str(line).expect("response json");
            let id = match v.get("id").unwrap() {
                Value::Str(s) => s.clone(),
                other => panic!("unexpected id {other:?}"),
            };
            (id, v)
        })
        .collect();
    let mut seen = 0;
    for k in kernels() {
        let analysis =
            panorama::analyze_source(k.source, panorama::Options::default()).expect("analysis");
        let direct = panorama::json_report(&analysis, None);
        let want = serde_json::to_string(direct.get("lints").expect("lints key")).unwrap();
        for pass in 0..2 {
            let resp = &by_id[&format!("{}/{pass}", k.loop_label)];
            let got = resp
                .get("report")
                .and_then(|r| r.get("lints"))
                .unwrap_or_else(|| panic!("{}: no lints in response", k.loop_label));
            assert_eq!(
                serde_json::to_string(got).unwrap(),
                want,
                "{}/{pass}: daemon lints diverge from direct analysis",
                k.loop_label
            );
            seen += 1;
        }
    }
    assert_eq!(seen, 2 * kernels().len());
}
