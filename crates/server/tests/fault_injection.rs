//! Fault injection against the daemon: panics planted at the parser,
//! analyzer, cache-replay and scheduler sites must each be contained to
//! the request that hit them — every request still gets exactly one
//! well-formed response in stream order, and the daemon keeps serving.
//!
//! Programmatic injection (`failpoints::configure`) drives the targeted
//! tests below; the CI fault matrix re-runs the well-formedness test
//! with `FAILPOINTS` set per site class.

use panoramad::{Config, Daemon};
use serde::Value;
use std::sync::Mutex;

/// Failpoint configuration is process-global: tests that install one
/// must not interleave.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn fp_lock() -> std::sync::MutexGuard<'static, ()> {
    FP_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Clears the programmatic failpoint config even if the test panics, so
/// one failure doesn't cascade into the rest of the binary.
struct FpGuard;
impl Drop for FpGuard {
    fn drop(&mut self) {
        failpoints::clear();
    }
}

fn kernel_src(array: &str) -> String {
    format!(
        "      PROGRAM t\n      REAL {array}(10)\n      INTEGER i\n      \
         DO i = 1, 10\n        {array}(i) = 1.0\n      ENDDO\n      END\n"
    )
}

fn analyze_line(id: u64, source: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        ("id".to_string(), Value::Int(id as i64)),
        ("source".to_string(), Value::Str(source.to_string())),
    ]))
    .unwrap()
}

fn serve_lines(daemon: &Daemon, input: &str) -> Vec<Value> {
    let mut out = Vec::new();
    daemon
        .serve(std::io::Cursor::new(input.to_string()), &mut out)
        .expect("serve");
    String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect()
}

fn is_internal_panic(resp: &Value) -> bool {
    resp.get("ok") == Some(&Value::Bool(false))
        && resp
            .get("error")
            .and_then(|e| e.get("kind"))
            .map(|k| k == &Value::Str("internal_panic".to_string()))
            .unwrap_or(false)
}

/// A panic planted in request k of n: all n responses arrive well
/// formed and in order, k's is a structured `internal_panic`, and the
/// same daemon then serves a fresh request normally.
#[test]
fn panic_in_one_request_leaves_stream_ordered_and_daemon_alive() {
    if failpoints::env_active() {
        // The CI matrix owns the configuration; programmatic specs
        // would mask it.
        return;
    }
    let _serial = fp_lock();
    let _reset = FpGuard;
    // The parse site's argument is the source text, so the selector
    // singles out the one request whose program mentions `zzboom`.
    failpoints::configure("parse=panic(zzboom)");

    let daemon = Daemon::new(Config {
        jobs: 2,
        ..Config::default()
    });
    let sources = [
        kernel_src("aa"),
        kernel_src("bb"),
        kernel_src("zzboom"),
        kernel_src("dd"),
    ];
    let input: String = sources
        .iter()
        .enumerate()
        .map(|(i, s)| analyze_line(i as u64 + 1, s) + "\n")
        .collect();
    let responses = serve_lines(&daemon, &input);

    assert_eq!(responses.len(), 4);
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(
            r.get("id").unwrap().as_u64(),
            Some(i as u64 + 1),
            "responses out of order: {responses:?}"
        );
        if i == 2 {
            assert!(is_internal_panic(r), "{r:?}");
        } else {
            assert_eq!(r.get("ok").unwrap(), &Value::Bool(true), "{r:?}");
        }
    }

    // The worker that caught the panic is still serving.
    let after = serve_lines(&daemon, &(analyze_line(9, &kernel_src("ee")) + "\n"));
    assert_eq!(after.len(), 1);
    assert_eq!(after[0].get("ok").unwrap(), &Value::Bool(true));
    assert!(
        daemon
            .metrics()
            .panics
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

/// Same containment for a panic inside the analyzer proper (the
/// `analyze` site's argument is the routine name).
#[test]
fn analyzer_panic_is_contained_per_request() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let _reset = FpGuard;
    failpoints::configure("analyze=1*panic->off");

    let daemon = Daemon::new(Config {
        jobs: 1,
        ..Config::default()
    });
    let input = format!(
        "{}\n{}\n",
        analyze_line(1, &kernel_src("aa")),
        analyze_line(2, &kernel_src("bb"))
    );
    let responses = serve_lines(&daemon, &input);
    assert_eq!(responses.len(), 2);
    assert!(is_internal_panic(&responses[0]), "{:?}", responses[0]);
    assert_eq!(responses[1].get("ok").unwrap(), &Value::Bool(true));
}

/// A fault in the scheduler path itself (outside the per-job isolation)
/// kills the in-flight job, but the worker respawns and `finish`
/// synthesizes the lost response — the client still sees one in-order
/// response per request.
#[test]
fn scheduler_fault_synthesizes_the_lost_response() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let _reset = FpGuard;
    failpoints::configure("sched=1*panic->off");

    let daemon = Daemon::new(Config {
        jobs: 1,
        ..Config::default()
    });
    let input = format!(
        "{}\n{}\n{}\n",
        analyze_line(1, &kernel_src("aa")),
        analyze_line(2, &kernel_src("bb")),
        analyze_line(3, &kernel_src("cc"))
    );
    let responses = serve_lines(&daemon, &input);
    assert_eq!(responses.len(), 3, "{responses:?}");
    // The dropped job's response is synthesized (its id was lost with
    // the job, so it is null), the rest are real and in order.
    assert!(is_internal_panic(&responses[0]), "{:?}", responses[0]);
    assert!(responses[0].get("id").unwrap().is_null());
    assert_eq!(responses[1].get("id").unwrap().as_u64(), Some(2));
    assert_eq!(responses[2].get("id").unwrap().as_u64(), Some(3));
    for r in &responses[1..] {
        assert_eq!(r.get("ok").unwrap(), &Value::Bool(true));
    }
}

/// The CI fault-matrix entry point: with `FAILPOINTS` set (per site
/// class) every request must still produce exactly one well-formed
/// response line, in order, and the stream must terminate. Without the
/// environment this is a plain smoke test of the same contract.
#[test]
fn stream_stays_well_formed_under_env_injection() {
    let _serial = fp_lock();
    let daemon = Daemon::new(Config {
        jobs: 2,
        ..Config::default()
    });
    let n = 6u64;
    let input: String = (1..=n)
        .map(|i| analyze_line(i, &kernel_src(&format!("a{i}"))) + "\n")
        .collect();
    let responses = serve_lines(&daemon, &input);
    assert_eq!(responses.len(), n as usize);
    for r in &responses {
        // Well-formed: an object with an `ok` verdict either way.
        assert!(r.get("ok").is_some(), "{r:?}");
    }
    // Ordered: real responses echo their id; synthesized ones are null.
    for (expect, r) in (1u64..).zip(responses.iter()) {
        let id = r.get("id").unwrap();
        if let Some(got) = id.as_u64() {
            assert_eq!(got, expect, "{responses:?}");
        }
    }
}

/// The deadline smoke test: a wall-clock-starved request on a large
/// program comes back quickly, marked degraded with reason `deadline`,
/// instead of wedging a worker.
#[test]
fn deadline_starved_request_degrades_quickly() {
    if failpoints::env_active() {
        return; // timing under injected sleeps/panics is not the point
    }
    let _serial = fp_lock();
    let daemon = Daemon::new(Config {
        jobs: 1,
        ..Config::default()
    });
    let big = benchsuite::synthetic_program(200, 64);
    let line = serde_json::to_string(&Value::Object(vec![
        ("id".to_string(), Value::Int(1)),
        ("source".to_string(), Value::Str(big)),
        ("timeout_ms".to_string(), Value::UInt(0)),
    ]))
    .unwrap();
    let t0 = std::time::Instant::now();
    let responses = serve_lines(&daemon, &(line + "\n"));
    let elapsed = t0.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "starved request took {elapsed:?}"
    );
    assert_eq!(responses.len(), 1);
    let report = responses[0].get("report").expect("ok response");
    assert_eq!(report.get("degraded").unwrap(), &Value::Bool(true));
    assert_eq!(
        report.get("degrade_reason").unwrap(),
        &Value::Str("deadline".to_string())
    );
    assert!(
        daemon
            .metrics()
            .timeouts
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
}

/// Fuel budgets ride the protocol end to end: a step-starved request
/// degrades with `fuel_exhausted` and verdicts only move toward serial.
#[test]
fn fuel_starved_request_reports_fuel_exhausted() {
    if failpoints::env_active() {
        return;
    }
    let _serial = fp_lock();
    let daemon = Daemon::new(Config {
        jobs: 1,
        ..Config::default()
    });
    let src = kernel_src("aa");
    let starved = serde_json::to_string(&Value::Object(vec![
        ("id".to_string(), Value::Int(1)),
        ("source".to_string(), Value::Str(src.clone())),
        ("fuel".to_string(), Value::UInt(0)),
    ]))
    .unwrap();
    let full = analyze_line(2, &src);
    let responses = serve_lines(&daemon, &format!("{starved}\n{full}\n"));
    assert_eq!(responses.len(), 2);
    let degraded = responses[0].get("report").expect("ok response");
    assert_eq!(degraded.get("degraded").unwrap(), &Value::Bool(true));
    assert_eq!(
        degraded.get("degrade_reason").unwrap(),
        &Value::Str("fuel_exhausted".to_string())
    );
    let fresh = responses[1].get("report").expect("ok response");
    assert_eq!(fresh.get("degraded").unwrap(), &Value::Bool(false));
}
