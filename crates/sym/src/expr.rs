//! Normalized symbolic expressions: ordered sums of products.

use crate::env::Env;
use crate::monomial::{Monomial, Name};
use crate::term::Term;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A symbolic integer expression in canonical sum-of-products form.
///
/// Invariants: terms are sorted by [`Monomial`] order, monomials are unique,
/// and no coefficient is zero. The zero expression has no terms.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Expr {
    terms: Vec<Term>,
}

impl Expr {
    /// The zero expression.
    pub fn zero() -> Self {
        Expr { terms: Vec::new() }
    }

    /// The constant one.
    pub fn one() -> Self {
        Expr::from(1)
    }

    /// A single variable.
    pub fn var(name: impl Into<Name>) -> Self {
        Expr {
            terms: vec![Term::new(1, Monomial::var(name.into()))],
        }
    }

    /// Builds a normalized expression from arbitrary terms (sorts, merges,
    /// drops zeros). Returns `None` on coefficient overflow while merging.
    pub fn try_from_terms(terms: impl IntoIterator<Item = Term>) -> Option<Self> {
        let mut v: Vec<Term> = terms.into_iter().filter(|t| t.coef != 0).collect();
        v.sort_by(|a, b| a.mono.cmp(&b.mono));
        let mut out: Vec<Term> = Vec::with_capacity(v.len());
        for t in v {
            match out.last_mut() {
                Some(last) if last.mono == t.mono => {
                    last.coef = last.coef.checked_add(t.coef)?;
                }
                _ => out.push(t),
            }
        }
        out.retain(|t| t.coef != 0);
        Some(Expr { terms: out })
    }

    /// Like [`Expr::try_from_terms`] but panics on overflow.
    pub fn from_terms(terms: impl IntoIterator<Item = Term>) -> Self {
        Expr::try_from_terms(terms).expect("coefficient overflow in Expr::from_terms")
    }

    /// The terms, in canonical order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// `true` iff this is the zero expression.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Some(c)` iff the expression is the integer constant `c`.
    pub fn as_const(&self) -> Option<i64> {
        match self.terms.as_slice() {
            [] => Some(0),
            [t] if t.mono.is_one() => Some(t.coef),
            _ => None,
        }
    }

    /// `true` iff the expression is a constant.
    pub fn is_const(&self) -> bool {
        self.as_const().is_some()
    }

    /// `Some(name)` iff the expression is exactly one variable with
    /// coefficient 1.
    pub fn as_var(&self) -> Option<&Name> {
        match self.terms.as_slice() {
            [t] if t.coef == 1 && t.mono.degree() == 1 => t.mono.var_names().next(),
            _ => None,
        }
    }

    /// The constant term of the expression (0 if none).
    pub fn constant_part(&self) -> i64 {
        self.terms
            .iter()
            .find(|t| t.mono.is_one())
            .map_or(0, |t| t.coef)
    }

    /// Checked addition.
    pub fn try_add(&self, other: &Expr) -> Option<Expr> {
        Expr::try_from_terms(self.terms.iter().chain(other.terms.iter()).cloned())
    }

    /// Checked subtraction.
    pub fn try_sub(&self, other: &Expr) -> Option<Expr> {
        let negated = other
            .terms
            .iter()
            .map(|t| t.coef.checked_neg().map(|c| Term::new(c, t.mono.clone())));
        let mut all: Vec<Term> = self.terms.clone();
        for t in negated {
            all.push(t?);
        }
        Expr::try_from_terms(all)
    }

    /// Checked multiplication.
    pub fn try_mul(&self, other: &Expr) -> Option<Expr> {
        let mut prods = Vec::with_capacity(self.terms.len() * other.terms.len());
        for a in &self.terms {
            for b in &other.terms {
                prods.push(a.try_mul(b)?);
            }
        }
        Expr::try_from_terms(prods)
    }

    /// Checked multiplication by an integer constant.
    pub fn try_scale(&self, c: i64) -> Option<Expr> {
        if c == 0 {
            return Some(Expr::zero());
        }
        let terms = self
            .terms
            .iter()
            .map(|t| t.coef.checked_mul(c).map(|k| Term::new(k, t.mono.clone())))
            .collect::<Option<Vec<_>>>()?;
        Some(Expr { terms })
    }

    /// Exact division by an integer constant: `Some` iff every coefficient is
    /// divisible by `c` (and `c != 0`). This is the paper's "division with an
    /// integer constant divisor".
    pub fn div_exact(&self, c: i64) -> Option<Expr> {
        if c == 0 {
            return None;
        }
        let terms = self
            .terms
            .iter()
            .map(|t| {
                if t.coef % c == 0 {
                    Some(Term::new(t.coef / c, t.mono.clone()))
                } else {
                    None
                }
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Expr { terms })
    }

    /// Negation (never overflows except for `i64::MIN` coefficients, which
    /// panic).
    pub fn negate(&self) -> Expr {
        Expr {
            terms: self
                .terms
                .iter()
                .map(|t| {
                    Term::new(
                        t.coef.checked_neg().expect("negate overflow"),
                        t.mono.clone(),
                    )
                })
                .collect(),
        }
    }

    /// Does the expression mention the variable `name`?
    pub fn contains_var(&self, name: &str) -> bool {
        self.terms.iter().any(|t| t.mono.contains(name))
    }

    /// The set of distinct variable names in the expression.
    pub fn vars(&self) -> BTreeSet<Name> {
        let mut set = BTreeSet::new();
        for t in &self.terms {
            for n in t.mono.var_names() {
                set.insert(n.clone());
            }
        }
        set
    }

    /// Maximum total degree over all terms (0 for constants).
    pub fn degree(&self) -> u32 {
        self.terms
            .iter()
            .map(|t| t.mono.degree())
            .max()
            .unwrap_or(0)
    }

    /// Maximum number of *distinct* variables multiplied together in any one
    /// term. The paper marks regions **unknown** when this exceeds 1 for
    /// index variables ("multiplications of more than one index variable").
    pub fn max_vars_per_term(&self) -> usize {
        self.terms
            .iter()
            .map(|t| t.mono.num_vars())
            .max()
            .unwrap_or(0)
    }

    /// `true` iff the expression is affine: every term has degree <= 1.
    pub fn is_affine(&self) -> bool {
        self.degree() <= 1
    }

    /// `true` iff the expression is affine in `name`: `name` appears only in
    /// degree-1 terms not multiplied by any other variable.
    pub fn is_affine_in(&self, name: &str) -> bool {
        self.terms.iter().all(|t| {
            let p = t.mono.power_of(name);
            p == 0 || (p == 1 && t.mono.num_vars() == 1)
        })
    }

    /// Decomposes `self = c * name + rest` when the expression is affine in
    /// `name`; returns `(c, rest)` where `rest` does not mention `name`.
    /// Returns `None` if not affine in `name`. `c` may be 0 if `name` is
    /// absent.
    pub fn affine_decompose(&self, name: &str) -> Option<(i64, Expr)> {
        if !self.is_affine_in(name) {
            return None;
        }
        let mut coef = 0i64;
        let mut rest = Vec::new();
        for t in &self.terms {
            if t.mono.contains(name) {
                coef = coef.checked_add(t.coef)?;
            } else {
                rest.push(t.clone());
            }
        }
        Some((coef, Expr { terms: rest }))
    }

    /// Checked substitution of `name := value` (value may be any expression).
    /// Powers substitute as repeated products.
    pub fn try_subst_var(&self, name: &str, value: &Expr) -> Option<Expr> {
        if !self.contains_var(name) {
            return Some(self.clone());
        }
        let mut acc = Expr::zero();
        for t in &self.terms {
            let (rest, power) = t.mono.without(name);
            let mut piece = Expr {
                terms: vec![Term::new(t.coef, rest)],
            };
            for _ in 0..power {
                piece = piece.try_mul(value)?;
            }
            acc = acc.try_add(&piece)?;
        }
        Some(acc)
    }

    /// Substitution; panics on overflow. See [`Expr::try_subst_var`].
    pub fn subst_var(&self, name: &str, value: &Expr) -> Expr {
        self.try_subst_var(name, value)
            .expect("coefficient overflow in substitution")
    }

    /// Evaluates under an environment binding every variable to an integer.
    /// `None` if a variable is unbound or arithmetic overflows.
    pub fn eval(&self, env: &Env) -> Option<i64> {
        let mut sum: i64 = 0;
        for t in &self.terms {
            let mut prod: i64 = t.coef;
            for (n, p) in t.mono.factors() {
                let v = env.get(n.as_str())?;
                for _ in 0..*p {
                    prod = prod.checked_mul(v)?;
                }
            }
            sum = sum.checked_add(prod)?;
        }
        Some(sum)
    }

    /// A size measure used by simplifiers to cap blow-up: total number of
    /// monomial factors plus terms.
    pub fn size(&self) -> usize {
        self.terms
            .iter()
            .map(|t| 1 + t.mono.num_vars())
            .sum::<usize>()
    }
}

impl From<i64> for Expr {
    fn from(c: i64) -> Self {
        if c == 0 {
            Expr::zero()
        } else {
            Expr {
                terms: vec![Term::constant(c)],
            }
        }
    }
}

impl From<&str> for Expr {
    /// A bare variable (convenience for tests): `Expr::from("i")`.
    fn from(name: &str) -> Self {
        Expr::var(name)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.try_add(&rhs).expect("overflow in Expr + Expr")
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.try_sub(&rhs).expect("overflow in Expr - Expr")
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.try_mul(&rhs).expect("overflow in Expr * Expr")
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        self.negate()
    }
}

impl Add<i64> for Expr {
    type Output = Expr;
    fn add(self, rhs: i64) -> Expr {
        self + Expr::from(rhs)
    }
}

impl Sub<i64> for Expr {
    type Output = Expr;
    fn sub(self, rhs: i64) -> Expr {
        self - Expr::from(rhs)
    }
}

impl Mul<i64> for Expr {
    type Output = Expr;
    fn mul(self, rhs: i64) -> Expr {
        self.try_scale(rhs).expect("overflow in Expr * i64")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        for (k, t) in self.terms.iter().enumerate() {
            if k == 0 {
                write!(f, "{t}")?;
            } else if t.coef < 0 {
                let pos = Term::new(-t.coef, t.mono.clone());
                write!(f, " - {pos}")?;
            } else {
                write!(f, " + {t}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn zero_and_const() {
        assert!(Expr::zero().is_zero());
        assert_eq!(Expr::from(0), Expr::zero());
        assert_eq!(Expr::from(5).as_const(), Some(5));
        assert_eq!(Expr::zero().as_const(), Some(0));
        assert_eq!(v("i").as_const(), None);
    }

    #[test]
    fn add_merges_and_cancels() {
        let e = v("i") + v("i");
        assert_eq!(e.to_string(), "2*i");
        let z = v("i") - v("i");
        assert!(z.is_zero());
    }

    #[test]
    fn canonical_ordering_display() {
        // 2*(i+1) - i == i + 2
        let e = (v("i") + Expr::from(1)) * Expr::from(2) - v("i");
        assert_eq!(e.to_string(), "i + 2");
        // products sort before linear terms (grlex)
        let e2 = v("a") + v("i") * v("j");
        assert_eq!(e2.to_string(), "i*j + a");
    }

    #[test]
    fn mul_distributes() {
        let e = (v("i") + Expr::from(1)) * (v("i") - Expr::from(1));
        assert_eq!(e.to_string(), "i^2 - 1");
    }

    #[test]
    fn subst_simple() {
        let e = v("i") * Expr::from(3) + v("j");
        let r = e.subst_var("i", &(v("k") + Expr::from(2)));
        assert_eq!(r.to_string(), "j + 3*k + 6");
    }

    #[test]
    fn subst_power() {
        let e = v("i") * v("i");
        let r = e.subst_var("i", &(v("j") + Expr::from(1)));
        assert_eq!(r.to_string(), "j^2 + 2*j + 1");
    }

    #[test]
    fn subst_absent_is_identity() {
        let e = v("i") + Expr::from(4);
        assert_eq!(e.subst_var("q", &Expr::from(9)), e);
    }

    #[test]
    fn div_exact_works() {
        let e = v("i") * Expr::from(4) + Expr::from(8);
        assert_eq!(e.div_exact(4).unwrap().to_string(), "i + 2");
        assert!(e.div_exact(3).is_none());
        assert!(e.div_exact(0).is_none());
    }

    #[test]
    fn affine_decompose_basic() {
        let e = v("i") * Expr::from(2) + v("n") - Expr::from(1);
        let (c, rest) = e.affine_decompose("i").unwrap();
        assert_eq!(c, 2);
        assert_eq!(rest.to_string(), "n - 1");
        // i*j is not affine in i
        let e2 = v("i") * v("j");
        assert!(e2.affine_decompose("i").is_none());
        // absent var decomposes with c = 0
        let (c0, r0) = Expr::from(7).affine_decompose("i").unwrap();
        assert_eq!(c0, 0);
        assert_eq!(r0.as_const(), Some(7));
    }

    #[test]
    fn max_vars_per_term_flags_products_of_indices() {
        assert_eq!((v("i") * v("j")).max_vars_per_term(), 2);
        assert_eq!((v("i") + v("j")).max_vars_per_term(), 1);
        assert_eq!(Expr::from(3).max_vars_per_term(), 0);
    }

    #[test]
    fn eval_env() {
        let env = Env::from_pairs([("i", 3), ("j", 4)]);
        let e = v("i") * v("j") + Expr::from(1);
        assert_eq!(e.eval(&env), Some(13));
        let missing = v("q");
        assert_eq!(missing.eval(&env), None);
    }

    #[test]
    fn overflow_checked() {
        let big = Expr::from(i64::MAX);
        assert!(big.try_add(&Expr::from(1)).is_none());
        assert!(big.try_mul(&Expr::from(2)).is_none());
    }

    #[test]
    fn as_var() {
        assert_eq!(v("i").as_var().unwrap().as_str(), "i");
        assert!(Expr::from(3).as_var().is_none());
        assert!((v("i") * Expr::from(2)).as_var().is_none());
    }
}
