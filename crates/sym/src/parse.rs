//! A small text parser for symbolic expressions.
//!
//! Used pervasively by tests and the example binaries to build expressions
//! concisely: `parse_expr("2*i + n - 1")`. Grammar:
//!
//! ```text
//! expr   := term (('+' | '-') term)*
//! term   := factor (('*' factor) | ('/' integer))*
//! factor := integer | ident ('^' integer)? | '(' expr ')' | '-' factor
//! ```
//!
//! Division must be exact division by an integer literal (mirroring the
//! library's `div_exact`), otherwise parsing fails.

use crate::expr::Expr;
use std::fmt;

/// An error produced by [`parse_expr`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input at which the error occurred.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn integer(&mut self) -> Result<i64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected integer"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .parse::<i64>()
            .map_err(|e| self.err(format!("bad integer: {e}")))
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            .unwrap()
            .to_string())
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(b'-') => {
                self.bump();
                Ok(self.factor()?.negate())
            }
            Some(b'(') => {
                self.bump();
                let e = self.expr()?;
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.bump();
                Ok(e)
            }
            Some(c) if c.is_ascii_digit() => Ok(Expr::from(self.integer()?)),
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let name = self.ident()?;
                let mut e = Expr::var(name);
                if self.peek() == Some(b'^') {
                    self.bump();
                    let p = self.integer()?;
                    if p < 0 {
                        return Err(self.err("negative power"));
                    }
                    let base = e.clone();
                    e = Expr::one();
                    for _ in 0..p {
                        e = e
                            .try_mul(&base)
                            .ok_or_else(|| self.err("overflow in power"))?;
                    }
                }
                Ok(e)
            }
            _ => Err(self.err("expected factor")),
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.factor()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    let f = self.factor()?;
                    e = e
                        .try_mul(&f)
                        .ok_or_else(|| self.err("overflow in product"))?;
                }
                Some(b'/') => {
                    self.bump();
                    let d = self.integer()?;
                    e = e.div_exact(d).ok_or_else(|| self.err("inexact division"))?;
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.term()?;
        loop {
            match self.peek() {
                Some(b'+') => {
                    self.bump();
                    let t = self.term()?;
                    e = e.try_add(&t).ok_or_else(|| self.err("overflow in sum"))?;
                }
                Some(b'-') => {
                    self.bump();
                    let t = self.term()?;
                    e = e
                        .try_sub(&t)
                        .ok_or_else(|| self.err("overflow in difference"))?;
                }
                _ => break,
            }
        }
        Ok(e)
    }
}

/// Parses a symbolic expression from text. See the module docs for the
/// grammar.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src);
    let e = p.expr()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_vars() {
        assert_eq!(parse_expr("42").unwrap().as_const(), Some(42));
        assert_eq!(parse_expr("i").unwrap(), Expr::var("i"));
        assert_eq!(parse_expr(" - 3 ").unwrap().as_const(), Some(-3));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2*i - 3").unwrap();
        assert_eq!(e.to_string(), "2*i - 2");
        let f = parse_expr("(1 + i) * 2").unwrap();
        assert_eq!(f.to_string(), "2*i + 2");
    }

    #[test]
    fn powers() {
        assert_eq!(parse_expr("i^2").unwrap().to_string(), "i^2");
        assert_eq!(parse_expr("i^0").unwrap().as_const(), Some(1));
    }

    #[test]
    fn exact_division() {
        assert_eq!(parse_expr("(4*i + 8)/4").unwrap().to_string(), "i + 2");
        assert!(parse_expr("(4*i + 9)/4").is_err());
    }

    #[test]
    fn errors() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("i +").is_err());
        assert!(parse_expr("(i").is_err());
        assert!(parse_expr("i j").is_err());
    }

    #[test]
    fn roundtrip_display() {
        for s in ["i + 2", "2*i*j - k + 1", "n^2 - 1"] {
            let e = parse_expr(s).unwrap();
            assert_eq!(parse_expr(&e.to_string()).unwrap(), e);
        }
    }
}
