//! Pluggable refutation oracle for [`crate::compare`].
//!
//! The paper's comparison rule decides `a ? b` only when `a - b`
//! normalizes to a constant; everything else is Δ-unknown. The
//! value-range pass upgrades this: when it has proved bounds for the
//! scalars of the difference, it can decide the sign of `a - b` even
//! though the difference is symbolic (e.g. `m - 100` with
//! `m ∈ [150, 200]` is positive).
//!
//! `sym` cannot depend on the range analysis, so the oracle is a
//! thread-local hook the analyzer installs around each routine: given
//! the normalized difference `a - b`, it answers a definite
//! [`SymOrdering`] plus a human-readable justification, or `None`. Only
//! *strict* verdicts are representable — an oracle must never answer
//! `Less` unless `a < b` holds for every admissible valuation.
//!
//! Every successful consultation is logged (deduplicated, bounded) so
//! the analyzer can attach `range_compare` provenance to the decisions
//! the pass contributed.

use crate::compare::SymOrdering;
use crate::expr::Expr;
use std::cell::RefCell;

/// One comparison the oracle decided.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RangeDecision {
    /// Left-hand side, as displayed.
    pub lhs: String,
    /// Right-hand side, as displayed.
    pub rhs: String,
    /// The oracle's justification (e.g. `m - 100 in [50, 100]`).
    pub detail: String,
    /// The proved relation: `lt`, `eq` or `gt`.
    pub result: &'static str,
}

/// The hook: maps a normalized difference `a - b` to a definite
/// ordering and a justification string.
pub type BoundsHook = Box<dyn Fn(&Expr) -> Option<(SymOrdering, String)>>;

/// Cap on retained decisions per installation: enough for provenance,
/// bounded for cache entries.
const LOG_CAP: usize = 64;

thread_local! {
    static HOOK: RefCell<Option<BoundsHook>> = const { RefCell::new(None) };
    static LOG: RefCell<Vec<RangeDecision>> = const { RefCell::new(Vec::new()) };
}

/// Installs `hook` for the current thread; the returned guard removes
/// it (and clears the decision log) on drop. Installing over an
/// existing hook replaces it.
pub struct OracleGuard(());

impl OracleGuard {
    /// Installs the oracle.
    pub fn install(hook: BoundsHook) -> OracleGuard {
        HOOK.with(|h| *h.borrow_mut() = Some(hook));
        LOG.with(|l| l.borrow_mut().clear());
        OracleGuard(())
    }
}

impl Drop for OracleGuard {
    fn drop(&mut self) {
        HOOK.with(|h| *h.borrow_mut() = None);
        LOG.with(|l| l.borrow_mut().clear());
    }
}

/// `true` iff an oracle is installed on this thread.
pub fn oracle_active() -> bool {
    HOOK.with(|h| h.borrow().is_some())
}

/// Drains the decisions logged since the last drain, in consultation
/// order, deduplicated.
pub fn take_decisions() -> Vec<RangeDecision> {
    LOG.with(|l| {
        let mut v = std::mem::take(&mut *l.borrow_mut());
        let mut seen = Vec::new();
        v.retain(|d| {
            if seen.contains(d) {
                false
            } else {
                seen.push(d.clone());
                true
            }
        });
        v
    })
}

/// The current length of the decision log — a mark to pass to
/// [`decisions_since`] for attributing later decisions to one region of
/// the analysis (e.g. one loop) without draining the log.
pub fn log_mark() -> usize {
    LOG.with(|l| l.borrow().len())
}

/// The decisions logged since `mark` (from [`log_mark`]), deduplicated,
/// without draining the log. A mark taken under a different oracle
/// installation saturates to the full log.
pub fn decisions_since(mark: usize) -> Vec<RangeDecision> {
    LOG.with(|l| {
        let log = l.borrow();
        let tail = &log[mark.min(log.len())..];
        let mut seen: Vec<RangeDecision> = Vec::new();
        for d in tail {
            if !seen.contains(d) {
                seen.push(d.clone());
            }
        }
        seen
    })
}

/// Consults the oracle about `a ? b` with normalized difference `diff`.
/// Called by [`crate::compare`] on its Δ-unknown path.
pub(crate) fn consult(a: &Expr, b: &Expr, diff: &Expr) -> SymOrdering {
    HOOK.with(|h| {
        let borrow = h.borrow();
        let Some(hook) = borrow.as_ref() else {
            return SymOrdering::Unknown;
        };
        match hook(diff) {
            Some((ord, detail)) if ord != SymOrdering::Unknown => {
                let result = match ord {
                    SymOrdering::Less => "lt",
                    SymOrdering::Equal => "eq",
                    SymOrdering::Greater => "gt",
                    SymOrdering::Unknown => unreachable!(),
                };
                LOG.with(|l| {
                    let mut log = l.borrow_mut();
                    if log.len() < LOG_CAP {
                        log.push(RangeDecision {
                            lhs: a.to_string(),
                            rhs: b.to_string(),
                            detail,
                            result,
                        });
                    }
                });
                ord
            }
            _ => SymOrdering::Unknown,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare;

    #[test]
    fn no_oracle_stays_unknown() {
        assert!(!oracle_active());
        assert_eq!(
            compare(&Expr::var("a"), &Expr::var("b")),
            SymOrdering::Unknown
        );
        assert!(take_decisions().is_empty());
    }

    #[test]
    fn oracle_decides_and_logs() {
        // An oracle that knows m >= 150: m - 100 is positive.
        let guard = OracleGuard::install(Box::new(|diff: &Expr| {
            if diff.contains_var("m") {
                Some((SymOrdering::Greater, "m - 100 in [50, 100]".to_string()))
            } else {
                None
            }
        }));
        assert!(oracle_active());
        let m = Expr::var("m");
        let hundred = Expr::from(100);
        assert_eq!(compare(&m, &hundred), SymOrdering::Greater);
        // Constants still decide without the oracle.
        assert_eq!(compare(&Expr::from(1), &Expr::from(2)), SymOrdering::Less);
        let decisions = take_decisions();
        assert_eq!(decisions.len(), 1);
        assert_eq!(decisions[0].lhs, "m");
        assert_eq!(decisions[0].rhs, "100");
        assert_eq!(decisions[0].result, "gt");
        drop(guard);
        assert!(!oracle_active());
        assert_eq!(compare(&m, &hundred), SymOrdering::Unknown);
    }

    #[test]
    fn duplicate_decisions_dedup() {
        let _guard = OracleGuard::install(Box::new(|_| {
            Some((SymOrdering::Less, "x in [-5, -1]".to_string()))
        }));
        let a = Expr::var("x");
        let b = Expr::zero();
        for _ in 0..10 {
            assert_eq!(compare(&a, &b), SymOrdering::Less);
        }
        assert_eq!(take_decisions().len(), 1);
    }

    #[test]
    fn guard_drop_clears_log() {
        {
            let _g = OracleGuard::install(Box::new(|_| Some((SymOrdering::Less, "d".to_string()))));
            let _ = compare(&Expr::var("x"), &Expr::zero());
        }
        assert!(take_decisions().is_empty());
    }
}
