//! Property-based tests: algebraic laws of `Expr` checked against direct
//! integer evaluation under random environments.

use crate::{compare, parse_expr, Env, Expr, SymOrdering};
use proptest::prelude::*;

const VARS: [&str; 4] = ["i", "j", "n", "m"];

/// A strategy producing small random expressions over a fixed variable set.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(Expr::from),
        (0usize..VARS.len()).prop_map(|k| Expr::var(VARS[k])),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_filter_map("mul overflow", |(a, b)| a.try_mul(&b)),
            inner.prop_map(|a| -a),
        ]
    })
}

fn arb_env() -> impl Strategy<Value = Env> {
    proptest::collection::vec(-50i64..50, VARS.len())
        .prop_map(|vals| Env::from_pairs(VARS.iter().copied().zip(vals)))
}

proptest! {
    #[test]
    fn add_commutes(a in arb_expr(), b in arb_expr()) {
        prop_assume!(a.try_add(&b).is_some());
        prop_assert_eq!(a.try_add(&b), b.try_add(&a));
    }

    #[test]
    fn mul_commutes(a in arb_expr(), b in arb_expr()) {
        prop_assume!(a.try_mul(&b).is_some());
        prop_assert_eq!(a.try_mul(&b), b.try_mul(&a));
    }

    #[test]
    fn add_assoc(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
        let l = a.try_add(&b).and_then(|x| x.try_add(&c));
        let r = b.try_add(&c).and_then(|x| a.try_add(&x));
        prop_assume!(l.is_some() && r.is_some());
        prop_assert_eq!(l, r);
    }

    #[test]
    fn mul_distributes_over_add(a in arb_expr(), b in arb_expr(), c in arb_expr()) {
        let l = b.try_add(&c).and_then(|s| a.try_mul(&s));
        let r = a.try_mul(&b).and_then(|ab| a.try_mul(&c).and_then(|ac| ab.try_add(&ac)));
        prop_assume!(l.is_some() && r.is_some());
        prop_assert_eq!(l, r);
    }

    #[test]
    fn sub_self_is_zero(a in arb_expr()) {
        prop_assert!(a.try_sub(&a).unwrap().is_zero());
    }

    /// Normalization is sound: the canonical form evaluates like the
    /// unnormalized arithmetic under every environment.
    #[test]
    fn eval_homomorphism(a in arb_expr(), b in arb_expr(), env in arb_env()) {
        if let (Some(sum), Some(va), Some(vb)) = (a.try_add(&b), a.eval(&env), b.eval(&env)) {
            if let (Some(vs), Some(expect)) = (sum.eval(&env), va.checked_add(vb)) {
                prop_assert_eq!(vs, expect);
            }
        }
        if let (Some(prod), Some(va), Some(vb)) = (a.try_mul(&b), a.eval(&env), b.eval(&env)) {
            if let (Some(vp), Some(expect)) = (prod.eval(&env), va.checked_mul(vb)) {
                prop_assert_eq!(vp, expect);
            }
        }
    }

    /// Substitution agrees with evaluation: eval(e[v := r]) == eval(e) when
    /// env(v) == eval(r).
    #[test]
    fn subst_agrees_with_eval(e in arb_expr(), r in arb_expr(), mut env in arb_env()) {
        // If r mentions i, rebinding i below would change r's own value.
        prop_assume!(!r.contains_var("i"));
        if let Some(rv) = r.eval(&env) {
            if let Some(substituted) = e.try_subst_var("i", &r) {
                env.set("i", rv);
                let direct = e.eval(&env);
                let via_subst = substituted.eval(&env);
                if let (Some(d), Some(s)) = (direct, via_subst) {
                    prop_assert_eq!(d, s);
                }
            }
        }
    }

    /// A definite comparison verdict holds under every environment.
    #[test]
    fn compare_sound(a in arb_expr(), b in arb_expr(), env in arb_env()) {
        if let (Some(va), Some(vb)) = (a.eval(&env), b.eval(&env)) {
            match compare(&a, &b) {
                SymOrdering::Less => prop_assert!(va < vb),
                SymOrdering::Equal => prop_assert_eq!(va, vb),
                SymOrdering::Greater => prop_assert!(va > vb),
                SymOrdering::Unknown => {}
            }
        }
    }

    /// Display → parse round-trips to the same canonical expression.
    #[test]
    fn display_parse_roundtrip(a in arb_expr()) {
        let printed = a.to_string();
        let reparsed = parse_expr(&printed).unwrap();
        prop_assert_eq!(reparsed, a);
    }

    /// `div_exact` inverts `try_scale`.
    #[test]
    fn div_inverts_scale(a in arb_expr(), c in 1i64..20) {
        if let Some(scaled) = a.try_scale(c) {
            prop_assert_eq!(scaled.div_exact(c), Some(a));
        }
    }
}
