//! Symbolic integer expressions for array dataflow analysis.
//!
//! This crate implements the "general expression operation library" of
//! Gu, Li & Lee (SC'95): integer symbolic expressions normalized to an
//! **ordered sum of products**, with addition, subtraction, multiplication,
//! division by an integer constant, substitution, and symbolic comparison.
//!
//! The central type is [`Expr`]. An expression is a canonical sum of
//! [`Term`]s, each a (coefficient, [`Monomial`]) pair, where a monomial is an
//! ordered product of powers of named variables. The empty monomial denotes
//! the constant term, so every integer constant is an `Expr` with at most one
//! term.
//!
//! # Canonical form
//!
//! * terms are sorted by monomial (graded lexicographic order),
//! * no term has a zero coefficient,
//! * monomial variables are sorted by name with positive integer powers.
//!
//! Two expressions are semantically equal iff they are structurally equal,
//! which makes hashing and set operations on regions cheap — the property the
//! paper relies on when simplifying guarded array regions.
//!
//! # Overflow
//!
//! Coefficient arithmetic is checked. The operator impls (`+`, `-`, `*`)
//! panic on `i64` overflow (compiler-sized expressions never get close);
//! `try_add`/`try_sub`/`try_mul` return `None` instead and are used where
//! untrusted input flows.
//!
//! # Example
//!
//! ```
//! use sym::Expr;
//! let i = Expr::var("i");
//! let e = (i.clone() + Expr::from(1)) * Expr::from(2) - i.clone();
//! assert_eq!(e.to_string(), "i + 2");
//! assert_eq!(e.subst_var("i", &Expr::from(3)).as_const(), Some(5));
//! ```

#![warn(missing_docs)]

pub mod bounds;
mod compare;
mod env;
mod expr;
mod monomial;
mod parse;
mod term;

pub use compare::{compare, diff_const, SymOrdering};
pub use env::Env;
pub use expr::Expr;
pub use monomial::{Monomial, Name};
pub use parse::{parse_expr, ParseError};
pub use term::Term;

#[cfg(test)]
mod proptests;
