//! Integer environments for evaluating symbolic expressions.
//!
//! Environments are used by tests (property-based soundness checks: a
//! simplification is correct iff it preserves the value under *every*
//! assignment) and by the interpreter substrate.

use std::collections::HashMap;

/// A finite map from variable names to integer values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Env {
    map: HashMap<String, i64>,
}

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Builds an environment from `(name, value)` pairs.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, i64)>) -> Self {
        Env {
            map: pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
        }
    }

    /// Binds `name` to `value`, returning any previous binding.
    pub fn set(&mut self, name: impl Into<String>, value: i64) -> Option<i64> {
        self.map.insert(name.into(), value)
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<i64> {
        self.map.get(name).copied()
    }

    /// Removes a binding.
    pub fn unset(&mut self, name: &str) -> Option<i64> {
        self.map.remove(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff no bindings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(name, value)` bindings in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, i64)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut env = Env::new();
        assert!(env.is_empty());
        assert_eq!(env.set("i", 1), None);
        assert_eq!(env.set("i", 2), Some(1));
        assert_eq!(env.get("i"), Some(2));
        assert_eq!(env.len(), 1);
        assert_eq!(env.unset("i"), Some(2));
        assert_eq!(env.get("i"), None);
    }

    #[test]
    fn from_pairs_and_iter() {
        let env = Env::from_pairs([("a", 1), ("b", 2)]);
        let mut got: Vec<_> = env.iter().map(|(k, v)| (k.to_string(), v)).collect();
        got.sort();
        assert_eq!(got, vec![("a".to_string(), 1), ("b".to_string(), 2)]);
    }
}
