//! Variable names and monomials (ordered products of variable powers).

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// An interned-ish variable name. Cheap to clone (`Arc<str>`), ordered and
/// hashed by its string content.
///
/// Names compare by byte order, which fixes the variable order inside
/// monomials and therefore the canonical form of every [`crate::Expr`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// The underlying string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({})", self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name::new(s)
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Serialize for Name {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Str(self.0.to_string())
    }
}

/// A product of variable powers, e.g. `i^2 * j`. The constant monomial `1`
/// is the empty product.
///
/// Invariants: factors are sorted by [`Name`], every power is `>= 1`, and no
/// variable appears twice.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Monomial {
    factors: Vec<(Name, u32)>,
}

impl Monomial {
    /// The constant monomial (empty product).
    pub fn one() -> Self {
        Monomial {
            factors: Vec::new(),
        }
    }

    /// A single variable to the first power.
    pub fn var(name: impl Into<Name>) -> Self {
        Monomial {
            factors: vec![(name.into(), 1)],
        }
    }

    /// Builds a monomial from `(name, power)` pairs; merges duplicates and
    /// drops zero powers.
    pub fn from_factors(factors: impl IntoIterator<Item = (Name, u32)>) -> Self {
        let mut v: Vec<(Name, u32)> = Vec::new();
        for (n, p) in factors {
            if p == 0 {
                continue;
            }
            v.push((n, p));
        }
        v.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Name, u32)> = Vec::with_capacity(v.len());
        for (n, p) in v {
            match merged.last_mut() {
                Some((ln, lp)) if *ln == n => *lp += p,
                _ => merged.push((n, p)),
            }
        }
        Monomial { factors: merged }
    }

    /// `true` iff this is the constant monomial.
    pub fn is_one(&self) -> bool {
        self.factors.is_empty()
    }

    /// Total degree — the sum of all powers.
    pub fn degree(&self) -> u32 {
        self.factors.iter().map(|&(_, p)| p).sum()
    }

    /// Number of *distinct* variables.
    pub fn num_vars(&self) -> usize {
        self.factors.len()
    }

    /// The sorted `(name, power)` factors.
    pub fn factors(&self) -> &[(Name, u32)] {
        &self.factors
    }

    /// Does the monomial mention `name`?
    pub fn contains(&self, name: &str) -> bool {
        self.factors.iter().any(|(n, _)| n.as_str() == name)
    }

    /// The power of `name` in this monomial (0 if absent).
    pub fn power_of(&self, name: &str) -> u32 {
        self.factors
            .iter()
            .find(|(n, _)| n.as_str() == name)
            .map_or(0, |&(_, p)| p)
    }

    /// Product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        Monomial::from_factors(
            self.factors
                .iter()
                .chain(other.factors.iter())
                .map(|(n, p)| (n.clone(), *p)),
        )
    }

    /// Removes `name` entirely, returning the remaining monomial and the
    /// removed power.
    pub fn without(&self, name: &str) -> (Monomial, u32) {
        let mut power = 0;
        let factors = self
            .factors
            .iter()
            .filter(|(n, p)| {
                if n.as_str() == name {
                    power = *p;
                    false
                } else {
                    true
                }
            })
            .cloned()
            .collect();
        (Monomial { factors }, power)
    }

    /// Iterates over the variable names.
    pub fn var_names(&self) -> impl Iterator<Item = &Name> {
        self.factors.iter().map(|(n, _)| n)
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Graded lexicographic order: first by total degree, then lexicographically
/// by the factor list. The constant monomial sorts last (so constants print
/// at the end of a sum, like the paper's examples `i + 2`).
impl Ord for Monomial {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_one(), other.is_one()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        other
            .degree()
            .cmp(&self.degree())
            .then_with(|| self.factors.cmp(&other.factors))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            return f.write_str("1");
        }
        let mut first = true;
        for (n, p) in &self.factors {
            if !first {
                f.write_str("*")?;
            }
            first = false;
            if *p == 1 {
                write!(f, "{n}")?;
            } else {
                write!(f, "{n}^{p}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_is_empty() {
        assert!(Monomial::one().is_one());
        assert_eq!(Monomial::one().degree(), 0);
    }

    #[test]
    fn factors_sorted_and_merged() {
        let m = Monomial::from_factors([
            (Name::new("j"), 1),
            (Name::new("i"), 2),
            (Name::new("j"), 1),
        ]);
        assert_eq!(m.to_string(), "i^2*j^2");
        assert_eq!(m.degree(), 4);
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn zero_powers_dropped() {
        let m = Monomial::from_factors([(Name::new("i"), 0)]);
        assert!(m.is_one());
    }

    #[test]
    fn mul_merges() {
        let a = Monomial::var("i");
        let b = Monomial::from_factors([(Name::new("i"), 1), (Name::new("k"), 3)]);
        assert_eq!(a.mul(&b).to_string(), "i^2*k^3");
    }

    #[test]
    fn without_removes_var() {
        let m = Monomial::from_factors([(Name::new("i"), 2), (Name::new("j"), 1)]);
        let (rest, p) = m.without("i");
        assert_eq!(p, 2);
        assert_eq!(rest.to_string(), "j");
        let (same, p0) = m.without("zz");
        assert_eq!(p0, 0);
        assert_eq!(same, m);
    }

    #[test]
    fn ordering_grlex_constant_last() {
        let one = Monomial::one();
        let i = Monomial::var("i");
        let ij = Monomial::from_factors([(Name::new("i"), 1), (Name::new("j"), 1)]);
        assert!(ij < i, "higher degree sorts first");
        assert!(i < one, "constant sorts last");
    }

    #[test]
    fn power_of_and_contains() {
        let m = Monomial::from_factors([(Name::new("n"), 3)]);
        assert_eq!(m.power_of("n"), 3);
        assert!(m.contains("n"));
        assert!(!m.contains("m"));
    }
}
