//! Symbolic comparison of expressions.
//!
//! The analyzer constantly needs to answer "is `a <= b`?" for symbolic
//! bounds. Following the paper, comparisons are decided by normalizing the
//! difference `a - b`: if it reduces to an integer constant the answer is
//! definite, otherwise it is *unknown* and the caller must case-split by
//! pushing the inequality into a guard.

use crate::expr::Expr;
use std::cmp::Ordering;

/// The result of comparing two symbolic expressions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SymOrdering {
    /// Definitely `a < b`.
    Less,
    /// Definitely `a == b` (as polynomials).
    Equal,
    /// Definitely `a > b`.
    Greater,
    /// Cannot be decided without more information.
    Unknown,
}

impl SymOrdering {
    /// Converts to a definite [`Ordering`] if known.
    pub fn definite(self) -> Option<Ordering> {
        match self {
            SymOrdering::Less => Some(Ordering::Less),
            SymOrdering::Equal => Some(Ordering::Equal),
            SymOrdering::Greater => Some(Ordering::Greater),
            SymOrdering::Unknown => None,
        }
    }

    /// `true` iff we can prove `a <= b`.
    pub fn is_le(self) -> bool {
        matches!(self, SymOrdering::Less | SymOrdering::Equal)
    }

    /// `true` iff we can prove `a >= b`.
    pub fn is_ge(self) -> bool {
        matches!(self, SymOrdering::Greater | SymOrdering::Equal)
    }
}

/// Compares `a` and `b` symbolically by examining `a - b`. When the
/// difference stays symbolic, an installed bounds oracle
/// ([`crate::bounds`]) gets a chance to decide its sign from proved
/// scalar ranges before the answer degrades to Δ-unknown.
pub fn compare(a: &Expr, b: &Expr) -> SymOrdering {
    let Some(d) = a.try_sub(b) else {
        return SymOrdering::Unknown;
    };
    match d.as_const() {
        Some(c) if c < 0 => SymOrdering::Less,
        Some(0) => SymOrdering::Equal,
        Some(_) => SymOrdering::Greater,
        None => crate::bounds::consult(a, b, &d),
    }
}

/// `Some(c)` iff `a - b` normalizes to the constant `c`. This is the main
/// workhorse for merging adjacent ranges: `(1:a) ∪ (a+1:100)` merges because
/// `(a+1) - a == 1`.
pub fn diff_const(a: &Expr, b: &Expr) -> Option<i64> {
    a.try_sub(b)?.as_const()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn constant_comparisons() {
        assert_eq!(compare(&Expr::from(1), &Expr::from(2)), SymOrdering::Less);
        assert_eq!(compare(&Expr::from(2), &Expr::from(2)), SymOrdering::Equal);
        assert_eq!(
            compare(&Expr::from(3), &Expr::from(2)),
            SymOrdering::Greater
        );
    }

    #[test]
    fn symbolic_equal_after_normalization() {
        let a = (v("i") + Expr::from(1)) * Expr::from(2);
        let b = v("i") * Expr::from(2) + Expr::from(2);
        assert_eq!(compare(&a, &b), SymOrdering::Equal);
    }

    #[test]
    fn offset_comparison() {
        let a = v("n");
        let b = v("n") + Expr::from(1);
        assert_eq!(compare(&a, &b), SymOrdering::Less);
        assert!(compare(&a, &b).is_le());
        assert!(!compare(&a, &b).is_ge());
    }

    #[test]
    fn unrelated_vars_unknown() {
        assert_eq!(compare(&v("a"), &v("b")), SymOrdering::Unknown);
        assert_eq!(compare(&v("a"), &v("b")).definite(), None);
    }

    #[test]
    fn diff_const_for_merging() {
        // (a+1) - a == 1, the adjacency test used in range union
        assert_eq!(diff_const(&(v("a") + Expr::from(1)), &v("a")), Some(1));
        assert_eq!(diff_const(&v("a"), &v("b")), None);
    }
}
