//! A term: coefficient times monomial.

use crate::monomial::Monomial;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// One addend of an [`crate::Expr`]: `coef * mono`.
///
/// Invariant (enforced by `Expr`): `coef != 0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Term {
    /// The integer coefficient, never zero inside a normalized expression.
    pub coef: i64,
    /// The product of variable powers.
    pub mono: Monomial,
}

impl Term {
    /// Creates a term.
    pub fn new(coef: i64, mono: Monomial) -> Self {
        Term { coef, mono }
    }

    /// The constant term `c`.
    pub fn constant(c: i64) -> Self {
        Term::new(c, Monomial::one())
    }

    /// Checked product of two terms; `None` on coefficient overflow.
    pub fn try_mul(&self, other: &Term) -> Option<Term> {
        Some(Term::new(
            self.coef.checked_mul(other.coef)?,
            self.mono.mul(&other.mono),
        ))
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Orders by monomial (canonical expression order), then by coefficient.
impl Ord for Term {
    fn cmp(&self, other: &Self) -> Ordering {
        self.mono
            .cmp(&other.mono)
            .then_with(|| self.coef.cmp(&other.coef))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.mono.is_one() {
            write!(f, "{}", self.coef)
        } else if self.coef == 1 {
            write!(f, "{}", self.mono)
        } else if self.coef == -1 {
            write!(f, "-{}", self.mono)
        } else {
            write!(f, "{}*{}", self.coef, self.mono)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Name;

    #[test]
    fn display_forms() {
        assert_eq!(Term::constant(7).to_string(), "7");
        assert_eq!(Term::new(1, Monomial::var("i")).to_string(), "i");
        assert_eq!(Term::new(-1, Monomial::var("i")).to_string(), "-i");
        assert_eq!(Term::new(3, Monomial::var("i")).to_string(), "3*i");
    }

    #[test]
    fn try_mul_overflow() {
        let big = Term::constant(i64::MAX);
        assert!(big.try_mul(&Term::constant(2)).is_none());
        let m = Term::new(2, Monomial::var("i"));
        let r = m.try_mul(&m).unwrap();
        assert_eq!(r.coef, 4);
        assert_eq!(r.mono, Monomial::from_factors([(Name::new("i"), 2)]));
    }
}
