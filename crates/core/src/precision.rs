//! panoledger reporting — the [`PrecisionReport`] aggregation over one
//! run's precision-loss events (DESIGN.md §4j).
//!
//! The raw material is the `trace::ledger` event stream recorded while
//! the pipeline ran; this module folds it together with the verdicts
//! into the report every surface shares: event counts by cause, the
//! serial-verdict attribution split (proven dependence vs. degraded
//! analysis) and the headline precision ratio. The ratio is rendered as
//! a fixed three-decimal string — integer arithmetic, no floats — so
//! reports are byte-identical across job counts and cache state.

use crate::Analysis;
use serde::Value;
use trace::ledger::{Cause, PrecisionEvent};

/// Aggregated precision accounting for one analysis run.
#[derive(Clone, Debug)]
pub struct PrecisionReport {
    /// Event count per cause, for every cause in [`Cause::ALL`] order
    /// (zero counts included — the schema is fixed-shape).
    pub counts: Vec<(Cause, u64)>,
    /// Outermost-and-nested loop verdicts in the run.
    pub loops_total: u64,
    /// Verdicts parallel (as-is or after privatization).
    pub loops_parallel: u64,
    /// Serial verdicts backed by a proven dependence at full precision.
    pub loops_serial_dependence: u64,
    /// Serial verdicts from a budget-degraded (widened) analysis — the
    /// loops whose serialization is attributable to precision loss, not
    /// to a dependence anyone proved.
    pub loops_serial_degraded: u64,
    /// The recorded events, in pipeline order.
    pub events: Vec<PrecisionEvent>,
    /// Events dropped past the ledger's hard cap.
    pub events_dropped: u64,
}

impl PrecisionReport {
    /// Folds a run's ledger slice and verdicts into the report.
    pub fn build(analysis: &Analysis, events: Vec<PrecisionEvent>, events_dropped: u64) -> Self {
        let counts = Cause::ALL
            .into_iter()
            .map(|c| (c, events.iter().filter(|e| e.cause == c).count() as u64))
            .collect();
        let mut loops_total = 0u64;
        let mut loops_parallel = 0u64;
        let mut loops_serial_degraded = 0u64;
        for v in &analysis.verdicts {
            loops_total += 1;
            if v.parallel_after_privatization {
                loops_parallel += 1;
            } else if v.degraded {
                loops_serial_degraded += 1;
            }
        }
        let loops_serial_dependence = loops_total - loops_parallel - loops_serial_degraded;
        PrecisionReport {
            counts,
            loops_total,
            loops_parallel,
            loops_serial_dependence,
            loops_serial_degraded,
            events,
            events_dropped,
        }
    }

    /// Total events across all causes (dropped events not included).
    pub fn events_total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }

    /// Events whose cause can flip a verdict to serial
    /// ([`Cause::degrades_verdicts`]).
    pub fn degrading_events(&self) -> u64 {
        self.counts
            .iter()
            .filter(|(c, _)| c.degrades_verdicts())
            .map(|(_, n)| n)
            .sum()
    }

    /// The headline ratio: verdicts decided at full precision (parallel
    /// or serial-with-proven-dependence) over all verdicts, as a fixed
    /// three-decimal string. An empty run is vacuously `"1.000"`.
    pub fn ratio(&self) -> String {
        ratio_3(
            self.loops_total - self.loops_serial_degraded,
            self.loops_total,
        )
    }

    /// The machine-readable report, attached to the analysis JSON under
    /// the additive `"precision"` key.
    pub fn json(&self) -> Value {
        Value::Object(vec![
            (
                "causes".to_string(),
                Value::Object(
                    self.counts
                        .iter()
                        .map(|(c, n)| (c.as_str().to_string(), Value::UInt(*n)))
                        .collect(),
                ),
            ),
            (
                "loops".to_string(),
                Value::Object(vec![
                    ("total".to_string(), Value::UInt(self.loops_total)),
                    ("parallel".to_string(), Value::UInt(self.loops_parallel)),
                    (
                        "serial_dependence".to_string(),
                        Value::UInt(self.loops_serial_dependence),
                    ),
                    (
                        "serial_degraded".to_string(),
                        Value::UInt(self.loops_serial_degraded),
                    ),
                ]),
            ),
            ("precision_ratio".to_string(), Value::Str(self.ratio())),
            (
                "events".to_string(),
                Value::Array(
                    self.events
                        .iter()
                        .map(|e| {
                            Value::Object(vec![
                                (
                                    "cause".to_string(),
                                    Value::Str(e.cause.as_str().to_string()),
                                ),
                                ("routine".to_string(), Value::Str(e.routine.clone())),
                                ("var".to_string(), Value::Str(e.var.clone())),
                                ("line".to_string(), Value::UInt(u64::from(e.line))),
                                ("detail".to_string(), Value::Str(e.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "events_dropped".to_string(),
                Value::UInt(self.events_dropped),
            ),
        ])
    }

    /// Human-readable rendering for `panorama --precision-report`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("precision report:\n");
        out.push_str(&format!(
            "  loops: {} total, {} parallel, {} serial (proven dependence), {} serial (degraded analysis)\n",
            self.loops_total,
            self.loops_parallel,
            self.loops_serial_dependence,
            self.loops_serial_degraded,
        ));
        out.push_str(&format!(
            "  precision ratio: {} (verdicts decided at full precision)\n",
            self.ratio()
        ));
        out.push_str(&format!(
            "  events: {} recorded ({} verdict-degrading), {} dropped\n",
            self.events_total(),
            self.degrading_events(),
            self.events_dropped,
        ));
        for (c, n) in &self.counts {
            if *n > 0 {
                out.push_str(&format!("    {:<16} {}\n", c.as_str(), n));
            }
        }
        for e in &self.events {
            out.push_str(&format!(
                "  [{}] {}{}{}: {}\n",
                e.cause.as_str(),
                e.routine,
                if e.var.is_empty() {
                    String::new()
                } else {
                    format!("/{}", e.var)
                },
                if e.line == 0 {
                    String::new()
                } else {
                    format!(" (line {})", e.line)
                },
                e.detail,
            ));
        }
        out
    }
}

/// `num / den` to three fixed decimals, round-half-up, in integers.
/// `den == 0` is the vacuous full-precision case.
fn ratio_3(num: u64, den: u64) -> String {
    if den == 0 {
        return "1.000".to_string();
    }
    let scaled = (num * 1000 + den / 2) / den;
    format!("{}.{:03}", scaled / 1000, scaled % 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_fixed_point() {
        assert_eq!(ratio_3(0, 0), "1.000");
        assert_eq!(ratio_3(1, 1), "1.000");
        assert_eq!(ratio_3(1, 3), "0.333");
        assert_eq!(ratio_3(2, 3), "0.667");
        assert_eq!(ratio_3(11, 12), "0.917");
    }
}
