//! The `panorama` command-line analyzer.
//!
//! ```text
//! panorama [OPTIONS] FILE.f
//!
//! OPTIONS:
//!   --no-symbolic         disable T1 (symbolic analysis)
//!   --no-if-conditions    disable T2 (IF-condition guards)
//!   --no-interprocedural  disable T3 (call summarization)
//!   --no-value-range      disable the scalar value-range pass (range
//!                         refutation, range_compare provenance and the
//!                         P007–P009 lints)
//!   --content             enable the array-content pass (UE_i
//!                         refutation, FIRSTPRIVATE→PRIVATE demotion,
//!                         content_refute/content_full_def provenance
//!                         and the P010–P012 lints)
//!   --no-content          disable it (the default); output is
//!                         byte-identical to builds without the pass
//!   --forall              enable the ∀-extension (Fig. 1(a) inference)
//!   --trace               print the backward propagation trace
//!   --dump-hsg            print the hierarchical supergraph
//!   --summaries           print per-routine MOD/UE/DE summaries
//!   --stats               print timing and size statistics
//!   --explain             run the dynamic race oracle, attach witness
//!                         diagnostics to negative verdicts, and print
//!                         the provenance decision trace of every
//!                         verdict (positive and negative)
//!   --lint                print panolint diagnostics (stable P00x
//!                         codes for every conservative assumption)
//!   --deny-lints[=CODES]  exit with code 3 when any lint fires; with
//!                         =CODES (comma-separated codes or slugs, e.g.
//!                         P007,loop-never-executes) only those codes
//!                         deny
//!
//! EXIT CODES:
//!   0  analysis succeeded (and no denied lint fired)
//!   1  I/O, parse, semantic or soundness failure
//!   2  usage error
//!   3  --deny-lints matched at least one lint
//!   --emit-openmp         print the OpenMP-annotated source (panogen,
//!                         DESIGN.md §4h) on stdout; per-loop skip
//!                         diagnostics go to stderr. The annotated text
//!                         reparses to the original program.
//!   --transform-out FILE  write the transform report (loops, clauses,
//!                         skip diagnostics, provenance, annotated
//!                         source) as JSON to FILE
//!   --json                emit the report as JSON (schema in DESIGN.md)
//!   --fuel N              cap analysis at N propagation steps; on
//!                         exhaustion verdicts widen conservatively and
//!                         the report is marked degraded
//!   --deadline-ms N       wall-clock budget for the analysis phase
//!   --cache-dir DIR       read and write routine summaries in a
//!                         crash-safe persistent cache at DIR (shared
//!                         with other panorama/panoramad processes); a
//!                         warm run replays summaries byte-identically,
//!                         and any cache fault degrades to an uncached
//!                         run, never to a failure
//!   --cache-budget-bytes N
//!                         evict oldest cache segments beyond N total
//!                         bytes (default 256 MiB)
//!   --trace-out FILE      write a Chrome trace-event JSON profile of
//!                         the run (open in Perfetto / chrome://tracing)
//!   --precision-report    account every precision loss (panoledger,
//!                         DESIGN.md §4j): print the per-cause event
//!                         counts, the serial-verdict attribution split
//!                         and the headline precision ratio; with
//!                         --json the same data lands under the
//!                         additive "precision" key. Bypasses the
//!                         summary cache, like --trace-out
//!   --range-budget N      cap the value-range pass at N steps per
//!                         routine (exhaustion degrades range facts)
//!   --content-budget N    cap the array-content pass at N steps per
//!                         loop (exhaustion discards content facts)
//! ```

use panorama::{
    driver, DiskCache, FuelLimits, Lint, LintCode, MemoryCache, Options, Outcome, SummaryCache,
    TieredCache,
};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: panorama [--no-symbolic] [--no-if-conditions] [--no-interprocedural]\n\
         \x20                [--no-value-range] [--content] [--no-content] [--forall]\n\
         \x20                [--trace] [--dump-hsg]\n\
         \x20                [--summaries] [--stats] [--explain] [--lint]\n\
         \x20                [--deny-lints[=CODES]] [--json] [--fuel N] [--deadline-ms N]\n\
         \x20                [--cache-dir DIR] [--cache-budget-bytes N] [--trace-out FILE]\n\
         \x20                [--precision-report] [--range-budget N] [--content-budget N]\n\
         \x20                [--emit-openmp] [--transform-out FILE] FILE.f"
    );
    std::process::exit(2);
}

/// The lints `--deny-lints` turns into exit code 3: all of them for a
/// bare flag, otherwise only the listed codes.
fn denied<'a>(lints: &'a [Lint], deny: &Option<Vec<LintCode>>) -> Vec<&'a Lint> {
    match deny {
        None => Vec::new(),
        Some(codes) => lints
            .iter()
            .filter(|l| codes.is_empty() || codes.contains(&l.code))
            .collect(),
    }
}

/// Reports denied lints on stderr; `Some(3)` when any fired.
fn deny_exit(lints: &[Lint], deny: &Option<Vec<LintCode>>) -> Option<ExitCode> {
    let hits = denied(lints, deny);
    if hits.is_empty() {
        return None;
    }
    for l in &hits {
        eprintln!("panorama: denied lint {l}");
    }
    eprintln!("panorama: {} denied lint(s)", hits.len());
    Some(ExitCode::from(3))
}

fn main() -> ExitCode {
    let mut opts = Options::default();
    let mut limits = FuelLimits::unlimited();
    let mut trace = false;
    let mut dump_hsg = false;
    let mut summaries = false;
    let mut stats = false;
    let mut explain = false;
    let mut lint = false;
    let mut deny_lints: Option<Vec<LintCode>> = None;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut emit_openmp = false;
    let mut transform_out: Option<String> = None;
    let mut precision = false;
    let mut cache_dir: Option<String> = None;
    let mut cache_budget: Option<u64> = None;
    let mut file = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let num = |i: &mut usize| -> u64 {
            *i += 1;
            args.get(*i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("{arg} requires a number");
                    usage();
                })
        };
        match arg.as_str() {
            "--no-symbolic" => opts.symbolic = false,
            "--no-if-conditions" => opts.if_conditions = false,
            "--no-interprocedural" => opts.interprocedural = false,
            "--no-value-range" => opts.value_range = false,
            "--content" => opts.content = true,
            "--no-content" => opts.content = false,
            "--forall" => opts.forall_ext = true,
            "--trace" => {
                opts.trace = true;
                trace = true;
            }
            "--dump-hsg" => dump_hsg = true,
            "--summaries" => summaries = true,
            "--stats" => stats = true,
            "--explain" => explain = true,
            "--lint" => lint = true,
            "--deny-lints" => deny_lints = Some(Vec::new()),
            other if other.starts_with("--deny-lints=") => {
                let codes = other["--deny-lints=".len()..]
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        LintCode::parse(s).unwrap_or_else(|| {
                            eprintln!("unknown lint code {s}");
                            usage();
                        })
                    })
                    .collect::<Vec<_>>();
                if codes.is_empty() {
                    eprintln!("--deny-lints= requires at least one code");
                    usage();
                }
                deny_lints = Some(codes);
            }
            "--json" => json = true,
            "--fuel" => limits.steps = Some(num(&mut i)),
            "--trace-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => trace_out = Some(p.clone()),
                    None => {
                        eprintln!("--trace-out requires a file path");
                        usage();
                    }
                }
            }
            "--emit-openmp" => emit_openmp = true,
            "--transform-out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => transform_out = Some(p.clone()),
                    None => {
                        eprintln!("--transform-out requires a file path");
                        usage();
                    }
                }
            }
            "--deadline-ms" => limits.deadline_ms = Some(num(&mut i)),
            "--range-budget" => limits.range_budget = Some(num(&mut i)),
            "--content-budget" => limits.content_budget = Some(num(&mut i)),
            "--precision-report" => precision = true,
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(p) => cache_dir = Some(p.clone()),
                    None => {
                        eprintln!("--cache-dir requires a directory path");
                        usage();
                    }
                }
            }
            "--cache-budget-bytes" => cache_budget = Some(num(&mut i)),
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => {
                eprintln!("unknown option {other}");
                usage();
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    eprintln!("multiple input files");
                    usage();
                }
            }
        }
        i += 1;
    }
    let Some(path) = file else { usage() };
    let src = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("panorama: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let request = driver::Request {
        source: &src,
        opts,
        oracle: explain,
        limits,
        trace_spans: trace_out.is_some(),
        emit: emit_openmp || transform_out.is_some(),
        precision,
    };
    // `--cache-dir`: a persistent summary tier warmed by earlier
    // panorama/panoramad runs. `DiskCache::open` never fails — a
    // corrupt or unwritable directory yields a disabled tier and the
    // run proceeds uncached, byte-identical to no `--cache-dir`.
    let cache: Option<Arc<dyn SummaryCache>> = cache_dir.as_ref().map(|dir| {
        let disk = Arc::new(DiskCache::open(dir.as_str(), cache_budget));
        Arc::new(TieredCache::new(MemoryCache::new(), disk)) as Arc<dyn SummaryCache>
    });
    let scope = trace_out
        .as_ref()
        .map(|_| trace::CollectorScope::install(trace::Collector::new()));
    let result = driver::run_with_cache(&request, cache);
    let collector = scope.and_then(trace::CollectorScope::finish);
    let out = match result {
        Ok(out) => out,
        Err(e) => {
            eprintln!("panorama: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let (Some(path), Some(collector)) = (&trace_out, &collector) {
        let json = trace::chrome_trace(&[("panorama".to_string(), collector)]);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("panorama: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = &transform_out {
        let report = out.transform.as_ref().expect("emit was requested").json();
        match serde_json::to_string_pretty(&report) {
            Ok(s) => {
                if let Err(e) = std::fs::write(path, s + "\n") {
                    eprintln!("panorama: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("panorama: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if emit_openmp {
        let t = out.transform.as_ref().expect("emit was requested");
        for s in &t.skipped {
            eprintln!("panorama: {}", s.render());
        }
        if let Some(p) = &out.precision {
            eprint!("{}", p.render());
        }
        print!("{}", t.source);
        if out.soundness_violation() {
            eprintln!(
                "panorama: soundness violation — static verdict contradicted by dynamic race"
            );
            return ExitCode::FAILURE;
        }
        if let Some(code) = deny_exit(&out.analysis.lints, &deny_lints) {
            return code;
        }
        return ExitCode::SUCCESS;
    }
    if json {
        match serde_json::to_string_pretty(&out.json()) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("panorama: {e}");
                return ExitCode::FAILURE;
            }
        }
        if out.soundness_violation() {
            eprintln!(
                "panorama: soundness violation — static verdict contradicted by dynamic race"
            );
            return ExitCode::FAILURE;
        }
        if let Some(code) = deny_exit(&out.analysis.lints, &deny_lints) {
            return code;
        }
        return ExitCode::SUCCESS;
    }
    if let Some(p) = &out.precision {
        print!("{}", p.render());
        println!();
    }
    let (analysis, oracle) = (out.analysis, out.oracle);

    if let Some(reason) = analysis.degrade_reason {
        println!(
            "note: analysis degraded ({}) — affected verdicts widened to conservative answers\n",
            reason.as_str()
        );
    }
    if dump_hsg {
        println!("=== HSG ===");
        print!("{}", analysis.hsg);
        println!();
    }
    if trace {
        println!("=== backward propagation trace ===");
        for line in &analysis.trace {
            println!("  {line}");
        }
        println!();
    }
    if summaries {
        println!("=== routine summaries ===");
        for r in &analysis.routines {
            println!("routine {}:", r.name);
            for (arr, list) in &r.summary.mods {
                println!("  MOD[{arr}] = {list}");
            }
            for (arr, list) in &r.summary.ues {
                println!("  UE [{arr}] = {list}");
            }
            for (arr, list) in &r.summary.des {
                println!("  DE [{arr}] = {list}");
            }
        }
        println!();
    }

    if lint {
        println!("=== lints ===");
        if analysis.lints.is_empty() {
            println!("  (none)");
        }
        for l in &analysis.lints {
            println!("  {l}");
        }
        println!();
    }

    println!("=== loop verdicts ===");
    for v in &analysis.verdicts {
        let status = if v.parallel_as_is {
            "PARALLEL".to_string()
        } else if v.parallel_after_privatization {
            let mut what = Vec::new();
            if !v.privatized.is_empty() {
                what.push(format!("privatize {:?}", v.privatized));
            }
            if !v.private_scalars.is_empty() {
                what.push(format!("private scalars {:?}", v.private_scalars));
            }
            if !v.reductions.is_empty() {
                what.push(format!("reductions {:?}", v.reductions));
            }
            format!("PARALLEL after: {}", what.join(", "))
        } else {
            format!("SERIAL: {:?}", v.blockers)
        };
        println!("{:<28} {status}", v.id);
        for a in &v.arrays {
            if a.flow_dep || a.output_dep || a.anti_dep || a.privatizable {
                println!(
                    "    {:<12} flow={} output={} anti={} privatizable={}{}",
                    a.array,
                    a.flow_dep,
                    a.output_dep,
                    a.anti_dep,
                    a.privatizable,
                    if a.needs_copy_out { " (copy-out)" } else { "" }
                );
            }
        }
        if explain {
            for e in &v.provenance {
                println!("    prov: {}", e.render());
            }
        }
        for d in &v.diagnostics {
            println!("    witness: {}", d.render());
        }
    }
    if let Some(report) = &oracle {
        println!("\n=== race oracle ===");
        for c in &report.loops {
            let outcome = match c.outcome {
                Outcome::Confirmed => "confirmed",
                Outcome::SoundnessViolation => "SOUNDNESS VIOLATION",
                Outcome::PrecisionGap => "precision gap",
                Outcome::NotExercised => "not exercised",
            };
            let dynamic = if c.dynamic_conflicts.is_empty() {
                "race-free".to_string()
            } else {
                c.dynamic_conflicts
                    .iter()
                    .map(|(arr, classes)| {
                        let cs: Vec<String> = classes.iter().map(|c| c.to_string()).collect();
                        format!("{arr}: {}", cs.join("+"))
                    })
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            println!(
                "{:<28} {outcome:<20} {} iterations, {dynamic}{}",
                c.id,
                c.iterations,
                if c.note.is_empty() {
                    String::new()
                } else {
                    format!(" — {}", c.note)
                }
            );
        }
        println!(
            "confirmed {} / violations {} / precision gaps {} / not exercised {}",
            report.confirmed,
            report.soundness_violations,
            report.precision_gaps,
            report.not_exercised
        );
        if !report.sound() {
            eprintln!(
                "panorama: soundness violation — static verdict contradicted by dynamic race"
            );
            return ExitCode::FAILURE;
        }
    }
    if !analysis.conventional_parallel.is_empty() {
        println!(
            "\n(conventional tests alone already proved parallel: {:?})",
            analysis.conventional_parallel
        );
    }
    if stats {
        println!("\n=== statistics ===");
        println!("total time     : {:?}", analysis.times.total());
        println!("  parse        : {:?}", analysis.times.parse);
        println!("  semantic     : {:?}", analysis.times.sema);
        println!("  hsg          : {:?}", analysis.times.hsg);
        println!("  conventional : {:?}", analysis.times.conventional);
        println!("  dataflow     : {:?}", analysis.times.dataflow);
        println!("hsg nodes      : {}", analysis.hsg.total_nodes());
        println!("loops analyzed : {}", analysis.stats.loops_analyzed);
        println!("memory proxy   : {} GAR units", analysis.memory_proxy());
    }
    if let Some(code) = deny_exit(&analysis.lints, &deny_lints) {
        return code;
    }
    ExitCode::SUCCESS
}
