//! Panorama — the end-to-end analyzer.
//!
//! This crate is the reconstruction of the paper's prototyping analyzer:
//! it drives the whole pipeline — parse → semantic analysis → HSG →
//! conventional dependence pre-filter → symbolic array dataflow analysis →
//! privatization/parallelization verdicts — behind one function,
//! [`analyze_source`].
//!
//! ```
//! use panorama::{analyze_source, Options};
//!
//! let src = "
//!       PROGRAM demo
//!       REAL w(10), a(100)
//!       INTEGER i, k
//!       DO i = 1, 100
//!         DO k = 1, 10
//!           w(k) = i * 1.0
//!         ENDDO
//!         a(i) = w(5)
//!       ENDDO
//!       END
//! ";
//! let analysis = analyze_source(src, Options::default()).unwrap();
//! let v = analysis.verdict("demo", "i").unwrap();
//! assert!(v.parallel_after_privatization);
//! assert_eq!(v.privatized, vec!["w".to_string()]);
//! ```
//!
//! The technique toggles of [`Options`] (`symbolic` = T1, `if_conditions`
//! = T2, `interprocedural` = T3) reproduce Table 1's ablation; the
//! `forall_ext` flag enables the §5.2/§5.3 future-work extension that
//! handles Fig. 1(a).

#![warn(missing_docs)]

pub mod driver;
pub mod precision;

pub use precision::PrecisionReport;

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use alias::{Lint, LintCode};
pub use dataflow::{
    AnalysisStats, CacheCounters, CacheKey, CachedRoutine, DegradeReason, DiskCache,
    DiskTierSnapshot, FuelLimits, LoopAnalysis, MemoryCache, Options, RoutineAnalysis, Summary,
    SummaryCache, TieredCache,
};
pub use fortran::{Program, ProgramSema};
pub use privatize::{ArrayVerdict, Blocker, Diagnostic, LoopVerdict, ProvEntry};
pub use raceoracle::{LoopComparison, OracleReport, Outcome};

/// Any front-to-back analysis failure.
#[derive(Debug)]
pub enum PanoramaError {
    /// Lexing/parsing failed.
    Parse(fortran::ParseError),
    /// Semantic analysis failed.
    Sema(fortran::SemaError),
    /// HSG construction failed.
    Hsg(hsg::HsgError),
}

impl fmt::Display for PanoramaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PanoramaError::Parse(e) => write!(f, "parse: {e}"),
            PanoramaError::Sema(e) => write!(f, "semantic: {e}"),
            PanoramaError::Hsg(e) => write!(f, "hsg: {e}"),
        }
    }
}

impl std::error::Error for PanoramaError {}

/// Timing and size statistics of one analysis run — the data behind the
/// paper's Fig. 4 practicality comparison.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Lexing + parsing.
    pub parse: Duration,
    /// Symbol tables + call graph.
    pub sema: Duration,
    /// HSG construction.
    pub hsg: Duration,
    /// Conventional dependence pre-filter.
    pub conventional: Duration,
    /// Array dataflow analysis + verdicts.
    pub dataflow: Duration,
}

impl PhaseTimes {
    /// Everything.
    pub fn total(&self) -> Duration {
        self.parse + self.sema + self.hsg + self.conventional + self.dataflow
    }

    /// The parser-only bar of Fig. 4.
    pub fn parser_only(&self) -> Duration {
        self.parse
    }
}

/// The complete result of analyzing one source file.
pub struct Analysis {
    /// Parsed program.
    pub program: Program,
    /// Semantic info.
    pub sema: ProgramSema,
    /// The hierarchical supergraph.
    pub hsg: hsg::Hsg,
    /// Per-routine summaries.
    pub routines: Vec<RoutineAnalysis>,
    /// Per-loop dependence sets.
    pub loops: Vec<LoopAnalysis>,
    /// Per-loop verdicts.
    pub verdicts: Vec<LoopVerdict>,
    /// Loops the conventional pre-filter already proved parallel.
    pub conventional_parallel: Vec<String>,
    /// Engine statistics.
    pub stats: AnalysisStats,
    /// Phase timings.
    pub times: PhaseTimes,
    /// Backward-propagation trace (with `Options::trace`).
    pub trace: Vec<String>,
    /// `panolint` diagnostics: every conservative assumption the
    /// analysis made, as stable machine-readable codes (DESIGN.md §4e).
    /// Computed by a standalone static pass — deterministic across job
    /// counts and cache state.
    pub lints: Vec<Lint>,
    /// Why the run degraded, when a resource budget (fuel, state cap or
    /// deadline) forced widening. `None` = full precision.
    pub degrade_reason: Option<DegradeReason>,
}

impl Analysis {
    /// The verdict of the outermost loop with this index variable in the
    /// routine.
    pub fn verdict(&self, routine: &str, var: &str) -> Option<&LoopVerdict> {
        self.verdicts
            .iter()
            .filter(|v| v.routine == routine && v.var == var)
            .min_by_key(|v| v.depth)
    }

    /// The loop analysis matching a verdict.
    pub fn loop_analysis(&self, routine: &str, var: &str) -> Option<&LoopAnalysis> {
        self.loops
            .iter()
            .filter(|l| l.routine == routine && l.var == var)
            .min_by_key(|l| l.depth)
    }

    /// A memory-footprint proxy: total GAR pieces retained across
    /// summaries plus peak transient state (Fig. 4's memory bars).
    pub fn memory_proxy(&self) -> usize {
        self.stats.total_summary_size + self.stats.peak_state_size
    }

    /// Whether any verdict was widened by a resource budget. Degraded
    /// results are sound over-approximations: verdicts can only have
    /// moved in the conservative direction (parallel → serial).
    pub fn degraded(&self) -> bool {
        self.degrade_reason.is_some()
    }

    /// Runs the dynamic race oracle (see the `raceoracle` crate) over
    /// every loop verdict: the program executes sequentially under
    /// shadow-memory tracing, observed loop-carried conflicts are
    /// compared against the static claims, and witness diagnostics are
    /// attached to the negative verdicts the oracle confirmed.
    pub fn run_oracle(&mut self) -> OracleReport {
        let report = raceoracle::validate(&self.program, &self.sema, &self.verdicts);
        raceoracle::attach_diagnostics(&mut self.verdicts, &report);
        report
    }
}

/// Builds the machine-readable analysis report (the CLI's `--json`
/// output). The schema is documented in DESIGN.md ("JSON report schema")
/// and versioned via `schema_version`; pass the oracle report to include
/// the dynamic validation under the `"oracle"` key.
pub fn json_report(analysis: &Analysis, oracle: Option<&OracleReport>) -> serde::Value {
    use serde::{Serialize, Value};
    let stats = &analysis.stats;
    Value::Object(vec![
        ("schema_version".to_string(), Value::UInt(1)),
        ("verdicts".to_string(), analysis.verdicts.to_json_value()),
        (
            "conventional_parallel".to_string(),
            analysis.conventional_parallel.to_json_value(),
        ),
        ("degraded".to_string(), analysis.degraded().to_json_value()),
        (
            "degrade_reason".to_string(),
            analysis
                .degrade_reason
                .map_or(Value::Null, |r| Value::Str(r.as_str().to_string())),
        ),
        (
            "stats".to_string(),
            Value::Object(vec![
                (
                    "nodes_processed".to_string(),
                    stats.nodes_processed.to_json_value(),
                ),
                (
                    "loops_analyzed".to_string(),
                    stats.loops_analyzed.to_json_value(),
                ),
                (
                    "routines_analyzed".to_string(),
                    stats.routines_analyzed.to_json_value(),
                ),
                (
                    "peak_state_size".to_string(),
                    stats.peak_state_size.to_json_value(),
                ),
                (
                    "total_summary_size".to_string(),
                    stats.total_summary_size.to_json_value(),
                ),
            ]),
        ),
        (
            "lints".to_string(),
            Value::Array(
                analysis
                    .lints
                    .iter()
                    .map(|l| {
                        Value::Object(vec![
                            ("code".to_string(), Value::Str(l.code.code().to_string())),
                            ("slug".to_string(), Value::Str(l.code.slug().to_string())),
                            ("routine".to_string(), Value::Str(l.routine.clone())),
                            ("line".to_string(), Value::UInt(u64::from(l.line))),
                            ("message".to_string(), Value::Str(l.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "oracle".to_string(),
            oracle.map_or(Value::Null, |r| r.to_json_value()),
        ),
    ])
}

/// Runs the full pipeline on a source string.
pub fn analyze_source(src: &str, opts: Options) -> Result<Analysis, PanoramaError> {
    analyze_source_with_cache(src, opts, None)
}

/// [`analyze_source`] with an optional cross-run summary cache: routine
/// summaries whose content key (routine text + options + transitive
/// callees, see `dataflow::cache`) hits the cache are replayed instead of
/// recomputed. Reports are byte-identical either way.
pub fn analyze_source_with_cache(
    src: &str,
    opts: Options,
    cache: Option<Arc<dyn SummaryCache>>,
) -> Result<Analysis, PanoramaError> {
    analyze_source_limited(src, opts, cache, FuelLimits::unlimited())
}

/// [`analyze_source_with_cache`] under resource budgets: when a budget
/// runs out mid-analysis the affected summaries are *widened* to sound
/// over-approximations instead of diverging, and the result is marked
/// [`Analysis::degraded`]. Result-constraining limits bypass the summary
/// cache (see `dataflow::Analyzer::with_limits`); degraded results are
/// never cached.
pub fn analyze_source_limited(
    src: &str,
    opts: Options,
    cache: Option<Arc<dyn SummaryCache>>,
    limits: FuelLimits,
) -> Result<Analysis, PanoramaError> {
    let t0 = Instant::now();
    let program = {
        let _span = trace::span("parse");
        fortran::parse_program(src).map_err(PanoramaError::Parse)?
    };
    let t_parse = t0.elapsed();

    let t1 = Instant::now();
    let sema = {
        let _span = trace::span("sema");
        fortran::analyze(&program).map_err(PanoramaError::Sema)?
    };
    let t_sema = t1.elapsed();

    let t2 = Instant::now();
    let graph = {
        let _span = trace::span("hsg");
        hsg::build_hsg(&program).map_err(PanoramaError::Hsg)?
    };
    let t_hsg = t2.elapsed();

    // Conventional pre-filter, as Panorama applies it (§6): loops it
    // proves parallel don't strictly need the dataflow analysis.
    let t3 = Instant::now();
    let mut conventional_parallel = Vec::new();
    {
        let _span = trace::span("conventional");
        for r in &program.routines {
            let table = &sema.tables[&r.name];
            visit_loops(&r.body, &mut |stmt| {
                if deptest::conventional_loop_test(stmt, table) == deptest::ConvVerdict::Parallel {
                    if let fortran::StmtKind::Do { var, .. } = &stmt.kind {
                        conventional_parallel.push(format!("{}/{}", r.name, var));
                    }
                }
            });
        }
    }
    let t_conv = t3.elapsed();

    let t4 = Instant::now();
    let mut az = dataflow::Analyzer::with_limits(&program, &sema, &graph, opts, cache, limits);
    let routines = {
        let _span = trace::span("dataflow");
        az.run()
    };
    let verdicts = {
        let _span = trace::span("privatize");
        privatize::judge_all(&az.loops)
    };
    let t_df = t4.elapsed();

    let degrade_reason = az.degradation();
    let (loops, stats, trace) = az.finish();
    let lints = {
        let _span = trace::span("lint");
        alias::lint_program(
            &program,
            &sema,
            opts.interprocedural,
            opts.value_range,
            opts.content,
        )
    };
    Ok(Analysis {
        program,
        sema,
        hsg: graph,
        routines,
        loops,
        verdicts,
        conventional_parallel,
        stats,
        times: PhaseTimes {
            parse: t_parse,
            sema: t_sema,
            hsg: t_hsg,
            conventional: t_conv,
            dataflow: t_df,
        },
        trace,
        lints,
        degrade_reason,
    })
}

/// Parses only — the Fig. 4 "parser" baseline.
pub fn parse_only(src: &str) -> Result<Duration, PanoramaError> {
    let t0 = Instant::now();
    let _ = fortran::parse_program(src).map_err(PanoramaError::Parse)?;
    Ok(t0.elapsed())
}

/// The Fig. 4 "conventional compiler" proxy: parse + semantic analysis +
/// HSG + conventional dependence testing + a full code walk (standing in
/// for classic optimization passes). Returns the elapsed time.
pub fn conventional_compile_proxy(src: &str) -> Result<Duration, PanoramaError> {
    let t0 = Instant::now();
    let program = fortran::parse_program(src).map_err(PanoramaError::Parse)?;
    let sema = fortran::analyze(&program).map_err(PanoramaError::Sema)?;
    let _ = hsg::build_hsg(&program).map_err(PanoramaError::Hsg)?;
    let mut sink = 0usize;
    for r in &program.routines {
        let table = &sema.tables[&r.name];
        visit_loops(&r.body, &mut |stmt| {
            let _ = deptest::conventional_loop_test(stmt, table);
        });
        // A flat code walk approximating codegen-ish passes.
        count_nodes(&r.body, &mut sink);
        count_nodes(&r.body, &mut sink);
    }
    std::hint::black_box(sink);
    Ok(t0.elapsed())
}

fn visit_loops<'a>(body: &'a [fortran::Stmt], f: &mut impl FnMut(&'a fortran::Stmt)) {
    for s in body {
        match &s.kind {
            fortran::StmtKind::Do { body: inner, .. } => {
                f(s);
                visit_loops(inner, f);
            }
            fortran::StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                visit_loops(then_body, f);
                visit_loops(else_body, f);
            }
            fortran::StmtKind::LogicalIf(_, inner) => visit_loops(std::slice::from_ref(inner), f),
            _ => {}
        }
    }
}

fn count_nodes(body: &[fortran::Stmt], sink: &mut usize) {
    for s in body {
        *sink += 1;
        match &s.kind {
            fortran::StmtKind::Do { body, .. } => count_nodes(body, sink),
            fortran::StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                count_nodes(then_body, sink);
                count_nodes(else_body, sink);
            }
            fortran::StmtKind::LogicalIf(_, inner) => {
                count_nodes(std::slice::from_ref(inner), sink)
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_smoke() {
        let a = analyze_source(
            "
      PROGRAM t
      REAL a(10)
      INTEGER i
      DO i = 1, 10
        a(i) = 1.0
      ENDDO
      END
",
            Options::default(),
        )
        .unwrap();
        assert_eq!(a.verdicts.len(), 1);
        assert!(a.verdict("t", "i").unwrap().parallel_as_is);
        assert!(a.conventional_parallel.contains(&"t/i".to_string()));
        assert!(a.times.total() > Duration::ZERO);
        assert!(a.memory_proxy() > 0);
    }

    #[test]
    fn errors_propagate() {
        assert!(matches!(
            analyze_source("garbage $$$", Options::default()),
            Err(PanoramaError::Parse(_))
        ));
        assert!(matches!(
            analyze_source(
                "      PROGRAM t\n      call nope()\n      END\n",
                Options::default()
            ),
            Err(PanoramaError::Sema(_))
        ));
    }

    #[test]
    fn trace_mode_produces_lines() {
        let a = analyze_source(
            "
      PROGRAM t
      REAL a(10)
      INTEGER i
      DO i = 1, 10
        a(i) = a(i) + 1.0
      ENDDO
      END
",
            Options {
                trace: true,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(!a.trace.is_empty());
    }
}
