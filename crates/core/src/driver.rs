//! The shared parse→analyze→report driver.
//!
//! Every front end — the `panorama` CLI, the `panoramad` service and the
//! table/figure regeneration binaries — funnels through this module
//! instead of re-implementing the "analyze a source string, optionally
//! run the race oracle, build the JSON report, look up a verdict"
//! sequence. One request in, one [`Outcome`] out.

use crate::{
    analyze_source_limited, json_report, Analysis, FuelLimits, Options, OracleReport,
    PanoramaError, PrecisionReport, SummaryCache,
};
use std::sync::Arc;
use trace::ledger;

/// One unit of analysis work.
#[derive(Clone, Debug)]
pub struct Request<'a> {
    /// Fortran source text.
    pub source: &'a str,
    /// Technique toggles.
    pub opts: Options,
    /// Also run the dynamic race oracle and attach witness diagnostics.
    pub oracle: bool,
    /// Resource budgets (fuel/state caps/deadline); unlimited by default.
    pub limits: FuelLimits,
    /// This request's span tree will be reported (the caller installs a
    /// `trace::Collector` around [`run`]). Trace-reported requests
    /// bypass the summary cache: cache replay changes which `sum_*`
    /// spans exist, and the determinism contract extends to span trees
    /// (`crates/server/tests/determinism.rs`).
    pub trace_spans: bool,
    /// Also run the panogen emission backend (DESIGN.md §4h): select
    /// OpenMP clauses, lower the executable parallel plan and print the
    /// annotated source. The result lands in [`Outcome::transform`] and
    /// under the additive `"transform"` JSON key.
    pub emit: bool,
    /// Account precision losses: run the pipeline under a
    /// `trace::ledger` and attach the aggregated [`PrecisionReport`]
    /// ([`Outcome::precision`], additive `"precision"` JSON key).
    /// Precision-accounted requests bypass the summary cache for the
    /// same reason traced ones do: cache replay changes which
    /// degradation sites execute, and the report is part of the
    /// byte-identical determinism contract.
    pub precision: bool,
}

impl<'a> Request<'a> {
    /// A request with default options, no oracle, no budgets, no emission.
    pub fn new(source: &'a str) -> Self {
        Request {
            source,
            opts: Options::default(),
            oracle: false,
            limits: FuelLimits::unlimited(),
            trace_spans: false,
            emit: false,
            precision: false,
        }
    }
}

/// The result of driving one [`Request`].
pub struct Outcome {
    /// The full analysis.
    pub analysis: Analysis,
    /// The oracle report, when the request asked for it.
    pub oracle: Option<OracleReport>,
    /// The emission backend's result, when the request asked for it.
    pub transform: Option<codegen::Transform>,
    /// The precision-loss accounting, when the request asked for it.
    pub precision: Option<PrecisionReport>,
}

impl Outcome {
    /// The machine-readable report (DESIGN.md §4d), oracle included when
    /// it ran, transform included (additive `"transform"` key) when the
    /// emission backend ran.
    pub fn json(&self) -> serde::Value {
        let mut report = json_report(&self.analysis, self.oracle.as_ref());
        if let serde::Value::Object(fields) = &mut report {
            if let Some(t) = &self.transform {
                fields.push(("transform".to_string(), t.json()));
            }
            if let Some(p) = &self.precision {
                fields.push(("precision".to_string(), p.json()));
            }
        }
        report
    }

    /// Whether the oracle ran and contradicted a static verdict — the
    /// condition every front end treats as a hard failure.
    pub fn soundness_violation(&self) -> bool {
        self.oracle.as_ref().is_some_and(|r| !r.sound())
    }
}

/// Drives one request through the full pipeline.
pub fn run(req: &Request<'_>) -> Result<Outcome, PanoramaError> {
    run_with_cache(req, None)
}

/// [`run`] consulting (and feeding) a cross-run summary cache.
pub fn run_with_cache(
    req: &Request<'_>,
    cache: Option<Arc<dyn SummaryCache>>,
) -> Result<Outcome, PanoramaError> {
    let cache = if req.trace_spans || req.precision {
        None
    } else {
        cache
    };
    // Install a ledger only when nobody outside owns one (a daemon
    // worker keeps an always-on scope for its metrics); either way the
    // mark/dropped cursors bound this request's slice of events.
    let owned_scope = (req.precision && !ledger::enabled()).then(ledger::LedgerScope::install);
    let mark = ledger::mark();
    let dropped_before = ledger::dropped_count();

    let mut analysis = analyze_source_limited(req.source, req.opts, cache, req.limits)?;
    let oracle = req.oracle.then(|| analysis.run_oracle());
    let transform = req.emit.then(|| {
        codegen::transform(
            &analysis.program,
            &analysis.sema,
            &analysis.loops,
            &analysis.verdicts,
        )
    });
    let precision = req.precision.then(|| {
        let events = ledger::events_since(mark);
        let dropped = ledger::dropped_count().saturating_sub(dropped_before);
        PrecisionReport::build(&analysis, events, dropped)
    });
    drop(owned_scope);
    Ok(Outcome {
        analysis,
        oracle,
        transform,
        precision,
    })
}

/// Is `array` privatizable in the outermost `routine`/`var` loop?
/// `false` when the loop (or the array's verdict entry) is absent — the
/// lookup the figure/table generators repeat for every cell.
pub fn array_privatizable(analysis: &Analysis, routine: &str, var: &str, array: &str) -> bool {
    analysis.verdict(routine, var).is_some_and(|v| {
        v.arrays
            .iter()
            .find(|a| a.array == array)
            .is_some_and(|a| a.privatizable)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
      PROGRAM t
      REAL w(10), a(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = i * 1.0
        ENDDO
        a(i) = w(5)
      ENDDO
      END
";

    #[test]
    fn run_and_lookup() {
        let out = run(&Request::new(SRC)).unwrap();
        assert!(out.oracle.is_none());
        assert!(!out.soundness_violation());
        assert!(array_privatizable(&out.analysis, "t", "i", "w"));
        assert!(!array_privatizable(&out.analysis, "t", "i", "nosuch"));
        assert!(!array_privatizable(&out.analysis, "nosuch", "i", "w"));
    }

    #[test]
    fn precision_report_attaches_and_scope_unwinds() {
        let req = Request {
            precision: true,
            ..Request::new(SRC)
        };
        let out = run(&req).unwrap();
        let p = out.precision.as_ref().unwrap();
        assert_eq!(p.loops_total, 2);
        assert_eq!(p.loops_serial_degraded, 0);
        assert_eq!(p.ratio(), "1.000");
        // The driver-owned scope must not leak past the request.
        assert!(!ledger::enabled());
        let json = out.json();
        let prec = json.get("precision").expect("precision key");
        assert!(prec.get("precision_ratio").is_some());
        assert!(prec.get("causes").unwrap().get("fuel_widen").is_some());
    }

    #[test]
    fn starved_run_accounts_for_degradation() {
        let req = Request {
            precision: true,
            limits: FuelLimits {
                steps: Some(1),
                ..FuelLimits::default()
            },
            ..Request::new(SRC)
        };
        let out = run(&req).unwrap();
        assert!(out.analysis.degraded());
        let p = out.precision.unwrap();
        assert!(p.degrading_events() > 0, "starved run must record events");
        assert!(p.loops_serial_degraded > 0);
        assert_ne!(p.ratio(), "1.000");
    }

    #[test]
    fn oracle_runs_on_request() {
        let req = Request {
            oracle: true,
            ..Request::new(SRC)
        };
        let out = run(&req).unwrap();
        let report = out.oracle.as_ref().unwrap();
        assert!(report.sound());
        assert!(!out.json().get("oracle").unwrap().is_null());
    }
}
