//! Property tests: every predicate operation must be *sound* — the result's
//! truth value under any concrete environment must match the logical
//! operation on the operands, with `None` (unknown) always permitted.

use crate::{Atom, EvalCtx, Pred};
use proptest::prelude::*;
use sym::{Env, Expr};

const VARS: [&str; 4] = ["i", "j", "n", "m"];

fn arb_affine() -> impl Strategy<Value = Expr> {
    // c0 + c1 * v1 (+ c2 * v2): realistic guard expressions.
    (
        -8i64..8,
        0usize..VARS.len(),
        -3i64..4,
        0usize..VARS.len(),
        -2i64..3,
    )
        .prop_map(|(c0, v1, c1, v2, c2)| {
            Expr::from(c0) + Expr::var(VARS[v1]) * c1 + Expr::var(VARS[v2]) * c2
        })
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_affine(), arb_affine(), 0u8..4).prop_map(|(a, b, k)| match k {
        0 => Atom::lt(a, b),
        1 => Atom::le(a, b),
        2 => Atom::eq(a, b),
        _ => Atom::ne(a, b),
    })
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let atom_pred = arb_atom().prop_map(Pred::atom);
    atom_pred.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.and(&q)),
            (inner.clone(), inner.clone()).prop_map(|(p, q)| p.or(&q)),
            inner.prop_map(|p| p.not()),
        ]
    })
}

fn arb_env() -> impl Strategy<Value = Env> {
    proptest::collection::vec(-10i64..10, VARS.len())
        .prop_map(|vals| Env::from_pairs(VARS.iter().copied().zip(vals)))
}

fn ev(p: &Pred, env: &Env) -> Option<bool> {
    EvalCtx::scalars(env).eval_pred(p)
}

proptest! {
    /// `and` is sound: if both operands evaluate, the result evaluates
    /// consistently (or is unknown).
    #[test]
    fn and_sound(p in arb_pred(), q in arb_pred(), env in arb_env()) {
        if let (Some(vp), Some(vq)) = (ev(&p, &env), ev(&q, &env)) {
            if let Some(vr) = ev(&p.and(&q), &env) {
                prop_assert_eq!(vr, vp && vq);
            } else {
                // unknown results may only occur when the truth is `true`
                // being weakened — but False must stay detectable:
                prop_assert!(vp && vq, "and() lost a definite false");
            }
        }
    }

    #[test]
    fn or_sound(p in arb_pred(), q in arb_pred(), env in arb_env()) {
        if let (Some(vp), Some(vq)) = (ev(&p, &env), ev(&q, &env)) {
            if let Some(vr) = ev(&p.or(&q), &env) {
                prop_assert_eq!(vr, vp || vq);
            } else {
                prop_assert!(vp || vq, "or() lost a definite false");
            }
        }
    }

    #[test]
    fn not_sound(p in arb_pred(), env in arb_env()) {
        if let Some(vp) = ev(&p, &env) {
            if let Some(vn) = ev(&p.not(), &env) {
                prop_assert_eq!(vn, !vp);
            }
        }
    }

    /// Exclusion: p ∧ ¬p must always be provably or evaluably false.
    #[test]
    fn excluded_middle_and(p in arb_pred(), env in arb_env()) {
        let contradiction = p.and(&p.not());
        if let Some(v) = ev(&contradiction, &env) {
            prop_assert!(!v);
        }
    }

    /// `is_false` is sound: a provably-false predicate never evaluates true.
    #[test]
    fn false_verdict_sound(p in arb_pred(), q in arb_pred(), env in arb_env()) {
        let r = p.and(&q);
        if r.is_false() {
            if let (Some(vp), Some(vq)) = (ev(&p, &env), ev(&q, &env)) {
                prop_assert!(!(vp && vq), "simplifier claimed False but {} and {} both hold under {:?}", p, q, env);
            }
        }
    }

    /// `implies` is sound: a proven implication holds in every environment.
    #[test]
    fn implies_sound(p in arb_pred(), q in arb_pred(), env in arb_env()) {
        if p.implies(&q) {
            if let (Some(vp), Some(vq)) = (ev(&p, &env), ev(&q, &env)) {
                prop_assert!(!vp || vq, "claimed {} => {} but falsified under {:?}", p, q, env);
            }
        }
    }

    /// Substitution commutes with evaluation for exact predicates.
    #[test]
    fn subst_sound(p in arb_pred(), c in -10i64..10, env in arb_env()) {
        let sub = p.subst_var("i", &Expr::from(c));
        let mut env2 = env.clone();
        env2.set("i", c);
        if let (Some(v1), Some(v2)) = (ev(&p, &env2), ev(&sub, &env2)) {
            prop_assert_eq!(v1, v2);
        }
    }

    /// Exactness bookkeeping: and/or of exact predicates that stay within
    /// caps remain exact or become False.
    #[test]
    fn exactness_preserved_by_and(p in arb_pred(), q in arb_pred()) {
        if p.is_exact() && q.is_exact() {
            prop_assert!(p.and(&q).is_exact());
        }
    }
}
