//! Predicates (guards) for guarded array regions.
//!
//! This crate implements the "predicate operation library" and "predicate
//! simplifier" of Gu, Li & Lee (SC'95, §5.2). A predicate is kept in an
//! **ordered conjunctive normal form**: a conjunction of [`Disj`]unctions,
//! each a disjunction of [`Atom`]s. Atoms are relational expressions
//! normalized against zero —
//!
//! * `e < 0`, `e = 0`, `e ≠ 0` over symbolic integer expressions ([`sym::Expr`]),
//! * logical variables `v = .TRUE. / .FALSE.`,
//! * (extension, §5.2/§5.3) *guarded array conditions* `C⟨t⟩(e)` — "the
//!   conditional template `t` holds at index `e`" — and universally
//!   quantified facts `∀ k ∈ [lo,hi] : ¬C⟨t⟩(k)`, which are what the MDG
//!   `interf` loop of Fig. 1(a) needs.
//!
//! The unknown guard Δ of the paper is tracked as a flag on the predicate:
//! a [`Pred`] is either `False` or "known CNF part ∧ (optionally) Δ". The
//! known part is always a *necessary* condition of the actual guard, so
//! proving the known part false proves the guard false — exactly the
//! property the emptiness tests of the dataflow analysis rely on.
//!
//! The simplifier is pairwise, like the paper's: it evaluates conjunctions
//! and disjunctions of two atoms/disjunctions at a time, removing redundant
//! components and detecting contradictions early.

#![warn(missing_docs)]

mod atom;
mod bounds;
mod disj;
mod eval;
mod predicate;
mod simplify;

pub use atom::{Atom, CondTemplate, RelOp};
pub use bounds::{bounds_on, VarBounds};
pub use disj::Disj;
pub use eval::{CondOracle, EvalCtx};
pub use predicate::Pred;
pub use simplify::{atom_implies, disj_implies};

#[cfg(test)]
mod proptests;
