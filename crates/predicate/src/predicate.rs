//! The predicate type: ordered CNF with an unknown (Δ) flag.

use crate::atom::Atom;
use crate::disj::Disj;
use crate::simplify::disj_implies;
use serde::{Deserialize, Serialize};
use std::fmt;
use sym::Expr;

/// Maximum number of clause pairs produced when distributing an OR (or a
/// NOT) before the simplifier gives up and falls back to an inexact result.
/// The paper's guards stay tiny in practice (§3.1), so a small cap is fine.
const DISTRIBUTE_CAP: usize = 64;

/// A guard predicate.
///
/// Either provably `False`, or a conjunction of [`Disj`] clauses optionally
/// conjoined with an *unknown* component Δ (the paper's "guard whose
/// predicate cannot be written explicitly").
///
/// **Invariant / semantics.** Writing `G` for the actual (runtime) guard and
/// `K` for the conjunction of `disjs`:
///
/// * `unknown == false` ⇒ `G ⇔ K` (the guard is *exact*);
/// * `unknown == true`  ⇒ `G ⇒ K` (K is a *necessary* condition — the guard
///   is an over-approximation).
///
/// Proving `K` false therefore always proves `G` false, which is what the
/// dataflow emptiness tests need.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Pred {
    /// Provably false.
    False,
    /// `disjs[0] ∧ disjs[1] ∧ …` (∧ Δ when `unknown`).
    Cnf {
        /// The known clauses, sorted and deduplicated.
        disjs: Vec<Disj>,
        /// Whether an inexpressible conjunct Δ is present.
        unknown: bool,
    },
}

impl Pred {
    /// The constant `True`.
    pub fn tru() -> Pred {
        Pred::Cnf {
            disjs: Vec::new(),
            unknown: false,
        }
    }

    /// The constant `False`.
    pub fn fals() -> Pred {
        Pred::False
    }

    /// The wholly unknown guard Δ.
    pub fn unknown() -> Pred {
        Pred::Cnf {
            disjs: Vec::new(),
            unknown: true,
        }
    }

    /// A single-atom predicate.
    pub fn atom(a: Atom) -> Pred {
        Pred::from_disjs([Disj::unit(a)], false)
    }

    /// Builds and simplifies a predicate from clauses.
    pub fn from_disjs(disjs: impl IntoIterator<Item = Disj>, unknown: bool) -> Pred {
        simplify_cnf(disjs.into_iter().collect(), unknown)
    }

    /// `a <= b` as a predicate.
    pub fn le(a: Expr, b: Expr) -> Pred {
        Pred::atom(Atom::le(a, b))
    }

    /// `a < b` as a predicate.
    pub fn lt(a: Expr, b: Expr) -> Pred {
        Pred::atom(Atom::lt(a, b))
    }

    /// `a = b` as a predicate.
    pub fn eq(a: Expr, b: Expr) -> Pred {
        Pred::atom(Atom::eq(a, b))
    }

    /// `a ≠ b` as a predicate.
    pub fn ne(a: Expr, b: Expr) -> Pred {
        Pred::atom(Atom::ne(a, b))
    }

    /// `true` iff provably the constant true.
    pub fn is_true(&self) -> bool {
        matches!(
            self,
            Pred::Cnf {
                disjs,
                unknown: false
            } if disjs.is_empty()
        )
    }

    /// `true` iff provably false.
    pub fn is_false(&self) -> bool {
        matches!(self, Pred::False)
    }

    /// `true` iff the predicate is exact (no Δ component).
    pub fn is_exact(&self) -> bool {
        match self {
            Pred::False => true,
            Pred::Cnf { unknown, .. } => !unknown,
        }
    }

    /// The known clauses (empty for `False`).
    pub fn disjs(&self) -> &[Disj] {
        match self {
            Pred::False => &[],
            Pred::Cnf { disjs, .. } => disjs,
        }
    }

    /// Conjunction.
    pub fn and(&self, other: &Pred) -> Pred {
        match (self, other) {
            (Pred::False, _) | (_, Pred::False) => Pred::False,
            (
                Pred::Cnf {
                    disjs: d1,
                    unknown: u1,
                },
                Pred::Cnf {
                    disjs: d2,
                    unknown: u2,
                },
            ) => simplify_cnf(d1.iter().chain(d2.iter()).cloned().collect(), *u1 || *u2),
        }
    }

    /// Conjunction with a single atom.
    pub fn and_atom(&self, a: Atom) -> Pred {
        self.and(&Pred::atom(a))
    }

    /// Disjunction. Exact when both operands are exact and the distribution
    /// stays within the internal clause cap; otherwise the result carries Δ.
    pub fn or(&self, other: &Pred) -> Pred {
        match (self, other) {
            (Pred::False, p) | (p, Pred::False) => p.clone(),
            (
                Pred::Cnf {
                    disjs: d1,
                    unknown: u1,
                },
                Pred::Cnf {
                    disjs: d2,
                    unknown: u2,
                },
            ) => {
                if self.is_true() || other.is_true() {
                    return Pred::tru();
                }
                if d1.len().saturating_mul(d2.len()) > DISTRIBUTE_CAP {
                    // Fall back to the clauses common to both sides: each is
                    // implied by either operand, hence by the disjunction.
                    let common: Vec<Disj> = d1.iter().filter(|c| d2.contains(c)).cloned().collect();
                    return simplify_cnf(common, true);
                }
                let mut out = Vec::with_capacity(d1.len() * d2.len());
                for a in d1 {
                    for b in d2 {
                        out.push(a.or(b));
                    }
                }
                simplify_cnf(out, *u1 || *u2)
            }
        }
    }

    /// Negation. Exact CNFs negate exactly (De Morgan + distribution, caps
    /// permitting); anything carrying Δ negates to Δ.
    pub fn not(&self) -> Pred {
        match self {
            Pred::False => Pred::tru(),
            Pred::Cnf { disjs, unknown } => {
                if *unknown {
                    return Pred::unknown();
                }
                if disjs.is_empty() {
                    return Pred::False;
                }
                // ¬(∧ Di) = ∨ (¬Di); each ¬Di is a conjunction of atom
                // complements.
                let mut result = Pred::False;
                for d in disjs {
                    let mut clause_neg = Pred::tru();
                    for a in d.atoms() {
                        if !a.has_complement() {
                            return Pred::unknown();
                        }
                        clause_neg = clause_neg.and_atom(a.complement());
                    }
                    result = result.or(&clause_neg);
                }
                result
            }
        }
    }

    /// Is `self ⇒ other` provable? Sound but incomplete. Requires `other`
    /// to be exact (a Δ on the right cannot be confirmed).
    ///
    /// Besides direct clause implication, unit `e < 0` clauses are chained
    /// pairwise (`e1 < 0 ∧ e2 < 0 ⇒ e1 + e2 + 1 < 0`), which discharges
    /// transitive facts like `a <= b ∧ b <= c ⇒ a <= c` while staying a
    /// two-operand technique in the spirit of the paper's §5.2 simplifier.
    pub fn implies(&self, other: &Pred) -> bool {
        if self.is_false() || other.is_true() {
            return true;
        }
        let (
            Pred::Cnf { disjs: d1, .. },
            Pred::Cnf {
                disjs: d2,
                unknown: u2,
            },
        ) = (self, other)
        else {
            return other.is_true();
        };
        if *u2 {
            return false;
        }
        let extended = with_derived_units(d1);
        d2.iter()
            .all(|e| extended.iter().any(|d| disj_implies(d, e)))
    }

    /// Does any clause mention the scalar `name`?
    pub fn contains_var(&self, name: &str) -> bool {
        self.disjs().iter().any(|d| d.contains_var(name))
    }

    /// Substitutes `name := value` in every clause. Clauses whose
    /// substitution overflows are dropped and Δ is set (sound weakening).
    pub fn subst_var(&self, name: &str, value: &Expr) -> Pred {
        match self {
            Pred::False => Pred::False,
            Pred::Cnf { disjs, unknown } => {
                let mut out = Vec::with_capacity(disjs.len());
                let mut unk = *unknown;
                for d in disjs {
                    match d.try_subst_var(name, value) {
                        Some(nd) => out.push(nd),
                        None => unk = true,
                    }
                }
                simplify_cnf(out, unk)
            }
        }
    }

    /// Weakens the predicate by dropping every clause that mentions `name`,
    /// setting Δ if any was dropped. Used when a scalar's defining value is
    /// unanalyzable.
    pub fn forget_var(&self, name: &str) -> Pred {
        match self {
            Pred::False => Pred::False,
            Pred::Cnf { disjs, unknown } => {
                let mut out = Vec::new();
                let mut unk = *unknown;
                for d in disjs {
                    if d.contains_var(name) {
                        unk = true;
                    } else {
                        out.push(d.clone());
                    }
                }
                simplify_cnf(out, unk)
            }
        }
    }

    /// Collects every scalar name mentioned by the predicate.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<sym::Name>) {
        for d in self.disjs() {
            d.collect_vars(out);
        }
    }

    /// Total number of atoms, a size measure for caps and stats.
    pub fn size(&self) -> usize {
        self.disjs().iter().map(|d| d.atoms().len()).sum()
    }
}

/// Extends a clause set with facts derived from pairs of unit `e < 0`
/// clauses: `e1 < 0 ∧ e2 < 0 ⇒ e1 + e2 + 1 < 0` (integers). Derived
/// clauses are appended after the originals.
fn with_derived_units(disjs: &[Disj]) -> Vec<Disj> {
    use crate::atom::{Atom, RelOp};
    let units: Vec<&sym::Expr> = disjs
        .iter()
        .filter_map(|d| match d.as_unit() {
            Some(Atom::Rel(e, RelOp::Lt)) => Some(e),
            _ => None,
        })
        .collect();
    let mut out = disjs.to_vec();
    for i in 0..units.len() {
        for j in (i + 1)..units.len() {
            if let Some(sum) = units[i].try_add(units[j]) {
                if let Some(s1) = sum.try_add(&sym::Expr::one()) {
                    out.push(Disj::unit(Atom::Rel(s1, RelOp::Lt)));
                }
            }
        }
    }
    out
}

/// Simplifies a clause list into a canonical [`Pred`].
fn simplify_cnf(disjs: Vec<Disj>, unknown: bool) -> Pred {
    let mut clauses: Vec<Disj> = Vec::with_capacity(disjs.len());
    for d in disjs {
        match d.simplified() {
            None => {} // tautology
            Some(s) if s.is_false_clause() => return Pred::False,
            Some(s) => clauses.push(s),
        }
    }
    clauses.sort();
    clauses.dedup();

    // Pairwise contradiction and redundancy elimination, to fixpoint
    // (bounded; clause counts are tiny in practice).
    for _round in 0..4 {
        let mut changed = false;
        // Contradictions between unit clauses, including the pairwise sum
        // rule: e1 < 0 ∧ e2 < 0 forces e1 + e2 <= -2 on the integers.
        for i in 0..clauses.len() {
            for j in (i + 1)..clauses.len() {
                if clauses[i].contradicts_unit(&clauses[j]) {
                    return Pred::False;
                }
                if let (
                    Some(crate::atom::Atom::Rel(e1, crate::atom::RelOp::Lt)),
                    Some(crate::atom::Atom::Rel(e2, crate::atom::RelOp::Lt)),
                ) = (clauses[i].as_unit(), clauses[j].as_unit())
                {
                    if let Some(c) = e1.try_add(e2).and_then(|s| s.as_const()) {
                        if c > -2 {
                            return Pred::False;
                        }
                    }
                }
            }
        }
        // Unit resolution: a unit clause refutes contradictory atoms inside
        // other clauses (the paper's "conjunction of two disjunctions"
        // evaluation). An emptied clause makes the predicate False.
        {
            let units: Vec<crate::atom::Atom> = clauses
                .iter()
                .filter_map(|d| d.as_unit().cloned())
                .collect();
            if !units.is_empty() {
                let mut resolved = false;
                let mut next = Vec::with_capacity(clauses.len());
                for d in &clauses {
                    if d.as_unit().is_some() {
                        next.push(d.clone());
                        continue;
                    }
                    let kept: Vec<crate::atom::Atom> = d
                        .atoms()
                        .iter()
                        .filter(|a| {
                            !units
                                .iter()
                                .any(|u| crate::simplify::atoms_contradict(u, a))
                        })
                        .cloned()
                        .collect();
                    if kept.len() != d.atoms().len() {
                        resolved = true;
                        if kept.is_empty() {
                            return Pred::False;
                        }
                        next.push(Disj::from_atoms(kept));
                    } else {
                        next.push(d.clone());
                    }
                }
                if resolved {
                    clauses = next;
                    clauses.sort();
                    clauses.dedup();
                }
            }
        }
        // Unit equality substitution: a unit clause `v ± rest = 0` rewrites
        // `v` inside the *other* clauses (the defining clause is kept), so
        // chains like `i = 5 ∧ n = 7 ∧ i > n` collapse to False.
        {
            use crate::atom::{Atom, RelOp};
            let mut defs: Vec<(usize, String, sym::Expr)> = Vec::new();
            for (k, d) in clauses.iter().enumerate() {
                if let Some(Atom::Rel(e, RelOp::Eq)) = d.as_unit() {
                    for name in e.vars() {
                        if let Some((c, rest)) = e.affine_decompose(name.as_str()) {
                            match c {
                                1 => {
                                    defs.push((k, name.as_str().to_string(), rest.negate()));
                                    break;
                                }
                                -1 => {
                                    defs.push((k, name.as_str().to_string(), rest));
                                    break;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                if defs.len() >= 4 {
                    break;
                }
            }
            let mut subst_changed = false;
            for (def_idx, var, val) in &defs {
                if val.contains_var(var) {
                    continue;
                }
                let mut next = Vec::with_capacity(clauses.len());
                for (k, d) in clauses.iter().enumerate() {
                    if k == *def_idx || !d.contains_var(var) {
                        next.push(d.clone());
                        continue;
                    }
                    match d.try_subst_var(var, val) {
                        Some(nd) => {
                            subst_changed = true;
                            match nd.simplified() {
                                None => {} // became a tautology
                                Some(s) if s.is_false_clause() => return Pred::False,
                                Some(s) => next.push(s),
                            }
                        }
                        None => next.push(d.clone()),
                    }
                }
                clauses = next;
            }
            if subst_changed {
                clauses.sort();
                clauses.dedup();
            }
        }
        // Drop clause j if some other clause i implies it.
        let mut keep = vec![true; clauses.len()];
        for i in 0..clauses.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..clauses.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if disj_implies(&clauses[i], &clauses[j]) {
                    // When both imply each other keep the smaller index.
                    if disj_implies(&clauses[j], &clauses[i]) && j < i {
                        continue;
                    }
                    keep[j] = false;
                    changed = true;
                }
            }
        }
        if changed {
            let mut next = Vec::with_capacity(clauses.len());
            for (k, c) in clauses.into_iter().enumerate() {
                if keep[k] {
                    next.push(c);
                }
            }
            clauses = next;
        } else {
            break;
        }
    }

    Pred::Cnf {
        disjs: clauses,
        unknown,
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::False => f.write_str("FALSE"),
            Pred::Cnf { disjs, unknown } => {
                if disjs.is_empty() {
                    return f.write_str(if *unknown { "DELTA" } else { "TRUE" });
                }
                for (k, d) in disjs.iter().enumerate() {
                    if k > 0 {
                        f.write_str(" & ")?;
                    }
                    write!(f, "{d}")?;
                }
                if *unknown {
                    f.write_str(" & DELTA")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn constants() {
        assert!(Pred::tru().is_true());
        assert!(Pred::fals().is_false());
        assert!(!Pred::unknown().is_true());
        assert!(!Pred::unknown().is_exact());
        assert!(Pred::tru().is_exact());
    }

    #[test]
    fn and_basic() {
        let p = Pred::le(e("1"), e("i"));
        let q = Pred::le(e("i"), e("n"));
        let r = p.and(&q);
        assert_eq!(r.disjs().len(), 2);
        assert!(p.and(&Pred::fals()).is_false());
        assert_eq!(p.and(&Pred::tru()), p);
    }

    #[test]
    fn and_detects_contradiction() {
        // i <= 3 ∧ i >= 5 → False
        let p = Pred::le(e("i"), e("3"));
        let q = Pred::atom(Atom::ge(e("i"), e("5")));
        assert!(p.and(&q).is_false());
        // kc = 0 ∧ kc ≠ 0 → False (the MDG pattern)
        let a = Pred::eq(e("kc"), e("0"));
        let b = Pred::ne(e("kc"), e("0"));
        assert!(a.and(&b).is_false());
    }

    #[test]
    fn and_removes_redundancy() {
        // (i < 3) ∧ (i < 5)  →  (i < 3)
        let p = Pred::lt(e("i"), e("3"));
        let q = Pred::lt(e("i"), e("5"));
        let r = p.and(&q);
        assert_eq!(r, p);
    }

    #[test]
    fn or_distributes_exactly() {
        let p = Pred::eq(e("i"), e("1"));
        let q = Pred::eq(e("i"), e("2"));
        let r = p.or(&q);
        assert!(r.is_exact());
        assert_eq!(r.disjs().len(), 1);
        assert_eq!(r.disjs()[0].atoms().len(), 2);
        assert!(p.or(&Pred::tru()).is_true());
        assert_eq!(p.or(&Pred::fals()), p);
    }

    #[test]
    fn or_complement_is_true() {
        let p = Pred::lt(e("i"), e("n"));
        assert!(p.or(&p.not()).is_true());
    }

    #[test]
    fn not_exact_roundtrip() {
        let p = Pred::le(e("i"), e("n"));
        let n = p.not();
        assert!(n.is_exact());
        assert_eq!(n.not(), p);
        assert!(p.and(&n).is_false());
    }

    #[test]
    fn not_of_conjunction() {
        // ¬(a ∧ b) = ¬a ∨ ¬b
        let p = Pred::le(e("1"), e("i")).and(&Pred::le(e("i"), e("n")));
        let n = p.not();
        assert!(n.is_exact());
        // (i < 1) ∨ (i > n): one clause with two atoms
        assert_eq!(n.disjs().len(), 1);
        assert_eq!(n.disjs()[0].atoms().len(), 2);
    }

    #[test]
    fn not_unknown_is_unknown() {
        assert_eq!(Pred::unknown().not(), Pred::unknown());
        assert!(Pred::fals().not().is_true());
        assert!(Pred::tru().not().is_false());
    }

    #[test]
    fn implication() {
        let strong = Pred::le(e("i"), e("3"));
        let weak = Pred::le(e("i"), e("5"));
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(Pred::fals().implies(&strong));
        assert!(strong.implies(&Pred::tru()));
        // nothing implies an inexact predicate except trivially
        assert!(!strong.implies(&Pred::unknown()));
    }

    #[test]
    fn implication_with_conjunction() {
        // (1 <= i ∧ i <= n) ⇒ (i <= n)
        let p = Pred::le(e("1"), e("i")).and(&Pred::le(e("i"), e("n")));
        let q = Pred::le(e("i"), e("n + 2"));
        assert!(p.implies(&q));
    }

    #[test]
    fn subst_triggers_simplification() {
        // (i <= n) with n := 5, then ∧ (i >= 6) → False
        let p = Pred::le(e("i"), e("n")).subst_var("n", &e("5"));
        let q = Pred::atom(Atom::ge(e("i"), e("6")));
        assert!(p.and(&q).is_false());
    }

    #[test]
    fn forget_var_weakens() {
        let p = Pred::le(e("i"), e("n")).and(&Pred::le(e("1"), e("j")));
        let q = p.forget_var("n");
        assert!(!q.is_exact());
        assert_eq!(q.disjs().len(), 1);
        assert!(q.contains_var("j"));
        assert!(!q.contains_var("n"));
    }

    #[test]
    fn unknown_propagates_through_and() {
        let p = Pred::le(e("i"), e("n")).and(&Pred::unknown());
        assert!(!p.is_exact());
        // but the known part still detects falsity
        let q = p.and(&Pred::atom(Atom::gt(e("i"), e("n"))));
        assert!(q.is_false());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Pred::tru().to_string(), "TRUE");
        assert_eq!(Pred::fals().to_string(), "FALSE");
        assert_eq!(Pred::unknown().to_string(), "DELTA");
        let p = Pred::le(e("1"), e("i"));
        assert!(p.to_string().contains("< 0"));
    }

    #[test]
    fn unit_equality_substitution() {
        // i = 5 ∧ n = 7 ∧ i > n  →  False
        let p = Pred::eq(e("i"), e("5"))
            .and(&Pred::eq(e("n"), e("7")))
            .and(&Pred::atom(Atom::gt(e("i"), e("n"))));
        assert!(p.is_false(), "{p}");
        // i = 5 ∧ i < n keeps both facts, with i rewritten
        let q = Pred::eq(e("i"), e("5")).and(&Pred::lt(e("i"), e("n")));
        assert!(!q.is_false());
        assert!(q.implies(&Pred::lt(e("5"), e("n"))), "{q}");
        assert!(q.implies(&Pred::eq(e("i"), e("5"))));
    }

    #[test]
    fn equality_chain_terminates() {
        // mutually defined equalities must not loop
        let p = Pred::eq(e("i"), e("j")).and(&Pred::eq(e("j"), e("i")));
        assert!(!p.is_false());
        let r = p.and(&Pred::lt(e("i"), e("j")));
        assert!(r.is_false(), "{r}");
    }

    #[test]
    fn paper_t1_t2_guard_example() {
        // From §3: T1 = [a<=b, A(a:b)], T2 = [b<=c, A(b:c)]; the guard
        // algebra must keep a<=b ∧ b>c coherent: conjunction not false,
        // exact, and its negation recovers.
        let g1 = Pred::le(e("a"), e("b"));
        let g2 = Pred::le(e("b"), e("c"));
        let both = g1.and(&g2);
        assert_eq!(both.disjs().len(), 2);
        let mixed = g1.and(&g2.not());
        assert!(!mixed.is_false());
        assert!(mixed.is_exact());
        // and the three cases are mutually exclusive
        assert!(both.and(&mixed).is_false());
    }
}
