//! Concrete evaluation of predicates, for testing and the interpreter.
//!
//! Property tests use evaluation as the soundness oracle: every
//! simplification the library performs must preserve the truth value under
//! every concrete assignment.

use crate::atom::{Atom, CondTemplate, RelOp};
use crate::disj::Disj;
use crate::predicate::Pred;
use sym::{Env, Expr};

/// Answers concrete queries about condition templates (the `C⟨t⟩(e)` atoms).
pub trait CondOracle {
    /// The truth value of template `t` at concrete index `index`, or `None`
    /// if unknown.
    fn eval_cond(&self, template: &CondTemplate, index: i64) -> Option<bool>;
}

/// An oracle that knows nothing (scalar-only evaluation).
pub struct NoConds;

impl CondOracle for NoConds {
    fn eval_cond(&self, _: &CondTemplate, _: i64) -> Option<bool> {
        None
    }
}

impl<F> CondOracle for F
where
    F: Fn(&CondTemplate, i64) -> Option<bool>,
{
    fn eval_cond(&self, template: &CondTemplate, index: i64) -> Option<bool> {
        self(template, index)
    }
}

/// An evaluation context: scalar bindings plus a condition oracle.
pub struct EvalCtx<'a> {
    /// Integer bindings for scalar variables. Logical variables are encoded
    /// as 0 (false) / nonzero (true).
    pub env: &'a Env,
    /// Oracle for condition templates.
    pub oracle: &'a dyn CondOracle,
}

impl<'a> EvalCtx<'a> {
    /// A scalar-only context.
    pub fn scalars(env: &'a Env) -> EvalCtx<'a> {
        EvalCtx {
            env,
            oracle: &NoConds,
        }
    }

    fn eval_expr(&self, e: &Expr) -> Option<i64> {
        e.eval(self.env)
    }

    /// Evaluates an atom; `None` when some variable is unbound or an oracle
    /// query fails.
    pub fn eval_atom(&self, a: &Atom) -> Option<bool> {
        match a {
            Atom::Rel(e, op) => {
                let v = self.eval_expr(e)?;
                Some(match op {
                    RelOp::Lt => v < 0,
                    RelOp::Eq => v == 0,
                    RelOp::Ne => v != 0,
                })
            }
            Atom::Bool(name, b) => {
                let v = self.env.get(name.as_str())?;
                Some((v != 0) == *b)
            }
            Atom::Cond {
                template,
                index,
                positive,
                ..
            } => {
                let i = self.eval_expr(index)?;
                Some(self.oracle.eval_cond(template, i)? == *positive)
            }
            Atom::ForallCond {
                template,
                lo,
                hi,
                positive,
                ..
            } => {
                let lo = self.eval_expr(lo)?;
                let hi = self.eval_expr(hi)?;
                for k in lo..=hi {
                    if self.oracle.eval_cond(template, k)? != *positive {
                        return Some(false);
                    }
                }
                Some(true)
            }
        }
    }

    /// Evaluates a disjunction: true if any atom is true; false only if all
    /// evaluate to false.
    pub fn eval_disj(&self, d: &Disj) -> Option<bool> {
        let mut all_known = true;
        for a in d.atoms() {
            match self.eval_atom(a) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => all_known = false,
            }
        }
        if all_known {
            Some(false)
        } else {
            None
        }
    }

    /// Evaluates a predicate. A Δ-carrying predicate evaluates to `None`
    /// unless its known part is already false.
    pub fn eval_pred(&self, p: &Pred) -> Option<bool> {
        match p {
            Pred::False => Some(false),
            Pred::Cnf { disjs, unknown } => {
                let mut all_known = true;
                for d in disjs {
                    match self.eval_disj(d) {
                        Some(false) => return Some(false),
                        Some(true) => {}
                        None => all_known = false,
                    }
                }
                if *unknown || !all_known {
                    None
                } else {
                    Some(true)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn scalar_pred_eval() {
        let env = Env::from_pairs([("i", 3), ("n", 10)]);
        let ctx = EvalCtx::scalars(&env);
        assert_eq!(ctx.eval_pred(&Pred::le(e("i"), e("n"))), Some(true));
        assert_eq!(ctx.eval_pred(&Pred::lt(e("n"), e("i"))), Some(false));
        assert_eq!(ctx.eval_pred(&Pred::tru()), Some(true));
        assert_eq!(ctx.eval_pred(&Pred::fals()), Some(false));
        assert_eq!(ctx.eval_pred(&Pred::unknown()), None);
    }

    #[test]
    fn unknown_with_false_known_part() {
        let env = Env::from_pairs([("i", 3)]);
        let ctx = EvalCtx::scalars(&env);
        let p = Pred::lt(e("i"), e("0")).and(&Pred::unknown());
        assert_eq!(ctx.eval_pred(&p), Some(false));
    }

    #[test]
    fn bool_atoms() {
        let env = Env::from_pairs([("p", 1)]);
        let ctx = EvalCtx::scalars(&env);
        let tru = Pred::atom(Atom::Bool(sym::Name::new("p"), true));
        let fal = Pred::atom(Atom::Bool(sym::Name::new("p"), false));
        assert_eq!(ctx.eval_pred(&tru), Some(true));
        assert_eq!(ctx.eval_pred(&fal), Some(false));
    }

    #[test]
    fn cond_oracle_forall() {
        let env = Env::from_pairs([("a", 1), ("b", 4)]);
        let t = CondTemplate::new("c");
        // Oracle: C(k) holds iff k is even.
        let oracle = |_t: &CondTemplate, k: i64| Some(k % 2 == 0);
        let ctx = EvalCtx {
            env: &env,
            oracle: &oracle,
        };
        let all_even = Atom::ForallCond {
            deps: vec![],
            template: t.clone(),
            lo: e("a"),
            hi: e("b"),
            positive: true,
        };
        assert_eq!(ctx.eval_atom(&all_even), Some(false));
        let single = Atom::Cond {
            deps: vec![],
            template: t,
            index: e("b"),
            positive: true,
        };
        assert_eq!(ctx.eval_atom(&single), Some(true));
    }
}
