//! Pairwise implication tests between atoms and disjunctions.
//!
//! These are the building blocks of the paper's "limited simplifier" (§5.2)
//! which "evaluates the truth value of the conjunction of two disjunctions
//! or the disjunction of two relational expressions" — i.e. everything is
//! decided two operands at a time.

use crate::atom::{Atom, RelOp};
use crate::disj::Disj;
use sym::diff_const;

/// Is `a ⇒ b` provable (pairwise, by normalizing expression differences)?
///
/// This is *sound but incomplete*: a `false` answer means "could not prove",
/// not "does not hold".
pub fn atom_implies(a: &Atom, b: &Atom) -> bool {
    if a == b {
        return true;
    }
    if a.const_value() == Some(false) || b.const_value() == Some(true) {
        return true;
    }
    match (a, b) {
        (Atom::Rel(e1, RelOp::Lt), Atom::Rel(e2, RelOp::Lt)) => {
            // e1 < 0 ⇒ e2 < 0 whenever e2 <= e1 everywhere.
            diff_const(e2, e1).is_some_and(|c| c <= 0)
        }
        (Atom::Rel(e1, RelOp::Eq), Atom::Rel(e2, RelOp::Lt)) => {
            // e1 = 0 ⇒ e2 < 0 if e2 = ±e1 + c with c < 0.
            diff_const(e2, e1).is_some_and(|c| c < 0)
                || diff_const(e2, &e1.negate()).is_some_and(|c| c < 0)
        }
        (Atom::Rel(e1, RelOp::Eq), Atom::Rel(e2, RelOp::Eq)) => {
            // Canonical sign makes ±e compare equal; different constants
            // never imply each other unless identical (handled above).
            diff_const(e2, e1) == Some(0) || diff_const(e2, &e1.negate()) == Some(0)
        }
        (Atom::Rel(e1, RelOp::Eq), Atom::Rel(e2, RelOp::Ne)) => {
            // e1 = 0 ⇒ e2 ≠ 0 if e2 = ±e1 + c with c ≠ 0.
            diff_const(e2, e1).is_some_and(|c| c != 0)
                || diff_const(e2, &e1.negate()).is_some_and(|c| c != 0)
        }
        (Atom::Rel(e1, RelOp::Lt), Atom::Rel(e2, RelOp::Ne)) => {
            // e1 < 0 ⇒ e2 ≠ 0 if e2 <= e1 (then e2 < 0), or e2 = -e1 + c
            // with c >= 0 (then e2 >= 1 + c > 0).
            diff_const(e2, e1).is_some_and(|c| c <= 0)
                || diff_const(e2, &e1.negate()).is_some_and(|c| c >= 0)
        }
        (Atom::Rel(e1, RelOp::Ne), Atom::Rel(e2, RelOp::Ne)) => {
            diff_const(e2, e1) == Some(0) || diff_const(e2, &e1.negate()) == Some(0)
        }
        (Atom::Bool(v1, b1), Atom::Bool(v2, b2)) => v1 == v2 && b1 == b2,
        (
            Atom::Cond {
                template: t1,
                index: i1,
                deps: d1,
                positive: p1,
            },
            Atom::Cond {
                template: t2,
                index: i2,
                deps: d2,
                positive: p2,
            },
        ) => t1 == t2 && d1 == d2 && p1 == p2 && diff_const(i1, i2) == Some(0),
        (
            Atom::ForallCond {
                template: t1,
                lo,
                hi,
                deps: d1,
                positive: p1,
            },
            Atom::Cond {
                template: t2,
                index,
                deps: d2,
                positive: p2,
            },
        ) => {
            // ∀k∈[lo,hi]: C(k)=p ⇒ C(e)=p whenever lo <= e <= hi provably.
            t1 == t2
                && d1 == d2
                && p1 == p2
                && diff_const(lo, index).is_some_and(|c| c <= 0)
                && diff_const(index, hi).is_some_and(|c| c <= 0)
        }
        (
            Atom::ForallCond {
                template: t1,
                lo: lo1,
                hi: hi1,
                deps: d1,
                positive: p1,
            },
            Atom::ForallCond {
                template: t2,
                lo: lo2,
                hi: hi2,
                deps: d2,
                positive: p2,
            },
        ) => {
            // Wider range implies narrower range: [lo2,hi2] ⊆ [lo1,hi1].
            t1 == t2
                && d1 == d2
                && p1 == p2
                && diff_const(lo1, lo2).is_some_and(|c| c <= 0)
                && diff_const(hi2, hi1).is_some_and(|c| c <= 0)
        }
        _ => false,
    }
}

/// Are two atoms provably contradictory (`a ∧ b = False`)?
pub fn atoms_contradict(a: &Atom, b: &Atom) -> bool {
    (b.has_complement() && atom_implies(a, &b.complement()))
        || (a.has_complement() && atom_implies(b, &a.complement()))
}

/// Is `d1 ⇒ d2` provable? Sufficient test: every atom of `d1` implies some
/// atom of `d2`.
pub fn disj_implies(d1: &Disj, d2: &Disj) -> bool {
    d1.atoms()
        .iter()
        .all(|a| d2.atoms().iter().any(|b| atom_implies(a, b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CondTemplate;
    use sym::{parse_expr, Expr, Name};

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn lt_implication_by_offset() {
        // i < n  ⇒  i < n + 5
        let a = Atom::lt(e("i"), e("n"));
        let b = Atom::lt(e("i"), e("n + 5"));
        assert!(atom_implies(&a, &b));
        assert!(!atom_implies(&b, &a));
    }

    #[test]
    fn le_lt_interplay() {
        // i <= n  ⇒  i < n + 1 (same atom after normalization)
        let a = Atom::le(e("i"), e("n"));
        let b = Atom::lt(e("i"), e("n + 1"));
        assert_eq!(a, b);
        // i < n ⇒ i <= n
        assert!(atom_implies(
            &Atom::lt(e("i"), e("n")),
            &Atom::le(e("i"), e("n"))
        ));
    }

    #[test]
    fn eq_implies_ne_of_shifted() {
        // i = 5 ⇒ i ≠ 6
        let a = Atom::eq(e("i"), e("5"));
        let b = Atom::ne(e("i"), e("6"));
        assert!(atom_implies(&a, &b));
        // i = 5 does not prove i ≠ j
        let c = Atom::ne(e("i"), e("j"));
        assert!(!atom_implies(&a, &c));
    }

    #[test]
    fn eq_implies_lt() {
        // i = 3 ⇒ i < 7  (i.e. i - 3 = 0 ⇒ i - 7 < 0)
        assert!(atom_implies(
            &Atom::eq(e("i"), e("3")),
            &Atom::lt(e("i"), e("7"))
        ));
        assert!(!atom_implies(
            &Atom::eq(e("i"), e("9")),
            &Atom::lt(e("i"), e("7"))
        ));
    }

    #[test]
    fn lt_implies_ne() {
        // i < n ⇒ i ≠ n
        assert!(atom_implies(
            &Atom::lt(e("i"), e("n")),
            &Atom::ne(e("i"), e("n"))
        ));
        // i < n ⇒ i ≠ n + 3
        assert!(atom_implies(
            &Atom::lt(e("i"), e("n")),
            &Atom::ne(e("i"), e("n + 3"))
        ));
    }

    #[test]
    fn contradictions() {
        // i < 3 ∧ i > 5 contradictory
        assert!(atoms_contradict(
            &Atom::lt(e("i"), e("3")),
            &Atom::gt(e("i"), e("5"))
        ));
        // i = 0 ∧ i ≠ 0 contradictory
        assert!(atoms_contradict(
            &Atom::eq(e("i"), e("0")),
            &Atom::ne(e("i"), e("0"))
        ));
        // p ∧ ¬p contradictory
        assert!(atoms_contradict(
            &Atom::Bool(Name::new("p"), true),
            &Atom::Bool(Name::new("p"), false)
        ));
        // i < n ∧ i < m: no contradiction
        assert!(!atoms_contradict(
            &Atom::lt(e("i"), e("n")),
            &Atom::lt(e("i"), e("m"))
        ));
    }

    #[test]
    fn forall_instantiation() {
        // ∀k∈[1,9]: ¬C(k)  ⇒  ¬C(e) for e = K+4, K∈[2,5] → need constant
        // bounds: instantiate at 6 (constant) works.
        let t = CondTemplate::new("b_gt_cut2");
        let fa = Atom::ForallCond {
            deps: vec![],
            template: t.clone(),
            lo: e("1"),
            hi: e("9"),
            positive: false,
        };
        let inst = Atom::Cond {
            deps: vec![],
            template: t.clone(),
            index: e("6"),
            positive: false,
        };
        assert!(atom_implies(&fa, &inst));
        let outside = Atom::Cond {
            deps: vec![],
            template: t.clone(),
            index: e("12"),
            positive: false,
        };
        assert!(!atom_implies(&fa, &outside));
        // symbolic instantiation: k + 4 with [lo,hi] = [k, k+9] style
        let fa2 = Atom::ForallCond {
            deps: vec![],
            template: t.clone(),
            lo: e("k"),
            hi: e("k + 9"),
            positive: false,
        };
        let inst2 = Atom::Cond {
            deps: vec![],
            template: t,
            index: e("k + 4"),
            positive: false,
        };
        assert!(atom_implies(&fa2, &inst2));
    }

    #[test]
    fn forall_narrowing() {
        let t = CondTemplate::new("c");
        let wide = Atom::ForallCond {
            deps: vec![],
            template: t.clone(),
            lo: e("1"),
            hi: e("9"),
            positive: true,
        };
        let narrow = Atom::ForallCond {
            deps: vec![],
            template: t,
            lo: e("2"),
            hi: e("5"),
            positive: true,
        };
        assert!(atom_implies(&wide, &narrow));
        assert!(!atom_implies(&narrow, &wide));
    }

    #[test]
    fn disj_implication() {
        let d1 = Disj::from_atoms([Atom::lt(e("i"), e("3"))]);
        let d2 = Disj::from_atoms([Atom::lt(e("i"), e("5")), Atom::eq(e("j"), e("0"))]);
        assert!(disj_implies(&d1, &d2));
        assert!(!disj_implies(&d2, &d1));
    }
}
