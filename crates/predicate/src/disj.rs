//! Disjunctions of atoms (the clauses of a CNF predicate).

use crate::atom::Atom;
use crate::simplify::{atom_implies, atoms_contradict};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A disjunction `a1 ∨ a2 ∨ … ∨ an` of atoms, kept sorted and deduplicated.
///
/// An empty disjunction is `False`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Disj {
    atoms: Vec<Atom>,
}

impl Disj {
    /// Builds a disjunction from atoms, canonicalizing and deduplicating.
    pub fn from_atoms(atoms: impl IntoIterator<Item = Atom>) -> Self {
        let mut v: Vec<Atom> = atoms.into_iter().map(Atom::canon).collect();
        v.sort();
        v.dedup();
        Disj { atoms: v }
    }

    /// Rebuilds a disjunction from atoms that are *already canonical*
    /// (as returned by [`Disj::atoms`]), without re-canonicalizing,
    /// sorting, or deduplicating. Used by persistence layers that must
    /// reproduce a previously observed value byte-for-byte; feeding it
    /// non-canonical atoms breaks `Eq`/`Ord` invariants.
    pub fn from_canonical_atoms(atoms: Vec<Atom>) -> Self {
        Disj { atoms }
    }

    /// A single-atom disjunction.
    pub fn unit(atom: Atom) -> Self {
        Disj {
            atoms: vec![atom.canon()],
        }
    }

    /// The sorted atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// `true` iff the disjunction is the empty (false) clause.
    pub fn is_false_clause(&self) -> bool {
        self.atoms.is_empty()
    }

    /// `Some(&atom)` iff the clause has exactly one atom.
    pub fn as_unit(&self) -> Option<&Atom> {
        match self.atoms.as_slice() {
            [a] => Some(a),
            _ => None,
        }
    }

    /// Or-combines two disjunctions.
    pub fn or(&self, other: &Disj) -> Disj {
        Disj::from_atoms(self.atoms.iter().chain(other.atoms.iter()).cloned())
    }

    /// Simplifies the clause pairwise.
    ///
    /// Returns `None` if the clause is a tautology (contains a constant-true
    /// atom or a complementary pair) and should be dropped from the CNF;
    /// otherwise the simplified clause (possibly empty = false).
    pub fn simplified(&self) -> Option<Disj> {
        // Drop constant-false atoms; detect constant-true.
        let mut kept: Vec<Atom> = Vec::with_capacity(self.atoms.len());
        for a in &self.atoms {
            match a.const_value() {
                Some(true) => return None,
                Some(false) => {}
                None => kept.push(a.clone()),
            }
        }
        // Tautology: a ∨ b where ¬a ⇒ b (covers exact complements).
        for i in 0..kept.len() {
            for j in 0..kept.len() {
                if i != j
                    && kept[i].has_complement()
                    && atom_implies(&kept[i].complement(), &kept[j])
                {
                    return None;
                }
            }
        }
        // Absorption: drop a if a ⇒ b for some other kept atom b.
        let mut out: Vec<Atom> = Vec::with_capacity(kept.len());
        'outer: for (i, a) in kept.iter().enumerate() {
            for (j, b) in kept.iter().enumerate() {
                if i == j {
                    continue;
                }
                if atom_implies(a, b) && !(atom_implies(b, a) && i > j) {
                    // a is subsumed by the (weaker or equal) atom b. The
                    // second condition keeps exactly one of a mutually
                    // implying pair.
                    if atom_implies(b, a) && j > i {
                        // mutual: keep the first occurrence (i < j) only
                        continue;
                    }
                    continue 'outer;
                }
            }
            out.push(a.clone());
        }
        out.sort();
        out.dedup();
        Some(Disj { atoms: out })
    }

    /// Does any atom mention `name`?
    pub fn contains_var(&self, name: &str) -> bool {
        self.atoms.iter().any(|a| a.contains_var(name))
    }

    /// Substitutes `name := value` in every atom; `None` on overflow.
    pub fn try_subst_var(&self, name: &str, value: &sym::Expr) -> Option<Disj> {
        let atoms = self
            .atoms
            .iter()
            .map(|a| a.try_subst_var(name, value))
            .collect::<Option<Vec<_>>>()?;
        Some(Disj::from_atoms(atoms))
    }

    /// Collects every scalar name mentioned by the clause.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<sym::Name>) {
        for a in &self.atoms {
            a.collect_vars(out);
        }
    }

    /// Is `self ∧ other` provably false? Only meaningful for unit clauses.
    pub fn contradicts_unit(&self, other: &Disj) -> bool {
        match (self.as_unit(), other.as_unit()) {
            (Some(a), Some(b)) => atoms_contradict(a, b),
            _ => false,
        }
    }
}

impl fmt::Display for Disj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return f.write_str("FALSE");
        }
        if self.atoms.len() == 1 {
            return write!(f, "{}", self.atoms[0]);
        }
        f.write_str("(")?;
        for (k, a) in self.atoms.iter().enumerate() {
            if k > 0 {
                f.write_str(" | ")?;
            }
            write!(f, "{a}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::{parse_expr, Expr};

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn dedup_and_sort() {
        let d = Disj::from_atoms([Atom::lt(e("i"), e("3")), Atom::lt(e("i"), e("3"))]);
        assert_eq!(d.atoms().len(), 1);
    }

    #[test]
    fn const_false_dropped() {
        let d = Disj::from_atoms([Atom::lt(e("2"), e("1")), Atom::lt(e("i"), e("3"))]);
        let s = d.simplified().unwrap();
        assert_eq!(s.atoms().len(), 1);
    }

    #[test]
    fn const_true_makes_tautology() {
        let d = Disj::from_atoms([Atom::lt(e("1"), e("2")), Atom::lt(e("i"), e("3"))]);
        assert!(d.simplified().is_none());
    }

    #[test]
    fn complementary_pair_is_tautology() {
        let a = Atom::lt(e("i"), e("n"));
        let d = Disj::from_atoms([a.clone(), a.complement()]);
        assert!(d.simplified().is_none());
    }

    #[test]
    fn covering_pair_is_tautology() {
        // (i < 5) ∨ (i >= 3) is a tautology: ¬(i<5) = (i>=5) ⇒ (i>=3).
        let d = Disj::from_atoms([Atom::lt(e("i"), e("5")), Atom::ge(e("i"), e("3"))]);
        assert!(d.simplified().is_none());
    }

    #[test]
    fn absorption_keeps_weakest() {
        // (i < 3) ∨ (i < 5) simplifies to (i < 5)
        let d = Disj::from_atoms([Atom::lt(e("i"), e("3")), Atom::lt(e("i"), e("5"))]);
        let s = d.simplified().unwrap();
        assert_eq!(s.atoms(), &[Atom::lt(e("i"), e("5"))]);
    }

    #[test]
    fn empty_is_false() {
        let d = Disj::from_atoms([]);
        assert!(d.is_false_clause());
        assert_eq!(d.simplified().unwrap(), d);
        assert_eq!(d.to_string(), "FALSE");
    }

    #[test]
    fn subst_var() {
        let d = Disj::from_atoms([Atom::lt(e("i"), e("n"))]);
        let s = d.try_subst_var("n", &e("10")).unwrap();
        assert_eq!(s, Disj::from_atoms([Atom::lt(e("i"), e("10"))]));
    }

    #[test]
    fn unit_contradiction() {
        let d1 = Disj::unit(Atom::eq(e("kc"), e("0")));
        let d2 = Disj::unit(Atom::ne(e("kc"), e("0")));
        assert!(d1.contradicts_unit(&d2));
    }
}
