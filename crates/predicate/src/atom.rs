//! Atomic predicates.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use sym::{Expr, Name};

/// Relational operator of an atom, always against zero.
///
/// All six Fortran relational operators normalize to these three on the
/// integers: `a <= b` becomes `a - b - 1 < 0`, `a > b` becomes `b - a < 0`,
/// and so on.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RelOp {
    /// `e < 0`
    Lt,
    /// `e = 0`
    Eq,
    /// `e ≠ 0`
    Ne,
}

/// A conditional template: an opaque, loop-varying condition distinguished
/// by an identifier, applied at a symbolic index. `C⟨t⟩(e)` reads "the
/// condition with template `t` holds at index `e`".
///
/// The frontend creates one template per textual condition containing a
/// loop-varying array reference (e.g. `B(K).GT.cut2` in MDG `interf`), with
/// the subscript abstracted out. Two occurrences `B(K).GT.cut2` and
/// `B(K+4).GT.cut2` share the template and differ only in the index
/// expression, which is what lets the ∀-inference connect them.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CondTemplate(pub Arc<str>);

impl Serialize for CondTemplate {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Str(self.0.to_string())
    }
}

impl CondTemplate {
    /// Creates a template from its canonical text.
    pub fn new(s: impl AsRef<str>) -> Self {
        CondTemplate(Arc::from(s.as_ref()))
    }
}

impl fmt::Display for CondTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// An atomic predicate.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Atom {
    /// `e op 0` over a symbolic expression.
    Rel(Expr, RelOp),
    /// A logical scalar variable compared with a truth value.
    Bool(Name, bool),
    /// The condition template holds (`positive = true`) or does not hold at
    /// the given index.
    ///
    /// Purely scalar opaque conditions (e.g. a REAL comparison `x > SIZE`
    /// the integer machinery cannot express) use a constant `index` of 0;
    /// their identity is the template plus `deps`.
    Cond {
        /// Which textual condition. Templates reference their scalar
        /// dependencies positionally (`$0`, `$1`, …) so renaming a
        /// dependency does not change the template.
        template: CondTemplate,
        /// The index expression the condition is instantiated at.
        index: Expr,
        /// Free scalar variables of the condition besides the index. If
        /// any of them is redefined the atom must be invalidated.
        deps: Vec<Name>,
        /// Polarity.
        positive: bool,
    },
    /// `∀ k ∈ [lo, hi] : C⟨t⟩(k) == positive` — a universally quantified
    /// fact about a condition template over an index range. The body is
    /// implicitly `Cond{template, k, deps, positive}`.
    ForallCond {
        /// The condition template quantified over.
        template: CondTemplate,
        /// Lower bound of the quantified range (inclusive).
        lo: Expr,
        /// Upper bound of the quantified range (inclusive).
        hi: Expr,
        /// Scalar dependencies of the quantified condition.
        deps: Vec<Name>,
        /// Polarity asserted for every index in the range.
        positive: bool,
    },
}

impl Atom {
    /// `a < b` as an atom.
    pub fn lt(a: Expr, b: Expr) -> Atom {
        Atom::Rel(a - b, RelOp::Lt).canon()
    }

    /// `a <= b` as an atom (integers: `a - b - 1 < 0`).
    pub fn le(a: Expr, b: Expr) -> Atom {
        Atom::Rel(a - b - Expr::one(), RelOp::Lt).canon()
    }

    /// `a > b` as an atom.
    pub fn gt(a: Expr, b: Expr) -> Atom {
        Atom::lt(b, a)
    }

    /// `a >= b` as an atom.
    pub fn ge(a: Expr, b: Expr) -> Atom {
        Atom::le(b, a)
    }

    /// `a = b` as an atom.
    pub fn eq(a: Expr, b: Expr) -> Atom {
        Atom::Rel(a - b, RelOp::Eq).canon()
    }

    /// `a ≠ b` as an atom.
    pub fn ne(a: Expr, b: Expr) -> Atom {
        Atom::Rel(a - b, RelOp::Ne).canon()
    }

    /// Canonicalizes: for `Eq`/`Ne`, the expression sign is fixed so that
    /// the leading term has a positive coefficient (both signs denote the
    /// same set).
    pub fn canon(self) -> Atom {
        match self {
            Atom::Rel(e, op @ (RelOp::Eq | RelOp::Ne)) => {
                let flip = e.terms().first().is_some_and(|t| t.coef < 0);
                Atom::Rel(if flip { e.negate() } else { e }, op)
            }
            other => other,
        }
    }

    /// The exact logical complement of this atom.
    pub fn complement(&self) -> Atom {
        match self {
            // ¬(e < 0) == (e >= 0) == (-e - 1 < 0)
            Atom::Rel(e, RelOp::Lt) => Atom::Rel(e.negate() - Expr::one(), RelOp::Lt),
            Atom::Rel(e, RelOp::Eq) => Atom::Rel(e.clone(), RelOp::Ne),
            Atom::Rel(e, RelOp::Ne) => Atom::Rel(e.clone(), RelOp::Eq),
            Atom::Bool(v, b) => Atom::Bool(v.clone(), !b),
            Atom::Cond {
                template,
                index,
                deps,
                positive,
            } => Atom::Cond {
                template: template.clone(),
                index: index.clone(),
                deps: deps.clone(),
                positive: !positive,
            },
            // The complement of a ∀ is an ∃, which the representation cannot
            // express; callers treat this as unknown. We signal it by
            // returning the ∀ unchanged and letting `Pred::not` detect it.
            Atom::ForallCond { .. } => self.clone(),
        }
    }

    /// `true` iff this atom has an expressible exact complement.
    pub fn has_complement(&self) -> bool {
        !matches!(self, Atom::ForallCond { .. })
    }

    /// Constant-folds the atom: `Some(true/false)` if it is a tautology or
    /// contradiction on its own. Besides literal constants, a symbolic
    /// relation is discharged when the [`sym::bounds`] range oracle (when
    /// one is installed) proves the sign of its expression — this is how
    /// proved value ranges refute Δ-unknown guards.
    pub fn const_value(&self) -> Option<bool> {
        match self {
            Atom::Rel(e, op) => {
                if let Some(c) = e.as_const() {
                    return Some(match op {
                        RelOp::Lt => c < 0,
                        RelOp::Eq => c == 0,
                        RelOp::Ne => c != 0,
                    });
                }
                if !sym::bounds::oracle_active() {
                    return None;
                }
                use sym::SymOrdering::{Equal, Greater, Less};
                match (sym::compare(e, &sym::Expr::zero()), op) {
                    (Less, RelOp::Lt) => Some(true),
                    (Equal | Greater, RelOp::Lt) => Some(false),
                    (Equal, RelOp::Eq) => Some(true),
                    (Less | Greater, RelOp::Eq) => Some(false),
                    (Equal, RelOp::Ne) => Some(false),
                    (Less | Greater, RelOp::Ne) => Some(true),
                    _ => None,
                }
            }
            // An empty quantified range is vacuously true.
            Atom::ForallCond { lo, hi, .. } => match sym::compare(lo, hi) {
                sym::SymOrdering::Greater => Some(true),
                _ => None,
            },
            _ => None,
        }
    }

    /// Does the atom mention the scalar variable `name`?
    pub fn contains_var(&self, name: &str) -> bool {
        match self {
            Atom::Rel(e, _) => e.contains_var(name),
            Atom::Bool(v, _) => v.as_str() == name,
            Atom::Cond { index, deps, .. } => {
                index.contains_var(name) || deps.iter().any(|d| d.as_str() == name)
            }
            Atom::ForallCond { lo, hi, deps, .. } => {
                lo.contains_var(name)
                    || hi.contains_var(name)
                    || deps.iter().any(|d| d.as_str() == name)
            }
        }
    }

    /// Collects every scalar name mentioned by the atom into `out`.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<Name>) {
        match self {
            Atom::Rel(e, _) => out.extend(e.vars()),
            Atom::Bool(v, _) => {
                out.insert(v.clone());
            }
            Atom::Cond { index, deps, .. } => {
                out.extend(index.vars());
                out.extend(deps.iter().cloned());
            }
            Atom::ForallCond { lo, hi, deps, .. } => {
                out.extend(lo.vars());
                out.extend(hi.vars());
                out.extend(deps.iter().cloned());
            }
        }
    }

    /// Substitutes `name := value` in every expression of the atom.
    /// Returns `None` on arithmetic overflow, and also when an opaque
    /// dependency of a `Cond` atom is replaced by a non-variable — the
    /// condition can then no longer be represented and the clause must be
    /// dropped (weakened to Δ) by the caller.
    pub fn try_subst_var(&self, name: &str, value: &Expr) -> Option<Atom> {
        Some(match self {
            Atom::Rel(e, op) => Atom::Rel(e.try_subst_var(name, value)?, *op).canon(),
            Atom::Bool(v, b) => {
                if v.as_str() == name {
                    // Renaming a logical variable is fine; anything else is
                    // not representable.
                    let w = value.as_var()?;
                    Atom::Bool(w.clone(), *b)
                } else {
                    self.clone()
                }
            }
            Atom::Cond {
                template,
                index,
                deps,
                positive,
            } => {
                let deps = if deps.iter().any(|d| d.as_str() == name) {
                    let w = value.as_var()?;
                    deps.iter()
                        .map(|d| {
                            if d.as_str() == name {
                                w.clone()
                            } else {
                                d.clone()
                            }
                        })
                        .collect()
                } else {
                    deps.clone()
                };
                Atom::Cond {
                    template: template.clone(),
                    index: index.try_subst_var(name, value)?,
                    deps,
                    positive: *positive,
                }
            }
            Atom::ForallCond {
                template,
                lo,
                hi,
                deps,
                positive,
            } => {
                let deps = if deps.iter().any(|d| d.as_str() == name) {
                    let w = value.as_var()?;
                    deps.iter()
                        .map(|d| {
                            if d.as_str() == name {
                                w.clone()
                            } else {
                                d.clone()
                            }
                        })
                        .collect()
                } else {
                    deps.clone()
                };
                Atom::ForallCond {
                    template: template.clone(),
                    lo: lo.try_subst_var(name, value)?,
                    hi: hi.try_subst_var(name, value)?,
                    deps,
                    positive: *positive,
                }
            }
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Rel(e, RelOp::Lt) => write!(f, "{e} < 0"),
            Atom::Rel(e, RelOp::Eq) => write!(f, "{e} = 0"),
            Atom::Rel(e, RelOp::Ne) => write!(f, "{e} != 0"),
            Atom::Bool(v, true) => write!(f, "{v}"),
            Atom::Bool(v, false) => write!(f, "!{v}"),
            Atom::Cond {
                template,
                index,
                deps,
                positive,
            } => {
                if !*positive {
                    f.write_str("!")?;
                }
                write!(f, "C<{template}>({index}")?;
                for d in deps {
                    write!(f, "; {d}")?;
                }
                f.write_str(")")
            }
            Atom::ForallCond {
                template,
                lo,
                hi,
                positive,
                ..
            } => {
                if *positive {
                    write!(f, "forall k in [{lo},{hi}]: C<{template}>(k)")
                } else {
                    write!(f, "forall k in [{lo},{hi}]: !C<{template}>(k)")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn relational_normalization() {
        // a <= b  ==>  a - b - 1 < 0
        let a = Atom::le(e("a"), e("b"));
        assert_eq!(a.to_string(), "a - b - 1 < 0");
        // a > b  ==>  b - a < 0
        let g = Atom::gt(e("a"), e("b"));
        assert_eq!(g.to_string(), "-a + b < 0");
    }

    #[test]
    fn eq_sign_canonical() {
        let p = Atom::eq(e("a"), e("b"));
        let q = Atom::eq(e("b"), e("a"));
        assert_eq!(p, q);
    }

    #[test]
    fn complement_involution() {
        let a = Atom::lt(e("i"), e("n"));
        assert_eq!(a.complement().complement().canon(), a.clone().canon());
        let b = Atom::Bool(Name::new("p"), true);
        assert_eq!(b.complement(), Atom::Bool(Name::new("p"), false));
        let q = Atom::eq(e("i"), e("0"));
        assert_eq!(q.complement().complement(), q);
    }

    #[test]
    fn complement_is_exact_lt() {
        // ¬(i < n): i - n < 0 -> complement -(i-n)-1 < 0 == n - i - 1 < 0 == i >= n
        let a = Atom::lt(e("i"), e("n"));
        let c = a.complement();
        // i >= n == n <= i == n - i - 1 < 0
        assert_eq!(c, Atom::ge(e("i"), e("n")));
    }

    #[test]
    fn const_folding() {
        assert_eq!(Atom::lt(e("1"), e("2")).const_value(), Some(true));
        assert_eq!(Atom::lt(e("2"), e("1")).const_value(), Some(false));
        assert_eq!(Atom::eq(e("3"), e("3")).const_value(), Some(true));
        assert_eq!(Atom::lt(e("i"), e("2")).const_value(), None);
    }

    #[test]
    fn forall_vacuous_range_true() {
        let a = Atom::ForallCond {
            deps: vec![],
            template: CondTemplate::new("t"),
            lo: e("5"),
            hi: e("2"),
            positive: false,
        };
        assert_eq!(a.const_value(), Some(true));
    }

    #[test]
    fn subst_in_rel() {
        let a = Atom::lt(e("i"), e("n"));
        let s = a.try_subst_var("i", &e("j + 1")).unwrap();
        assert_eq!(s, Atom::lt(e("j + 1"), e("n")));
    }

    #[test]
    fn contains_var() {
        let a = Atom::lt(e("i"), e("n"));
        assert!(a.contains_var("i"));
        assert!(a.contains_var("n"));
        assert!(!a.contains_var("j"));
        let b = Atom::Bool(Name::new("flag"), true);
        assert!(b.contains_var("flag"));
    }
}
