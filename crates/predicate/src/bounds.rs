//! Solving variable bounds out of a guard.
//!
//! The *expansion* step of the paper (§4.1) requires that when a loop index
//! `i` appears in a GAR's guard, "`i` should be solved from the guard which,
//! in general, is written as `l' <= i <= u'`". This module extracts such
//! bounds from the unit clauses of a predicate.

use crate::atom::{Atom, RelOp};
use crate::disj::Disj;
use crate::predicate::Pred;
use sym::Expr;

/// Bounds solved for one variable from a guard, plus the residual guard with
/// the solved clauses removed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarBounds {
    /// Lower bounds (the effective bound is their maximum).
    pub los: Vec<Expr>,
    /// Upper bounds (the effective bound is their minimum).
    pub his: Vec<Expr>,
    /// The guard with the solved clauses deleted (per the paper: "the
    /// inequalities and equalities involving `i` in the guard are then
    /// deleted").
    pub residual: Pred,
}

/// Attempts to solve all occurrences of `var` out of the guard.
///
/// Succeeds only when every clause mentioning `var` is a *unit* clause whose
/// atom is affine in `var` with coefficient ±1 (`c*var + r < 0` or `= 0`).
/// `Ne` atoms and disjunctive occurrences cannot be turned into bounds;
/// their presence makes the solve fail and the caller must approximate
/// (mark the region unknown), exactly as the paper prescribes for
/// non-representable substitutions.
///
/// Returns `None` when `var` occurs but cannot be fully solved. When `var`
/// does not occur at all the result has empty bound lists and `residual`
/// equal to the input.
pub fn bounds_on(pred: &Pred, var: &str) -> Option<VarBounds> {
    let Pred::Cnf { disjs, unknown } = pred else {
        // False: the GAR is empty anyway; report trivial bounds.
        return Some(VarBounds {
            los: Vec::new(),
            his: Vec::new(),
            residual: Pred::False,
        });
    };
    let mut los = Vec::new();
    let mut his = Vec::new();
    let mut residual: Vec<Disj> = Vec::new();
    for d in disjs {
        if !d.contains_var(var) {
            residual.push(d.clone());
            continue;
        }
        let atom = d.as_unit()?;
        match atom {
            Atom::Rel(e, RelOp::Lt) => {
                let (c, rest) = e.affine_decompose(var)?;
                match c {
                    // var + rest < 0  ⇔  var <= -rest - 1
                    1 => his.push(rest.negate() - Expr::one()),
                    // -var + rest < 0  ⇔  var >= rest + 1
                    -1 => los.push(rest + Expr::one()),
                    _ => return None,
                }
            }
            Atom::Rel(e, RelOp::Eq) => {
                let (c, rest) = e.affine_decompose(var)?;
                let v = match c {
                    1 => rest.negate(),
                    -1 => rest,
                    _ => return None,
                };
                los.push(v.clone());
                his.push(v);
            }
            _ => return None,
        }
    }
    Some(VarBounds {
        los,
        his,
        residual: Pred::from_disjs(residual, *unknown),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn no_occurrence_trivial() {
        let p = Pred::le(e("a"), e("b"));
        let b = bounds_on(&p, "i").unwrap();
        assert!(b.los.is_empty() && b.his.is_empty());
        assert_eq!(b.residual, p);
    }

    #[test]
    fn upper_and_lower() {
        // c <= i + 1 <= d  (the paper's expansion example) gives
        // lo = c - 1, hi = d - 1.
        let p = Pred::le(e("c"), e("i + 1")).and(&Pred::le(e("i + 1"), e("d")));
        let b = bounds_on(&p, "i").unwrap();
        assert_eq!(b.los, vec![e("c - 1")]);
        assert_eq!(b.his, vec![e("d - 1")]);
        assert!(b.residual.is_true());
    }

    #[test]
    fn equality_pins_both() {
        let p = Pred::eq(e("i"), e("n + 2"));
        let b = bounds_on(&p, "i").unwrap();
        assert_eq!(b.los, vec![e("n + 2")]);
        assert_eq!(b.his, vec![e("n + 2")]);
    }

    #[test]
    fn residual_keeps_other_clauses() {
        let p = Pred::le(e("i"), e("9")).and(&Pred::le(e("x"), e("y")));
        let b = bounds_on(&p, "i").unwrap();
        assert_eq!(b.his, vec![e("9")]);
        assert_eq!(b.residual, Pred::le(e("x"), e("y")));
    }

    #[test]
    fn ne_fails() {
        let p = Pred::ne(e("i"), e("3"));
        assert!(bounds_on(&p, "i").is_none());
    }

    #[test]
    fn disjunction_fails() {
        let p = Pred::lt(e("i"), e("3")).or(&Pred::lt(e("q"), e("0")));
        assert!(bounds_on(&p, "i").is_none());
    }

    #[test]
    fn non_unit_coefficient_fails() {
        let p = Pred::lt(e("2*i"), e("n"));
        assert!(bounds_on(&p, "i").is_none());
    }

    #[test]
    fn false_pred_trivial() {
        let b = bounds_on(&Pred::fals(), "i").unwrap();
        assert!(b.residual.is_false());
    }
}
