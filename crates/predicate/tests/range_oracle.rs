//! Property tests for the value-range refutation oracle (DESIGN.md
//! §4g): predicate simplification with a range oracle installed must
//! agree with concrete evaluation at every point inside the bounds —
//! no refutation may flip a satisfiable guard — and an exhausted
//! analysis budget must degrade to "no decisions", never to a wrong
//! one.

use pred::{Atom, EvalCtx, Pred};
use proptest::prelude::*;
use sym::{Env, Expr};
use vrange::{eval_sym, Budget, Interval, RangeEnv, ValueRange, DEFAULT_BUDGET};

const VARS: [&str; 3] = ["i", "n", "m"];

/// Per-variable closed bounds plus one concrete point inside them.
#[derive(Clone, Debug)]
struct BoundedEnv {
    bounds: Vec<(i64, i64)>,
    point: Vec<i64>,
}

fn arb_bounded_env() -> impl Strategy<Value = BoundedEnv> {
    // (lo, width, offset): bounds = (lo, lo+width), point = lo + offset
    // clamped into the span — one draw, no flat-mapping needed.
    proptest::collection::vec((-20i64..20, 0i64..12, 0i64..12), VARS.len()).prop_map(|spans| {
        let bounds: Vec<(i64, i64)> = spans.iter().map(|&(lo, w, _)| (lo, lo + w)).collect();
        let point: Vec<i64> = spans.iter().map(|&(lo, w, off)| lo + off.min(w)).collect();
        BoundedEnv { bounds, point }
    })
}

fn arb_affine() -> impl Strategy<Value = Expr> {
    (
        -8i64..8,
        0usize..VARS.len(),
        -3i64..4,
        0usize..VARS.len(),
        -2i64..3,
    )
        .prop_map(|(c0, v1, c1, v2, c2)| {
            Expr::from(c0) + Expr::var(VARS[v1]) * c1 + Expr::var(VARS[v2]) * c2
        })
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (arb_affine(), arb_affine(), 0u8..4).prop_map(|(a, b, k)| match k {
        0 => Atom::lt(a, b),
        1 => Atom::le(a, b),
        2 => Atom::eq(a, b),
        _ => Atom::ne(a, b),
    })
}

/// A CNF recipe: conjunction of disjunctions of atoms. Kept as data so
/// the same predicate can be built with and without the oracle.
fn arb_cnf() -> impl Strategy<Value = Vec<Vec<Atom>>> {
    proptest::collection::vec(proptest::collection::vec(arb_atom(), 1..3), 1..4)
}

fn build(cnf: &[Vec<Atom>]) -> Pred {
    let mut p = Pred::tru();
    for disj in cnf {
        let mut d = Pred::fals();
        for a in disj {
            d = d.or(&Pred::atom(a.clone()));
        }
        p = p.and(&d);
    }
    p
}

/// Installs a range oracle answering from the given per-variable
/// bounds via interval evaluation — the same hook shape `privatize`
/// installs from a loop's `range_bounds`.
fn install_oracle(bounds: &[(i64, i64)], budget_units: u64) -> sym::bounds::OracleGuard {
    let mut env = RangeEnv::new();
    for (k, &(lo, hi)) in bounds.iter().enumerate() {
        env.set(
            VARS[k].to_string(),
            ValueRange::of_interval(Interval::new(Some(lo), Some(hi))),
        );
    }
    let budget = Budget::new(budget_units);
    sym::bounds::OracleGuard::install(Box::new(move |diff: &Expr| {
        let iv = eval_sym(diff, &env, &budget).interval;
        if iv.is_empty() {
            return None;
        }
        let ord = if iv.as_const() == Some(0) {
            sym::SymOrdering::Equal
        } else if iv.hi.is_some_and(|h| h < 0) {
            sym::SymOrdering::Less
        } else if iv.lo.is_some_and(|l| l > 0) {
            sym::SymOrdering::Greater
        } else {
            return None;
        };
        Some((ord, format!("{diff} in {iv}")))
    }))
}

fn concrete(be: &BoundedEnv) -> Env {
    Env::from_pairs(VARS.iter().copied().zip(be.point.iter().copied()))
}

proptest! {
    /// Range-assisted simplification agrees with concrete evaluation:
    /// wherever both the oracle-simplified and the plain predicate
    /// evaluate at a point inside the bounds, they agree — and an
    /// oracle-refuted predicate (`is_false`) is false at EVERY point
    /// inside the bounds. No refutation flips a satisfiable guard.
    #[test]
    fn oracle_simplify_agrees_with_concrete_eval(
        cnf in arb_cnf(),
        be in arb_bounded_env(),
    ) {
        let plain = build(&cnf);
        let assisted = {
            let _guard = install_oracle(&be.bounds, DEFAULT_BUDGET);
            build(&cnf)
        };
        let env = concrete(&be);
        let vp = EvalCtx::scalars(&env).eval_pred(&plain);
        let va = EvalCtx::scalars(&env).eval_pred(&assisted);
        if let (Some(vp), Some(va)) = (vp, va) {
            prop_assert_eq!(va, vp, "oracle changed truth at {:?}: {} vs {}", be.point, assisted, plain);
        }
        if assisted.is_false() {
            prop_assert!(
                vp != Some(true),
                "oracle refuted {} but it holds at {:?} within bounds {:?}",
                plain, be.point, be.bounds
            );
        }
    }

    /// Fuel exhaustion degrades gracefully: with a zero budget every
    /// interval evaluation widens to top, the oracle answers nothing,
    /// no decisions are logged, and the built predicate is identical
    /// to the unassisted one.
    #[test]
    fn exhausted_budget_decides_nothing(
        cnf in arb_cnf(),
        be in arb_bounded_env(),
    ) {
        let plain = build(&cnf);
        let starved = {
            let _guard = install_oracle(&be.bounds, 0);
            let p = build(&cnf);
            prop_assert!(
                sym::bounds::take_decisions().is_empty(),
                "zero-budget oracle logged decisions"
            );
            p
        };
        prop_assert_eq!(
            starved.to_string(),
            plain.to_string(),
            "zero-budget oracle changed simplification"
        );
    }
}
