//! Building the HSG from the AST.

use crate::graph::{EdgeKind, Hsg, Node, NodeId, Subgraph, SubgraphId};
use fortran::{Program, Stmt, StmtKind};
use std::collections::BTreeMap;
use std::fmt;

/// A construction failure.
#[derive(Clone, PartialEq, Debug)]
pub struct HsgError {
    /// Description.
    pub message: String,
    /// Routine in which the problem was found.
    pub routine: String,
}

impl fmt::Display for HsgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in {}: {}", self.routine, self.message)
    }
}

impl std::error::Error for HsgError {}

/// Builds the HSG for a parsed program. Goto-cycles are condensed; DO loops
/// with premature exits are flagged on their body subgraphs.
pub fn build_hsg(program: &Program) -> Result<Hsg, HsgError> {
    let mut hsg = Hsg::default();
    for r in &program.routines {
        let _span = trace::span_with(|| format!("hsg:{}", r.name));
        let sg = build_subgraph(&mut hsg, &r.body, &r.name, false)?;
        hsg.routines.insert(r.name.clone(), sg);
    }
    trace::add(
        "hsg_nodes",
        hsg.subgraphs.iter().map(|sg| sg.nodes.len() as u64).sum(),
    );
    Ok(hsg)
}

/// Builds one flow subgraph (routine or loop body) into the HSG arena.
fn build_subgraph(
    hsg: &mut Hsg,
    body: &[Stmt],
    routine: &str,
    is_loop_body: bool,
) -> Result<SubgraphId, HsgError> {
    let mut b = Builder {
        hsg,
        routine,
        nodes: vec![Node::Entry, Node::Exit],
        succs: vec![Vec::new(), Vec::new()],
        labels: BTreeMap::new(),
        pending: Vec::new(),
        frontier: vec![(0, EdgeKind::Seq)],
        current_block: None,
    };
    b.stmts(body)?;
    // Fall through to exit.
    let frontier = std::mem::take(&mut b.frontier);
    for (n, k) in frontier {
        b.succs[n].push((1, k));
    }
    // Resolve gotos.
    let mut premature_exit = false;
    let pending = std::mem::take(&mut b.pending);
    for (from, kind, label) in pending {
        match b.labels.get(&label) {
            Some(&target) => b.succs[from].push((target, kind)),
            None => {
                if is_loop_body {
                    // Premature exit out of the loop: route to the body
                    // exit and flag (§5.4 conservative treatment).
                    premature_exit = true;
                    b.succs[from].push((1, kind));
                } else {
                    return Err(HsgError {
                        message: format!("GOTO to undefined label {label}"),
                        routine: routine.to_string(),
                    });
                }
            }
        }
    }
    let Builder { nodes, succs, .. } = b;
    let mut g = Subgraph {
        preds: compute_preds(&nodes, &succs),
        nodes,
        succs,
        entry: 0,
        exit: 1,
        topo: Vec::new(),
        premature_exit,
    };
    condense_cycles(&mut g);
    g.topo = topo_order(&g).ok_or_else(|| HsgError {
        message: "internal: cycle survived condensation".into(),
        routine: routine.to_string(),
    })?;
    hsg.subgraphs.push(g);
    Ok(hsg.subgraphs.len() - 1)
}

struct Builder<'a> {
    hsg: &'a mut Hsg,
    routine: &'a str,
    nodes: Vec<Node>,
    succs: Vec<Vec<(NodeId, EdgeKind)>>,
    labels: BTreeMap<u32, NodeId>,
    /// (from, kind, label) edges awaiting label resolution.
    pending: Vec<(NodeId, EdgeKind, u32)>,
    /// Dangling edges waiting for the next node.
    frontier: Vec<(NodeId, EdgeKind)>,
    /// Open basic block accepting more statements.
    current_block: Option<NodeId>,
}

impl Builder<'_> {
    fn add_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.succs.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Connects the frontier to `n` and makes `n` the sole frontier.
    fn attach(&mut self, n: NodeId) {
        let frontier = std::mem::take(&mut self.frontier);
        for (p, k) in frontier {
            self.succs[p].push((n, k));
        }
        self.frontier = vec![(n, EdgeKind::Seq)];
    }

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), HsgError> {
        for s in body {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), HsgError> {
        if let Some(label) = s.label {
            // Labels start a fresh anchor node so jumps land cleanly.
            let anchor = self.add_node(Node::Block(Vec::new()));
            self.attach(anchor);
            self.current_block = Some(anchor);
            if self.labels.insert(label, anchor).is_some() {
                return Err(HsgError {
                    message: format!("duplicate label {label}"),
                    routine: self.routine.to_string(),
                });
            }
        }
        match &s.kind {
            StmtKind::Assign(..) => match self.current_block {
                Some(bid) if self.frontier == vec![(bid, EdgeKind::Seq)] => {
                    if let Node::Block(stmts) = &mut self.nodes[bid] {
                        stmts.push(Stmt {
                            label: None,
                            line: s.line,
                            kind: s.kind.clone(),
                        });
                    }
                }
                _ => {
                    let bid = self.add_node(Node::Block(vec![Stmt {
                        label: None,
                        line: s.line,
                        kind: s.kind.clone(),
                    }]));
                    self.attach(bid);
                    self.current_block = Some(bid);
                }
            },
            StmtKind::Continue => {
                // No-op; the label (if any) already created an anchor.
                if self.frontier.is_empty() {
                    // unreachable CONTINUE without label: ignore
                } else if self.current_block.is_none() {
                    let bid = self.add_node(Node::Block(Vec::new()));
                    self.attach(bid);
                    self.current_block = Some(bid);
                }
            }
            StmtKind::Call(name, args) => {
                let n = self.add_node(Node::Call {
                    name: name.clone(),
                    args: args.clone(),
                });
                self.attach(n);
                self.current_block = None;
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.add_node(Node::IfCond(cond.clone()));
                self.attach(c);
                self.current_block = None;
                // THEN branch.
                self.frontier = vec![(c, EdgeKind::True)];
                self.stmts(then_body)?;
                let after_then = std::mem::take(&mut self.frontier);
                // ELSE branch.
                self.frontier = vec![(c, EdgeKind::False)];
                self.stmts(else_body)?;
                self.frontier.extend(after_then);
                self.current_block = None;
            }
            StmtKind::LogicalIf(cond, inner) => {
                let c = self.add_node(Node::IfCond(cond.clone()));
                self.attach(c);
                self.current_block = None;
                self.frontier = vec![(c, EdgeKind::True)];
                self.stmt(inner)?;
                let after = std::mem::take(&mut self.frontier);
                self.frontier = vec![(c, EdgeKind::False)];
                self.frontier.extend(after);
                self.current_block = None;
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let body_sg = build_subgraph(self.hsg, body, self.routine, true)?;
                let n = self.add_node(Node::Loop {
                    var: var.clone(),
                    line: s.line,
                    lo: lo.clone(),
                    hi: hi.clone(),
                    step: step.clone(),
                    body: body_sg,
                });
                self.attach(n);
                self.current_block = None;
            }
            StmtKind::Goto(label) => {
                let frontier = std::mem::take(&mut self.frontier);
                for (p, k) in frontier {
                    self.pending.push((p, k, *label));
                }
                self.current_block = None;
            }
            StmtKind::Return | StmtKind::Stop => {
                let frontier = std::mem::take(&mut self.frontier);
                for (p, k) in frontier {
                    self.succs[p].push((1, k)); // exit
                }
                self.current_block = None;
            }
        }
        Ok(())
    }
}

fn compute_preds(nodes: &[Node], succs: &[Vec<(NodeId, EdgeKind)>]) -> Vec<Vec<NodeId>> {
    let mut preds = vec![Vec::new(); nodes.len()];
    for (n, ss) in succs.iter().enumerate() {
        for &(t, _) in ss {
            preds[t].push(n);
        }
    }
    preds
}

/// Condenses nontrivial strongly connected components (backward-goto
/// cycles) into single conservative nodes.
fn condense_cycles(g: &mut Subgraph) {
    let sccs = tarjan_sccs(&g.succs);
    let needs = sccs
        .iter()
        .any(|scc| scc.len() > 1 || g.succs[scc[0]].iter().any(|&(t, _)| t == scc[0]));
    if !needs {
        g.preds = compute_preds(&g.nodes, &g.succs);
        return;
    }
    // Map old node → new node.
    let mut repr = vec![0usize; g.nodes.len()];
    let mut new_nodes: Vec<Node> = Vec::new();
    for scc in &sccs {
        let cyclic = scc.len() > 1 || g.succs[scc[0]].iter().any(|&(t, _)| t == scc[0]);
        if cyclic {
            let members: Vec<Node> = scc.iter().map(|&n| g.nodes[n].clone()).collect();
            let id = new_nodes.len();
            new_nodes.push(Node::Condensed(members));
            for &n in scc {
                repr[n] = id;
            }
        } else {
            let id = new_nodes.len();
            new_nodes.push(g.nodes[scc[0]].clone());
            repr[scc[0]] = id;
        }
    }
    let mut new_succs: Vec<Vec<(NodeId, EdgeKind)>> = vec![Vec::new(); new_nodes.len()];
    for (n, ss) in g.succs.iter().enumerate() {
        for &(t, k) in ss {
            let (a, b) = (repr[n], repr[t]);
            if a != b && !new_succs[a].iter().any(|&(x, _)| x == b) {
                new_succs[a].push((b, k));
            }
        }
    }
    g.entry = repr[g.entry];
    g.exit = repr[g.exit];
    g.nodes = new_nodes;
    g.succs = new_succs;
    g.preds = compute_preds(&g.nodes, &g.succs);
}

/// Tarjan's SCC algorithm (iterative), returning components in reverse
/// topological order of the condensation.
fn tarjan_sccs(succs: &[Vec<(NodeId, EdgeKind)>]) -> Vec<Vec<NodeId>> {
    let n = succs.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;

    // Iterative DFS with explicit frames.
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < succs[v].len() {
                let (w, _) = succs[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
            }
        }
    }
    sccs
}

/// Kahn topological order starting from the entry; `None` if cyclic.
fn topo_order(g: &Subgraph) -> Option<Vec<NodeId>> {
    let n = g.nodes.len();
    let mut indeg = vec![0usize; n];
    for ss in &g.succs {
        for &(t, _) in ss {
            indeg[t] += 1;
        }
    }
    // Seed with all zero-indegree nodes (entry plus any unreachable ones so
    // counts balance).
    let mut queue: Vec<NodeId> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        out.push(v);
        for &(t, _) in &g.succs[v] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    if out.len() == n {
        // Put entry first for readability.
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::parse_program;

    fn hsg_of(src: &str) -> Hsg {
        build_hsg(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn straight_line() {
        let h = hsg_of("      PROGRAM t\n      x = 1\n      y = 2\n      END\n");
        let g = h.routine("t").unwrap();
        // entry, exit, one block
        assert_eq!(g.len(), 3);
        let block = g
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Block(s) if !s.is_empty() => Some(s),
                _ => None,
            })
            .unwrap();
        assert_eq!(block.len(), 2);
    }

    #[test]
    fn if_branches() {
        let h = hsg_of(
            "
      PROGRAM t
      IF (p) THEN
        x = 1
      ELSE
        y = 2
      ENDIF
      z = 3
      END
",
        );
        let g = h.routine("t").unwrap();
        let cond = g
            .nodes
            .iter()
            .position(|n| matches!(n, Node::IfCond(_)))
            .unwrap();
        let (t, f) = g.branch_succs(cond);
        assert!(t.is_some() && f.is_some());
        assert_ne!(t, f);
    }

    #[test]
    fn logical_if_false_edge_joins() {
        let h = hsg_of("      PROGRAM t\n      IF (x .GT. 1.0) RETURN\n      y = 2\n      END\n");
        let g = h.routine("t").unwrap();
        let cond = g
            .nodes
            .iter()
            .position(|n| matches!(n, Node::IfCond(_)))
            .unwrap();
        let (t, f) = g.branch_succs(cond);
        // True edge goes to exit (RETURN), false edge continues.
        assert_eq!(t, Some(g.exit));
        assert!(f.is_some());
        assert_ne!(f, Some(g.exit));
    }

    #[test]
    fn nested_loops_hierarchical() {
        let h = hsg_of(
            "
      PROGRAM t
      DO i = 1, n
        DO j = 1, m
          a(i, j) = 0
        ENDDO
      ENDDO
      END
",
        );
        let g = h.routine("t").unwrap();
        let outer = g
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Loop { var, body, .. } if var == "i" => Some(*body),
                _ => None,
            })
            .unwrap();
        let outer_body = &h.subgraphs[outer];
        let inner = outer_body
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Loop { var, body, .. } if var == "j" => Some(*body),
                _ => None,
            })
            .unwrap();
        assert!(h.subgraphs[inner]
            .nodes
            .iter()
            .any(|n| matches!(n, Node::Block(s) if !s.is_empty())));
    }

    #[test]
    fn call_nodes() {
        let h = hsg_of(
            "
      PROGRAM t
      call s(a)
      END
      SUBROUTINE s(b)
      RETURN
      END
",
        );
        let g = h.routine("t").unwrap();
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n, Node::Call { name, .. } if name == "s")));
        assert!(h.routine("s").is_some());
    }

    #[test]
    fn forward_goto() {
        let h = hsg_of(
            "
      PROGRAM t
      IF (kc .NE. 0) goto 2
      x = 1
2     y = 2
      END
",
        );
        let g = h.routine("t").unwrap();
        // The IfCond's true edge must reach the anchor for label 2.
        let cond = g
            .nodes
            .iter()
            .position(|n| matches!(n, Node::IfCond(_)))
            .unwrap();
        let (t, _) = g.branch_succs(cond);
        assert!(t.is_some());
        assert!(g.topo.len() == g.len());
        assert!(!g.premature_exit);
    }

    #[test]
    fn backward_goto_condensed() {
        let h = hsg_of(
            "
      PROGRAM t
10    x = x + 1
      IF (x .LT. 10) goto 10
      y = 2
      END
",
        );
        let g = h.routine("t").unwrap();
        assert!(g.nodes.iter().any(|n| matches!(n, Node::Condensed(_))));
        // still a DAG
        assert_eq!(g.topo.len(), g.len());
    }

    #[test]
    fn premature_loop_exit_flagged() {
        let h = hsg_of(
            "
      PROGRAM t
      DO i = 1, n
        IF (a(i) .GT. 0.0) goto 99
        b(i) = 1
      ENDDO
99    x = 1
      END
",
        );
        let g = h.routine("t").unwrap();
        let body = g
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Loop { body, .. } => Some(*body),
                _ => None,
            })
            .unwrap();
        assert!(h.subgraphs[body].premature_exit);
    }

    #[test]
    fn goto_inside_loop_to_labeled_enddo() {
        // Fig 1(a) pattern: not a premature exit — label resolves inside.
        let h = hsg_of(
            "
      PROGRAM t
      DO k = 2, 5
        IF (b(k+4) .GT. cut2) goto 1
        a(k+4) = 0
1     ENDDO
      END
",
        );
        let g = h.routine("t").unwrap();
        let body = g
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Loop { body, .. } => Some(*body),
                _ => None,
            })
            .unwrap();
        let bg = &h.subgraphs[body];
        assert!(!bg.premature_exit);
        assert_eq!(bg.topo.len(), bg.len());
        // The IfCond true edge jumps to the label anchor.
        let cond = bg
            .nodes
            .iter()
            .position(|n| matches!(n, Node::IfCond(_)))
            .unwrap();
        let (t, f) = bg.branch_succs(cond);
        assert!(t.is_some() && f.is_some());
    }

    #[test]
    fn undefined_label_errors() {
        let r = parse_program("      PROGRAM t\n      goto 42\n      END\n").unwrap();
        assert!(build_hsg(&r).is_err());
    }

    #[test]
    fn duplicate_label_errors() {
        let r = parse_program("      PROGRAM t\n1     x = 1\n1     y = 2\n      END\n").unwrap();
        assert!(build_hsg(&r).is_err());
    }

    #[test]
    fn topo_starts_reasonably() {
        let h = hsg_of("      PROGRAM t\n      x = 1\n      END\n");
        let g = h.routine("t").unwrap();
        // topo contains all nodes exactly once
        let mut seen = vec![false; g.len()];
        for &n in &g.topo {
            assert!(!seen[n]);
            seen[n] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn condensed_cycle_with_branch_inside() {
        let h = hsg_of(
            "
      PROGRAM t
      INTEGER k
      REAL a(100)
      k = 1
5     IF (a(k) .GT. 0.0) THEN
        a(k) = 0.0
      ENDIF
      k = k + 1
      IF (k .LE. 100) goto 5
      END
",
        );
        let g = h.routine("t").unwrap();
        let condensed = g
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Condensed(m) => Some(m),
                _ => None,
            })
            .expect("cycle condensed");
        // the condensed node retains its member structure (incl. the IF)
        assert!(condensed.iter().any(|m| matches!(m, Node::IfCond(_))));
        assert_eq!(g.topo.len(), g.len());
    }

    #[test]
    fn premature_exit_from_inner_loop_only_flags_inner() {
        let h = hsg_of(
            "
      PROGRAM t
      REAL a(10, 10)
      INTEGER i, j
      DO i = 1, 10
        DO j = 1, 10
          IF (a(j, i) .GT. 0.0) goto 7
          a(j, i) = 1.0
        ENDDO
7       a(1, i) = 2.0
      ENDDO
      END
",
        );
        let g = h.routine("t").unwrap();
        let outer_body = g
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Loop { var, body, .. } if var == "i" => Some(*body),
                _ => None,
            })
            .unwrap();
        let ob = &h.subgraphs[outer_body];
        assert!(!ob.premature_exit, "outer body resolves label 7 internally");
        let inner_body = ob
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Loop { var, body, .. } if var == "j" => Some(*body),
                _ => None,
            })
            .unwrap();
        assert!(h.subgraphs[inner_body].premature_exit);
    }

    #[test]
    fn return_inside_branch() {
        let h = hsg_of(
            "
      SUBROUTINE s(x)
      REAL x
      IF (x .GT. 0.0) THEN
        x = 1.0
        RETURN
      ENDIF
      x = 2.0
      END
",
        );
        let g = h.routine("s").unwrap();
        // the RETURN path must reach exit; exit must have >= 2 preds
        assert!(g.preds[g.exit].len() >= 2);
        assert_eq!(g.topo.len(), g.len());
    }

    #[test]
    fn dump_contains_structure() {
        let h = hsg_of(
            "
      PROGRAM t
      DO i = 1, n
        a(i) = 0
      ENDDO
      call s()
      END
      SUBROUTINE s()
      RETURN
      END
",
        );
        let d = h.dump_routine("t");
        assert!(d.contains("do i = 1, n"));
        assert!(d.contains("call s"));
    }
}
