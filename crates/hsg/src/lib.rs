//! The Hierarchical Supergraph (HSG) of §4.
//!
//! The HSG composes the flow subgraphs of all routines in a program. It has
//! three kinds of compound-aware nodes beyond plain basic blocks:
//!
//! * **call nodes** — one per `CALL` statement, linked to the callee's flow
//!   subgraph (which is never duplicated across call sites);
//! * **loop nodes** — one per `DO` loop, with an *attached* flow subgraph
//!   for the loop body whose back edge is deliberately deleted;
//! * **IF-condition nodes** — each IF condition forms its own node, with
//!   `True`/`False` labelled out-edges, so guards can be attached during
//!   summary propagation.
//!
//! Cycles caused by backward `GOTO`s are condensed into [`Node::Condensed`]
//! nodes (§5.4), and premature exits out of DO loops are flagged, so every
//! subgraph is a DAG with a topological order, and the whole structure is a
//! hierarchical DAG as the paper requires.

#![warn(missing_docs)]

mod build;
mod graph;

pub use build::{build_hsg, HsgError};
pub use graph::{EdgeKind, Hsg, Node, NodeId, Subgraph, SubgraphId};
