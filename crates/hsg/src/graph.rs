//! HSG data structures.

use fortran::{Expr, Stmt};
use std::fmt;

/// Index of a node within its subgraph.
pub type NodeId = usize;
/// Index of a subgraph within the HSG arena.
pub type SubgraphId = usize;

/// Edge labels. `True`/`False` originate from IF-condition nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Ordinary fall-through / jump edge.
    Seq,
    /// Taken when the condition holds.
    True,
    /// Taken when the condition fails.
    False,
}

/// HSG node kinds.
#[derive(Clone, Debug)]
pub enum Node {
    /// Subgraph entry (unique, no statements).
    Entry,
    /// Subgraph exit (unique).
    Exit,
    /// A basic block of straight-line statements (assignments and
    /// no-ops only).
    Block(Vec<Stmt>),
    /// An IF condition. Out-edges carry `True`/`False`.
    IfCond(Expr),
    /// A DO-loop node with its attached body subgraph.
    Loop {
        /// Loop index variable.
        var: String,
        /// 1-based source line of the DO statement (0 for synthetic
        /// loops), carried so verdicts can name the exact loop.
        line: u32,
        /// Lower bound expression.
        lo: Expr,
        /// Upper bound expression.
        hi: Expr,
        /// Step expression (`None` = 1).
        step: Option<Expr>,
        /// The attached body subgraph.
        body: SubgraphId,
    },
    /// A CALL statement.
    Call {
        /// Callee name.
        name: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// A condensed goto-cycle: the member nodes, kept for conservative
    /// summarization (§5.4).
    Condensed(Vec<Node>),
}

impl Node {
    /// Short display tag used by dumps.
    pub fn tag(&self) -> &'static str {
        match self {
            Node::Entry => "entry",
            Node::Exit => "exit",
            Node::Block(_) => "block",
            Node::IfCond(_) => "if",
            Node::Loop { .. } => "loop",
            Node::Call { .. } => "call",
            Node::Condensed(_) => "condensed",
        }
    }
}

/// One flow subgraph (a routine body or a DO-loop body). A DAG after
/// condensation; `topo` is a topological order from entry to exit.
#[derive(Clone, Debug, Default)]
pub struct Subgraph {
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<Node>,
    /// Successor lists with edge kinds.
    pub succs: Vec<Vec<(NodeId, EdgeKind)>>,
    /// Predecessor lists.
    pub preds: Vec<Vec<NodeId>>,
    /// Entry node id.
    pub entry: NodeId,
    /// Exit node id.
    pub exit: NodeId,
    /// Topological order (entry first). Unreachable nodes are omitted.
    pub topo: Vec<NodeId>,
    /// `true` iff a GOTO left this subgraph prematurely (multi-exit DO).
    pub premature_exit: bool,
}

impl Subgraph {
    /// Successors of `n`.
    pub fn succs_of(&self, n: NodeId) -> &[(NodeId, EdgeKind)] {
        &self.succs[n]
    }

    /// The `True` and `False` successors of an IF-condition node.
    pub fn branch_succs(&self, n: NodeId) -> (Option<NodeId>, Option<NodeId>) {
        let mut t = None;
        let mut f = None;
        for &(s, k) in &self.succs[n] {
            match k {
                EdgeKind::True => t = Some(s),
                EdgeKind::False => f = Some(s),
                EdgeKind::Seq => {}
            }
        }
        (t, f)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff empty (never for built graphs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// The hierarchical supergraph of a whole program.
#[derive(Clone, Debug, Default)]
pub struct Hsg {
    /// All subgraphs (routine bodies and loop bodies).
    pub subgraphs: Vec<Subgraph>,
    /// Routine name → its flow subgraph.
    pub routines: std::collections::BTreeMap<String, SubgraphId>,
}

impl Hsg {
    /// The flow subgraph of a routine.
    pub fn routine(&self, name: &str) -> Option<&Subgraph> {
        self.routines.get(name).map(|&id| &self.subgraphs[id])
    }

    /// Total node count across all subgraphs (a size statistic).
    pub fn total_nodes(&self) -> usize {
        self.subgraphs.iter().map(Subgraph::len).sum()
    }

    /// Renders an indented textual dump of a routine's hierarchy (used by
    /// the Fig. 3 example and tests).
    pub fn dump_routine(&self, name: &str) -> String {
        let mut out = String::new();
        if let Some(&sg) = self.routines.get(name) {
            out.push_str(&format!("routine {name}:\n"));
            self.dump_subgraph(sg, 1, &mut out);
        }
        out
    }

    fn dump_subgraph(&self, sg: SubgraphId, indent: usize, out: &mut String) {
        let g = &self.subgraphs[sg];
        let pad = "  ".repeat(indent);
        for &n in &g.topo {
            let node = &g.nodes[n];
            let succ: Vec<String> = g.succs[n]
                .iter()
                .map(|(s, k)| match k {
                    EdgeKind::Seq => format!("{s}"),
                    EdgeKind::True => format!("{s}:T"),
                    EdgeKind::False => format!("{s}:F"),
                })
                .collect();
            match node {
                Node::IfCond(c) => {
                    out.push_str(&format!("{pad}{n} if ({c}) -> [{}]\n", succ.join(", ")));
                }
                Node::Loop {
                    var, lo, hi, body, ..
                } => {
                    out.push_str(&format!(
                        "{pad}{n} do {var} = {lo}, {hi} -> [{}]\n",
                        succ.join(", ")
                    ));
                    self.dump_subgraph(*body, indent + 1, out);
                }
                Node::Call { name, .. } => {
                    out.push_str(&format!("{pad}{n} call {name} -> [{}]\n", succ.join(", ")));
                }
                Node::Block(stmts) => {
                    out.push_str(&format!(
                        "{pad}{n} block({} stmts) -> [{}]\n",
                        stmts.len(),
                        succ.join(", ")
                    ));
                }
                other => {
                    out.push_str(&format!(
                        "{pad}{n} {} -> [{}]\n",
                        other.tag(),
                        succ.join(", ")
                    ));
                }
            }
        }
    }
}

impl fmt::Display for Hsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for name in self.routines.keys() {
            f.write_str(&self.dump_routine(name))?;
        }
        Ok(())
    }
}
