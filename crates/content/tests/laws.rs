//! Property tests for the content lattice: join is a semilattice
//! (commutative, associative, idempotent, Bot identity, Top absorbing),
//! the partial order is consistent with join, widening chains terminate,
//! and ⊤ never decides a query.

use content::Content;
use proptest::prelude::*;
use vrange::{Interval, ValueRange};

fn arb_range() -> impl Strategy<Value = ValueRange> {
    prop_oneof![
        (-100i64..100).prop_map(ValueRange::constant),
        (-100i64..100, 0i64..200)
            .prop_map(|(lo, w)| ValueRange::of_interval(Interval::new(Some(lo), Some(lo + w)))),
        (-100i64..100).prop_map(|lo| ValueRange::of_interval(Interval::new(Some(lo), None))),
        (-100i64..100).prop_map(|hi| ValueRange::of_interval(Interval::new(None, Some(hi)))),
    ]
}

fn arb_content() -> impl Strategy<Value = Content> {
    prop_oneof![
        Just(Content::Bot),
        Just(Content::Uninit),
        Just(Content::Defined),
        Just(Content::Top),
        arb_range().prop_map(Content::defined_const),
    ]
}

proptest! {
    #[test]
    fn join_commutative(a in arb_content(), b in arb_content()) {
        prop_assert_eq!(a.join(&b), b.join(&a));
    }

    #[test]
    fn join_idempotent(a in arb_content()) {
        prop_assert_eq!(a.join(&a), a);
    }

    #[test]
    fn join_associative(a in arb_content(), b in arb_content(), c in arb_content()) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn bot_is_identity_top_absorbs(a in arb_content()) {
        prop_assert_eq!(Content::Bot.join(&a), a.clone());
        prop_assert_eq!(Content::Top.join(&a), Content::Top);
    }

    #[test]
    fn le_consistent_with_join(a in arb_content(), b in arb_content()) {
        let j = a.join(&b);
        prop_assert!(a.le(&j), "{a} not ≤ {a} ⊔ {b} = {j}");
        prop_assert!(b.le(&j), "{b} not ≤ {a} ⊔ {b} = {j}");
    }

    #[test]
    fn join_is_upper_bound_of_widen(a in arb_content(), b in arb_content()) {
        // Widening over-approximates the join.
        let j = a.join(&b);
        let w = a.widen(&b);
        prop_assert!(j.le(&w), "join {j} not ≤ widen {w}");
    }

    /// Any widening chain w := w.widen(x) stabilizes after a bounded
    /// number of strict increases: the non-value levels have height 4
    /// and the interval component widens each bound at most through the
    /// threshold ladder once.
    #[test]
    fn widening_chains_terminate(xs in proptest::collection::vec(arb_content(), 1..40)) {
        let mut w = Content::Bot;
        let mut increases = 0;
        for x in &xs {
            let next = w.widen(x);
            if next != w {
                increases += 1;
            }
            // Monotone: the chain never goes down.
            prop_assert!(w.le(&next), "widen went down: {w} -> {next}");
            w = next;
        }
        let bound = 4 + 2 * vrange::WIDENING_THRESHOLDS.len();
        prop_assert!(
            increases <= bound,
            "{increases} strict increases (> {bound}) — widening may not terminate"
        );
    }

    /// ⊤ decides nothing, and joining Uninit with any defined value
    /// degrades to ⊤ (it must not claim either side).
    #[test]
    fn top_decides_nothing(a in arb_content()) {
        prop_assert!(!Content::Top.proves_defined());
        prop_assert!(!Content::Top.proves_uninit());
        if a.proves_defined() {
            let j = Content::Uninit.join(&a);
            prop_assert!(!j.proves_defined(), "{j} claims defined");
            prop_assert!(!j.proves_uninit(), "{j} claims uninit");
        }
    }
}
