//! The abstract content lattice.

use vrange::ValueRange;

/// What an array region is known to hold at a program point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Content {
    /// Unreachable / no information yet (identity of [`Content::join`]).
    Bot,
    /// Definitely never written.
    #[default]
    Uninit,
    /// Written with a value the analysis could not bound.
    Defined,
    /// Written, and every stored value lies in the given range.
    DefinedConst(ValueRange),
    /// Anything — the analysis gave up (budget exhaustion, unmodelled
    /// statement). ⊤ decides nothing: see [`Content::proves_defined`].
    Top,
}

impl Content {
    /// Normalizing constructor for the value level: a ⊤ range carries no
    /// information beyond "defined".
    pub fn defined_const(r: ValueRange) -> Content {
        if r.is_top() || r.is_empty() {
            Content::Defined
        } else {
            Content::DefinedConst(r)
        }
    }

    /// Least upper bound.
    pub fn join(&self, other: &Content) -> Content {
        use Content::*;
        match (self, other) {
            (Bot, x) | (x, Bot) => x.clone(),
            (Top, _) | (_, Top) => Top,
            (Uninit, Uninit) => Uninit,
            // A maybe-written/maybe-not region holds anything.
            (Uninit, _) | (_, Uninit) => Top,
            (DefinedConst(a), DefinedConst(b)) => Content::defined_const(a.join(b)),
            (Defined, _) | (_, Defined) => Defined,
        }
    }

    /// Widening: like join, but the value component uses the vrange
    /// widening ladder so ascending chains stabilize. All other levels
    /// of the lattice have finite height, so [`Content::widen`] chains
    /// terminate unconditionally.
    pub fn widen(&self, next: &Content) -> Content {
        use Content::*;
        match (self, next) {
            (DefinedConst(a), DefinedConst(b)) => Content::defined_const(a.widen(b)),
            _ => self.join(next),
        }
    }

    /// Partial order: `self ⊑ other`.
    pub fn le(&self, other: &Content) -> bool {
        self.join(other) == *other
    }

    /// `true` only when every execution reaching this point has written
    /// the region. ⊤ and `Uninit` return `false`: a degraded map can
    /// never be used to claim initialization.
    pub fn proves_defined(&self) -> bool {
        matches!(self, Content::Defined | Content::DefinedConst(_))
    }

    /// `true` only when the region was certainly never written. ⊤
    /// returns `false`: degradation decides nothing.
    pub fn proves_uninit(&self) -> bool {
        matches!(self, Content::Uninit)
    }

    /// The proved value range, when one is known.
    pub fn value(&self) -> Option<&ValueRange> {
        match self {
            Content::DefinedConst(r) => Some(r),
            _ => None,
        }
    }
}

impl std::fmt::Display for Content {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Content::Bot => write!(f, "bot"),
            Content::Uninit => write!(f, "uninit"),
            Content::Defined => write!(f, "defined"),
            Content::DefinedConst(r) => write!(f, "defined{r}"),
            Content::Top => write!(f, "top"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_identity_and_top() {
        let c = Content::defined_const(ValueRange::constant(3));
        assert_eq!(Content::Bot.join(&c), c);
        assert_eq!(Content::Top.join(&c), Content::Top);
    }

    #[test]
    fn uninit_meets_defined_is_top() {
        assert_eq!(Content::Uninit.join(&Content::Defined), Content::Top);
    }

    #[test]
    fn const_joins_value_ranges() {
        let a = Content::defined_const(ValueRange::constant(1));
        let b = Content::defined_const(ValueRange::constant(5));
        let j = a.join(&b);
        assert!(j.proves_defined());
        assert!(j.value().is_some());
    }

    #[test]
    fn top_decides_nothing() {
        assert!(!Content::Top.proves_defined());
        assert!(!Content::Top.proves_uninit());
        assert!(Content::Top.value().is_none());
    }
}
