//! Routine-level initialization lints (panolint P010–P012).
//!
//! A forward walk over a routine body maintaining, per array, the
//! three-zone region map described in the crate docs (must-defined /
//! may-defined / untouched) plus the joined value component, and a list
//! of *pending* stores whose fate (read vs. overwritten) decides the
//! redundant-store lints.
//!
//! Everything is deliberately conservative in the direction that
//! *suppresses* lints: a GOTO anywhere refuses the whole routine, a
//! CALL havocs the may-defined zone and marks every pending store as
//! read, budget exhaustion stops the walk. A lint only fires from facts
//! proved on the sound side of the approximation.

use crate::conv::{region_of, to_sym, Ctx};
use crate::lattice::Content;
use fortran::{Expr as FExpr, LValue, Routine, Stmt, StmtKind, SymbolTable};
use gar::{expand_list, Gar, GarList, LoopCtx};
use pred::Pred;
use region::prove_le;
use std::collections::{BTreeMap, BTreeSet};
use vrange::{Budget, ValueRange};

/// Lint kinds produced by the content pass (panolint code in parens).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LintKind {
    /// An element of a local array is read on a path where no definition
    /// reaches (P010).
    ReadBeforeWrite,
    /// A store is provably overwritten before any read (P011).
    RedundantStore,
    /// A whole initialization loop whose effect is overwritten before
    /// any read (P012).
    DeadInitializationLoop,
}

/// One content lint.
#[derive(Clone, Debug)]
pub struct Lint {
    /// What fired.
    pub kind: LintKind,
    /// 1-based source line the lint anchors to (the read for P010, the
    /// dead store for P011, the DO statement for P012).
    pub line: u32,
    /// Human-readable detail.
    pub message: String,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum PendKind {
    Plain,
    InitLoop,
}

/// A store whose redundancy is still undecided.
struct Pending {
    line: u32,
    array: String,
    region: GarList,
    read: bool,
    kind: PendKind,
    desc: String,
}

const PENDING_CAP: usize = 64;

/// Runs the content lints over one routine. Returns an empty list (not
/// an error) whenever the routine uses control flow the pass refuses.
pub fn lint_routine(r: &Routine, table: &SymbolTable, budget: &Budget) -> Vec<Lint> {
    let _span = trace::span("content:lint");
    if has_goto(&r.body) {
        return Vec::new();
    }
    let mut locals: BTreeSet<String> = r.arrays.iter().map(|(n, _)| n.clone()).collect();
    for p in &r.params {
        locals.remove(p);
    }
    for (_, names) in &r.commons {
        for n in names {
            locals.remove(n);
        }
    }
    for group in &r.equivalences {
        for (n, _) in group {
            locals.remove(n);
        }
    }
    let mut w = LintWalk {
        table,
        budget,
        locals,
        loop_vars: BTreeSet::new(),
        consts: BTreeMap::new(),
        may: BTreeMap::new(),
        val: BTreeMap::new(),
        havoc: false,
        stopped: false,
        pending: Vec::new(),
        seen: BTreeSet::new(),
        lints: Vec::new(),
    };
    w.walk(&r.body, 0);
    trace::add("content:lints", w.lints.len() as u64);
    w.lints
}

fn has_goto(stmts: &[Stmt]) -> bool {
    stmts.iter().any(|s| match &s.kind {
        StmtKind::Goto(_) => true,
        StmtKind::If {
            then_body,
            else_body,
            ..
        } => has_goto(then_body) || has_goto(else_body),
        StmtKind::LogicalIf(_, inner) => has_goto(std::slice::from_ref(inner)),
        StmtKind::Do { body, .. } => has_goto(body),
        _ => false,
    })
}

struct LintWalk<'a> {
    table: &'a SymbolTable,
    budget: &'a Budget,
    locals: BTreeSet<String>,
    loop_vars: BTreeSet<String>,
    consts: BTreeMap<String, i64>,
    /// May-defined regions per array (over-approximation).
    may: BTreeMap<String, GarList>,
    /// Joined value component per array.
    val: BTreeMap<String, Content>,
    /// A CALL happened: anything may be defined from here on.
    havoc: bool,
    stopped: bool,
    pending: Vec<Pending>,
    seen: BTreeSet<(u32, String)>,
    lints: Vec<Lint>,
}

impl LintWalk<'_> {
    fn ctx(&self) -> Ctx<'_> {
        Ctx {
            table: self.table,
            loop_vars: &self.loop_vars,
            consts: &self.consts,
        }
    }

    fn step(&mut self) -> bool {
        if !self.budget.step() {
            self.stopped = true;
        }
        !self.stopped
    }

    /// `depth` counts enclosing conditionals *and* loops: pending
    /// bookkeeping only happens on the unconditional top level.
    fn walk(&mut self, stmts: &[Stmt], depth: usize) {
        for s in stmts {
            if !self.step() {
                return;
            }
            match &s.kind {
                StmtKind::Assign(lv, rhs) => {
                    self.reads_of(rhs, s.line);
                    match lv {
                        LValue::Element(name, subs) => {
                            for sub in subs {
                                self.reads_of(sub, s.line);
                            }
                            if self.table.is_array(name) {
                                let name = name.clone();
                                self.write(&name, subs, rhs, s.line, depth);
                            }
                        }
                        LValue::Var(name) => {
                            let c = if depth == 0 {
                                to_sym(rhs, &self.ctx()).and_then(|e| e.as_const())
                            } else {
                                None
                            };
                            match c {
                                Some(v) => {
                                    self.consts.insert(name.clone(), v);
                                }
                                None => {
                                    self.consts.remove(name);
                                }
                            }
                        }
                    }
                }
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.reads_of(cond, s.line);
                    self.walk(then_body, depth + 1);
                    self.walk(else_body, depth + 1);
                }
                StmtKind::LogicalIf(cond, inner) => {
                    self.reads_of(cond, s.line);
                    self.walk(std::slice::from_ref(inner), depth + 1);
                }
                StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    self.reads_of(lo, s.line);
                    self.reads_of(hi, s.line);
                    if let Some(st) = step {
                        self.reads_of(st, s.line);
                    }
                    self.walk_do(s.line, var, lo, hi, step.as_ref(), body, depth);
                }
                StmtKind::Call(_, args) => {
                    for a in args {
                        self.reads_of(a, s.line);
                    }
                    // The callee may read or define anything.
                    self.havoc = true;
                    for p in &mut self.pending {
                        p.read = true;
                    }
                }
                StmtKind::Return | StmtKind::Stop => {
                    if depth == 0 {
                        // Top-level exit: nothing below executes.
                        self.stopped = true;
                        return;
                    }
                    // A path may leave before any overwrite happens.
                    for p in &mut self.pending {
                        p.read = true;
                    }
                }
                StmtKind::Goto(_) => unreachable!("goto routines are refused up front"),
                StmtKind::Continue => {}
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_do(
        &mut self,
        line: u32,
        var: &str,
        lo: &FExpr,
        hi: &FExpr,
        step: Option<&FExpr>,
        body: &[Stmt],
        depth: usize,
    ) {
        // Scalars reassigned inside lose their tracked constants.
        let mut assigned = BTreeSet::new();
        collect_assigned(body, &mut assigned);
        for n in &assigned {
            self.consts.remove(n);
        }
        self.consts.remove(var);
        let unit = match step {
            None => true,
            Some(s) => to_sym(s, &self.ctx()).and_then(|e| e.as_const()) == Some(1),
        };
        let lo_sym = to_sym(lo, &self.ctx());
        let hi_sym = to_sym(hi, &self.ctx());
        let trip = match (&lo_sym, &hi_sym) {
            (Some(l), Some(h)) => prove_le(&Pred::tru(), l, h),
            _ => false,
        };
        let was = self.loop_vars.insert(var.to_string());

        // Dead-initialization-loop candidate: top-level, provably
        // executing unit loop whose body only stores array elements with
        // array-free right-hand sides.
        let init = depth == 0 && unit && trip && init_stores(body);
        if init {
            if let (Some(l), Some(h)) = (lo_sym.clone(), hi_sym.clone()) {
                let lctx = LoopCtx::new(var, l, h);
                let mut per: BTreeMap<String, (GarList, Content)> = BTreeMap::new();
                let mut all_exact = true;
                for s in body {
                    if let StmtKind::Assign(LValue::Element(name, subs), rhs) = &s.kind {
                        if !self.step() {
                            break;
                        }
                        let region = region_of(subs, &self.ctx());
                        let g = GarList::single(Gar::new(Pred::tru(), region));
                        let expanded = expand_list(&g, &lctx);
                        if !expanded.is_exact() {
                            all_exact = false;
                        }
                        let v = store_value(rhs, &self.ctx());
                        let e = per
                            .entry(name.clone())
                            .or_insert_with(|| (GarList::empty(), Content::Bot));
                        e.0 = e.0.union(&expanded);
                        e.1 = e.1.join(&v);
                    }
                }
                for (name, (region, v)) in per {
                    self.store_region(&name, region.clone(), v.clone());
                    if all_exact && !self.stopped {
                        let desc = match v.value().and_then(ValueRange::as_const) {
                            Some(c) => format!("initializes {name} to {c}"),
                            None => format!("initializes {name}"),
                        };
                        self.overwrite_pendings(&name, &region);
                        self.push_pending(Pending {
                            line,
                            array: name,
                            region,
                            read: false,
                            kind: PendKind::InitLoop,
                            desc,
                        });
                    }
                }
                if !was {
                    self.loop_vars.remove(var);
                }
                return;
            }
        }

        // General loop: fold the loop's whole may-effect in first so
        // loop-carried reads (a(k-1) after a(k) was written in an
        // earlier iteration) never look uninitialized.
        let mut writes: Vec<(String, Vec<FExpr>)> = Vec::new();
        collect_writes(body, self.table, &mut writes);
        let lctx = match (&lo_sym, &hi_sym) {
            (Some(l), Some(h)) if unit => Some(LoopCtx::new(var, l.clone(), h.clone())),
            _ => None,
        };
        for (name, subs) in writes {
            if !self.step() {
                break;
            }
            let region = region_of(&subs, &self.ctx());
            let g = GarList::single(Gar::new(Pred::tru(), region));
            let expanded = match &lctx {
                Some(c) => expand_list(&g, c),
                None => GarList::single(Gar::unknown(subs.len())),
            };
            self.store_region(&name, expanded.mark_over(), Content::Defined);
        }
        self.walk(body, depth + 1);
        if !was {
            self.loop_vars.remove(var);
        }
    }

    /// Folds a definition into the may map and value component.
    fn store_region(&mut self, name: &str, region: GarList, v: Content) {
        let e = self
            .may
            .entry(name.to_string())
            .or_insert_with(GarList::empty);
        *e = e.union(&region);
        let cur = self.val.entry(name.to_string()).or_insert(Content::Bot);
        *cur = cur.join(&v);
    }

    fn push_pending(&mut self, p: Pending) {
        if self.pending.len() < PENDING_CAP {
            self.pending.push(p);
        }
    }

    /// A new must-store of `region` into `name`: every unread pending
    /// store it fully covers was dead.
    fn overwrite_pendings(&mut self, name: &str, region: &GarList) {
        let mut fired = Vec::new();
        self.pending.retain(|p| {
            if p.array == name && !p.read && p.region.subtract(region).definitely_empty() {
                fired.push((p.kind, p.line, p.desc.clone(), p.region.clone()));
                false
            } else {
                true
            }
        });
        for (kind, line, desc, reg) in fired {
            match kind {
                PendKind::Plain => self.emit(
                    LintKind::RedundantStore,
                    line,
                    format!("store to {name}[{reg}] is overwritten before it is ever read"),
                ),
                PendKind::InitLoop => self.emit(
                    LintKind::DeadInitializationLoop,
                    line,
                    format!("{desc}, but every element is overwritten before any read"),
                ),
            }
        }
    }

    fn write(&mut self, name: &str, subs: &[FExpr], rhs: &FExpr, line: u32, depth: usize) {
        if !self.step() {
            return;
        }
        let region = region_of(subs, &self.ctx());
        let exact = region.is_exact();
        let v = store_value(rhs, &self.ctx());
        let g = GarList::single(Gar::new(Pred::tru(), region));
        if depth == 0 && exact {
            self.overwrite_pendings(name, &g);
            self.push_pending(Pending {
                line,
                array: name.to_string(),
                region: g.clone(),
                read: false,
                kind: PendKind::Plain,
                desc: String::new(),
            });
            self.store_region(name, g, v);
        } else {
            // Conditional or inexact: may only.
            self.store_region(name, g.mark_over(), v);
        }
    }

    fn reads_of(&mut self, e: &FExpr, line: u32) {
        match e {
            FExpr::Index(name, subs) => {
                for s in subs {
                    self.reads_of(s, line);
                }
                if self.table.is_array(name) {
                    let name = name.clone();
                    let subs = subs.clone();
                    self.read(&name, &subs, line);
                }
            }
            FExpr::Bin(_, a, b) => {
                self.reads_of(a, line);
                self.reads_of(b, line);
            }
            FExpr::Un(_, a) => self.reads_of(a, line),
            _ => {}
        }
    }

    fn read(&mut self, name: &str, subs: &[FExpr], line: u32) {
        if !self.step() {
            return;
        }
        let region = region_of(subs, &self.ctx());
        let g = GarList::single(Gar::new(Pred::tru(), region.clone()));
        // Pending stores the read may observe are no longer dead.
        for p in &mut self.pending {
            if p.array == name && !g.intersect(&p.region).definitely_empty() {
                p.read = true;
            }
        }
        // P010: a local array read with no reaching definition.
        if !self.havoc && self.locals.contains(name) {
            let defined = self
                .may
                .get(name)
                .map(|m| !g.intersect(m).definitely_empty())
                .unwrap_or(false);
            if !defined {
                self.emit(
                    LintKind::ReadBeforeWrite,
                    line,
                    format!("{name}{region} is read before any element is written"),
                );
            }
        }
    }

    fn emit(&mut self, kind: LintKind, line: u32, message: String) {
        let key = (line, message.clone());
        if self.seen.insert(key) {
            self.lints.push(Lint {
                kind,
                line,
                message,
            });
        }
    }
}

fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(lv, _) => {
                out.insert(lv.name().to_string());
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            StmtKind::LogicalIf(_, inner) => collect_assigned(std::slice::from_ref(inner), out),
            StmtKind::Do { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

/// All array-element writes below `stmts` (any nesting).
fn collect_writes(stmts: &[Stmt], table: &SymbolTable, out: &mut Vec<(String, Vec<FExpr>)>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(LValue::Element(name, subs), _) if table.is_array(name) => {
                out.push((name.clone(), subs.clone()));
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_writes(then_body, table, out);
                collect_writes(else_body, table, out);
            }
            StmtKind::LogicalIf(_, inner) => {
                collect_writes(std::slice::from_ref(inner), table, out)
            }
            StmtKind::Do { body, .. } => collect_writes(body, table, out),
            _ => {}
        }
    }
}

/// `true` when every statement is an array-element store whose
/// right-hand side reads no array and calls no function.
fn init_stores(stmts: &[Stmt]) -> bool {
    stmts.iter().all(|s| match &s.kind {
        StmtKind::Assign(LValue::Element(_, subs), rhs) => {
            !has_index(rhs) && subs.iter().all(|e| !has_index(e))
        }
        StmtKind::Continue => true,
        _ => false,
    })
}

fn has_index(e: &FExpr) -> bool {
    match e {
        FExpr::Index(..) => true,
        FExpr::Bin(_, a, b) => has_index(a) || has_index(b),
        FExpr::Un(_, a) => has_index(a),
        _ => false,
    }
}

/// The abstract content a store's right-hand side puts into the array.
fn store_value(rhs: &FExpr, ctx: &Ctx) -> Content {
    match rhs {
        FExpr::Int(v) => Content::defined_const(ValueRange::constant(*v)),
        FExpr::Real(_) | FExpr::Logical(_) => Content::Defined,
        _ => match to_sym(rhs, ctx).and_then(|e| e.as_const()) {
            Some(c) => Content::defined_const(ValueRange::constant(c)),
            None => Content::Defined,
        },
    }
}
