//! Minimal Fortran-expression conversion for the content walkers.
//!
//! The dependence analyzer owns the full entry-relative converter; the
//! content pass only needs affine subscripts over loop indices, literal
//! constants, PARAMETER constants and scalars proved constant by the
//! walk itself. Anything else becomes an Ω dimension (sound: Ω regions
//! are never usable as must-defined evidence).

use fortran::{BinOp, Expr as FExpr, SymbolTable, UnOp};
use region::{Dim, Region};
use std::collections::{BTreeMap, BTreeSet};
use sym::Expr;

/// Conversion context shared by both walkers.
pub struct Ctx<'a> {
    /// Symbol table of the routine being walked.
    pub table: &'a SymbolTable,
    /// Loop indices currently in scope (kept symbolic).
    pub loop_vars: &'a BTreeSet<String>,
    /// Scalars proved to hold an integer constant at this point.
    pub consts: &'a BTreeMap<String, i64>,
}

/// Converts an integer expression; `None` when not representable.
pub fn to_sym(e: &FExpr, ctx: &Ctx) -> Option<Expr> {
    match e {
        FExpr::Int(v) => Some(Expr::from(*v)),
        FExpr::Var(n) => {
            if ctx.loop_vars.contains(n) {
                return Some(Expr::var(n.as_str()));
            }
            if let Some(c) = ctx.table.constant(n) {
                return to_sym(c, ctx);
            }
            ctx.consts.get(n).map(|&c| Expr::from(c))
        }
        FExpr::Bin(op, a, b) => {
            let (a, b) = (to_sym(a, ctx)?, to_sym(b, ctx)?);
            match op {
                BinOp::Add => a.try_add(&b),
                BinOp::Sub => a.try_sub(&b),
                BinOp::Mul => a.try_mul(&b),
                _ => None,
            }
        }
        FExpr::Un(UnOp::Neg, a) => Some(to_sym(a, ctx)?.negate()),
        _ => None,
    }
}

/// The region touched by `name(subs…)`. Unrepresentable subscripts (and
/// products of index variables, §3.1) become Ω dimensions.
pub fn region_of(subs: &[FExpr], ctx: &Ctx) -> Region {
    Region::new(
        subs.iter()
            .map(|s| match to_sym(s, ctx) {
                Some(e) if e.max_vars_per_term() <= 1 => Dim::unit(e),
                _ => Dim::Unknown,
            })
            .collect(),
    )
}

/// Clones `e` with every occurrence of variable `from` rewritten to `to`
/// (both scalar references and subscript uses).
pub fn subst_fvar(e: &FExpr, from: &str, to: &str) -> FExpr {
    match e {
        FExpr::Var(n) if n == from => FExpr::Var(to.to_string()),
        FExpr::Int(_) | FExpr::Real(_) | FExpr::Logical(_) | FExpr::Var(_) => e.clone(),
        FExpr::Index(n, subs) => FExpr::Index(
            n.clone(),
            subs.iter().map(|s| subst_fvar(s, from, to)).collect(),
        ),
        FExpr::Bin(op, a, b) => FExpr::bin(*op, subst_fvar(a, from, to), subst_fvar(b, from, to)),
        FExpr::Un(op, a) => FExpr::Un(*op, Box::new(subst_fvar(a, from, to))),
    }
}

/// Canonical text of a guard or subscript with the given index variable
/// replaced by a placeholder, so templates from loops with different
/// index names compare equal.
pub fn canon(e: &FExpr, idx: Option<&str>) -> String {
    match idx {
        Some(v) => format!("{}", subst_fvar(e, v, "%")),
        None => format!("{e}"),
    }
}

/// Canonical text of a subscript tuple.
pub fn canon_subs(subs: &[FExpr], idx: Option<&str>) -> String {
    let parts: Vec<String> = subs.iter().map(|s| canon(s, idx)).collect();
    parts.join(",")
}

/// Every variable name occurring in `e` (scalars, arrays, call names).
pub fn names_of(e: &FExpr, out: &mut BTreeSet<String>) {
    match e {
        FExpr::Var(n) => {
            out.insert(n.clone());
        }
        FExpr::Index(n, subs) => {
            out.insert(n.clone());
            for s in subs {
                names_of(s, out);
            }
        }
        FExpr::Bin(_, a, b) => {
            names_of(a, out);
            names_of(b, out);
        }
        FExpr::Un(_, a) => names_of(a, out),
        _ => {}
    }
}
