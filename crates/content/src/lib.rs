//! Array-content dataflow analysis (DESIGN.md §4i).
//!
//! The GAR machinery tracks *which* elements a statement touches; this
//! crate layers a forward pass on top that tracks *what the elements
//! hold*: per array, a partial-order map from symbolic regions (the
//! same [`region`]/[`gar`] segment descriptors the dependence analysis
//! uses) to an abstract content lattice
//!
//! ```text
//!        ⊤            anything — analysis gave up
//!      /   \
//!  Uninit  Defined    never written / written with some value
//!            |
//!     DefinedConst(r) written, value proved in range r
//!      \   /
//!        ⊥            unreachable
//! ```
//!
//! with the `vrange` interval×congruence domain as the value component.
//! Joins happen at control merges; loop bodies reach a fixpoint through
//! the widening ladder of [`Content::widen`]; every walk is metered by a
//! [`vrange::Budget`] whose exhaustion degrades the map to ⊤ — degraded
//! facts decide nothing, so exhaustion is never unsound.
//!
//! Two consumers:
//!
//! * [`lint_routine`] — routine-level initialization lints (panolint
//!   P010 read-before-write, P011 redundant-store, P012
//!   dead-initialization-loop).
//! * [`analyze_loop_body`] — per-iteration coverage facts for one DO
//!   body, used by the dataflow analyzer to refute UE₍i₎ entries
//!   (`content_refute` provenance) and to prove full definition for
//!   FIRSTPRIVATE→PRIVATE demotion.

#![warn(missing_docs)]

mod body;
mod conv;
mod lattice;
mod lints;

pub use body::{analyze_loop_body, BodyFacts};
pub use lattice::Content;
pub use lints::{lint_routine, Lint, LintKind};
