//! Per-iteration coverage facts for one DO-loop body.
//!
//! [`analyze_loop_body`] walks the body of a candidate loop once,
//! forward, and answers two questions for the dataflow analyzer:
//!
//! * **coverage** — is every read of array `a` in the body preceded, in
//!   the *same* iteration, by a definition of the elements it reads? If
//!   so the loop's UE₍i₎ entry for `a` is refutable (the backward pass
//!   over-approximates reads whose guards it cannot represent —
//!   array-element guards in particular).
//! * **full definition** — does every iteration definitely write every
//!   declared element of `a`? If so a live-after privatized `a` needs
//!   no FIRSTPRIVATE seeding: the final iteration rewrites the whole
//!   array before LASTPRIVATE copies it out.
//!
//! Three coverage mechanisms, all must-based:
//!
//! 1. plain must-definitions accumulated in statement order (inner-loop
//!    definitions are expanded over the loop range with [`gar::expand`]
//!    when the loop provably executes, and only *after* the loop
//!    closes);
//! 2. same-level guarded writes matched against reads under the
//!    *syntactically identical* guard;
//! 3. per-element guarantees: `IF (g(k)) a(k) = …` inside `DO k` covers
//!    a later `IF (g(j)) … a(j)` inside `DO j` when the guard and
//!    subscript templates agree after index canonicalization, the read
//!    loop's range is contained in the write loop's, and nothing in the
//!    body assigns any variable the guard mentions.
//!
//! The walk *refuses* (decides nothing) on CALL, GOTO, RETURN and STOP
//! anywhere in the body, and degrades to ⊤ when the step budget runs
//! out.

use crate::conv::{canon, canon_subs, names_of, region_of, to_sym, Ctx};
use fortran::{Expr as FExpr, LValue, Stmt, StmtKind, SymbolTable, UnOp};
use gar::{expand_list, Gar, GarList, LoopCtx};
use pred::Pred;
use region::{prove_le, Dim, Region};
use std::collections::{BTreeMap, BTreeSet};
use sym::Expr;
use vrange::Budget;

/// One inner loop on the walk stack.
struct LoopSpec {
    var: String,
    lo: Option<Expr>,
    hi: Option<Expr>,
    /// Unit step (only unit-step inner loops contribute guarantees).
    unit: bool,
}

/// A per-element guarantee from a (possibly guarded) write inside an
/// inner loop: for every index value in `[lo, hi]`, if the guard
/// template holds at that index, the subscript template is defined.
struct ElemG {
    array: String,
    /// Canonical guard text with the loop index replaced by `%`
    /// (empty string = unconditional).
    guard: String,
    /// Canonical subscript-tuple text with the index replaced by `%`.
    subs: String,
    lo: Expr,
    hi: Expr,
}

/// Read/coverage tallies for one array.
#[derive(Default)]
struct ArrFacts {
    reads: usize,
    uncovered: usize,
    details: Vec<String>,
}

/// The result of [`analyze_loop_body`].
pub struct BodyFacts {
    ok: bool,
    degraded: bool,
    arrays: BTreeMap<String, ArrFacts>,
    /// Per-iteration top-level must-defined regions, outer index symbolic.
    must: BTreeMap<String, GarList>,
}

impl BodyFacts {
    /// `Some(detail)` when every read of `array` in the body is covered
    /// by a prior same-iteration definition — i.e. the loop's UE₍i₎
    /// entry for `array` is refuted. `None` when the body had no reads
    /// of the array (nothing to refute), any read was uncovered, or the
    /// walk refused/degraded.
    pub fn covers_reads(&self, array: &str) -> Option<String> {
        if !self.ok || self.degraded {
            return None;
        }
        let f = self.arrays.get(array)?;
        if f.reads == 0 || f.uncovered != 0 {
            return None;
        }
        let mut ds: Vec<&str> = f.details.iter().map(String::as_str).collect();
        ds.dedup();
        Some(format!(
            "{} read{} covered: {}",
            f.reads,
            if f.reads == 1 { "" } else { "s" },
            ds.join("; ")
        ))
    }

    /// `Some(detail)` when every iteration must-writes every declared
    /// element of `array` (`bounds` are the declared per-dimension
    /// constant bounds).
    pub fn fully_defines(&self, array: &str, bounds: &[(i64, i64)]) -> Option<String> {
        if !self.ok || self.degraded || bounds.is_empty() {
            return None;
        }
        let must = self.must.get(array)?;
        let declared = Region::new(
            bounds
                .iter()
                .map(|&(lo, hi)| Dim::contiguous(Expr::from(lo), Expr::from(hi)))
                .collect(),
        );
        let rem = GarList::single(Gar::new(Pred::tru(), declared.clone())).subtract(must);
        if rem.definitely_empty() {
            Some(format!("every iteration writes all of {array}{declared}"))
        } else {
            None
        }
    }

    /// `true` when the walk refused (unmodelled control flow) or ran out
    /// of budget; all queries answer `None` in that case.
    pub fn degraded(&self) -> bool {
        !self.ok || self.degraded
    }

    /// `true` when the walk refused outright on unmodelled control flow
    /// (CALL, GOTO, RETURN or STOP in the body).
    pub fn refused(&self) -> bool {
        !self.ok
    }

    /// `true` when the step budget ran out mid-walk (precision lost to
    /// exhaustion rather than to a refused construct).
    pub fn out_of_budget(&self) -> bool {
        self.degraded
    }
}

/// Analyzes one DO-loop body. `outer_var` is the loop's own index;
/// `enclosing` lists indices of loops surrounding it (kept symbolic).
pub fn analyze_loop_body(
    body: &[Stmt],
    outer_var: &str,
    enclosing: &BTreeSet<String>,
    table: &SymbolTable,
    budget: &Budget,
) -> BodyFacts {
    let _span = trace::span("content:body");
    let mut loop_vars = enclosing.clone();
    loop_vars.insert(outer_var.to_string());
    let mut assigned = BTreeSet::new();
    collect_assigned(body, &mut assigned);
    let mut w = BodyWalk {
        table,
        budget,
        loop_vars,
        consts: BTreeMap::new(),
        assigned,
        ok: true,
        degraded: false,
        must_stack: vec![BTreeMap::new()],
        loop_stack: Vec::new(),
        guard_stack: Vec::new(),
        guarded: BTreeMap::new(),
        elems: Vec::new(),
        arrays: BTreeMap::new(),
    };
    w.walk(body);
    trace::add("content:body_arrays", w.arrays.len() as u64);
    BodyFacts {
        ok: w.ok,
        degraded: w.degraded,
        arrays: w.arrays,
        must: w.must_stack.swap_remove(0),
    }
}

/// Every name assigned anywhere below `stmts` (scalar and array targets
/// plus DO indices) — used to reject guard templates whose free
/// variables are unstable across the body.
fn collect_assigned(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match &s.kind {
            StmtKind::Assign(lv, _) => {
                out.insert(lv.name().to_string());
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            StmtKind::LogicalIf(_, s) => collect_assigned(std::slice::from_ref(s), out),
            StmtKind::Do { var, body, .. } => {
                out.insert(var.clone());
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

struct BodyWalk<'a> {
    table: &'a SymbolTable,
    budget: &'a Budget,
    loop_vars: BTreeSet<String>,
    consts: BTreeMap<String, i64>,
    assigned: BTreeSet<String>,
    ok: bool,
    degraded: bool,
    /// Scoped must-defined maps: one level per open inner loop. Writes
    /// land in the innermost level; a level is expanded over its loop
    /// range and merged down only when the loop closes, so reads inside
    /// the loop never see iterations that have not happened yet.
    must_stack: Vec<BTreeMap<String, GarList>>,
    loop_stack: Vec<LoopSpec>,
    guard_stack: Vec<FExpr>,
    /// Same-level guarded must-writes: canonical guard → array → regions.
    guarded: BTreeMap<String, BTreeMap<String, GarList>>,
    elems: Vec<ElemG>,
    arrays: BTreeMap<String, ArrFacts>,
}

impl BodyWalk<'_> {
    fn ctx(&self) -> Ctx<'_> {
        Ctx {
            table: self.table,
            loop_vars: &self.loop_vars,
            consts: &self.consts,
        }
    }

    fn step(&mut self) -> bool {
        if !self.budget.step() {
            self.degraded = true;
        }
        !self.degraded && self.ok
    }

    fn walk(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            if !self.step() {
                return;
            }
            match &s.kind {
                StmtKind::Assign(lv, rhs) => {
                    self.reads_of(rhs);
                    match lv {
                        LValue::Element(name, subs) => {
                            for sub in subs {
                                self.reads_of(sub);
                            }
                            if self.table.is_array(name) {
                                self.write(name, subs);
                            }
                        }
                        LValue::Var(name) => {
                            // Scalar constant tracking, straight-line only.
                            let c = if self.guard_stack.is_empty() && self.loop_stack.is_empty() {
                                to_sym(rhs, &self.ctx()).and_then(|e| e.as_const())
                            } else {
                                None
                            };
                            match c {
                                Some(v) => {
                                    self.consts.insert(name.clone(), v);
                                }
                                None => {
                                    self.consts.remove(name);
                                }
                            }
                        }
                    }
                }
                StmtKind::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.reads_of(cond);
                    self.guard_stack.push(cond.clone());
                    self.walk(then_body);
                    self.guard_stack.pop();
                    if !else_body.is_empty() {
                        self.guard_stack
                            .push(FExpr::Un(UnOp::Not, Box::new(cond.clone())));
                        self.walk(else_body);
                        self.guard_stack.pop();
                    }
                }
                StmtKind::LogicalIf(cond, inner) => {
                    self.reads_of(cond);
                    self.guard_stack.push(cond.clone());
                    self.walk(std::slice::from_ref(inner));
                    self.guard_stack.pop();
                }
                StmtKind::Do {
                    var,
                    lo,
                    hi,
                    step,
                    body,
                } => {
                    self.reads_of(lo);
                    self.reads_of(hi);
                    if let Some(st) = step {
                        self.reads_of(st);
                    }
                    self.walk_do(var, lo, hi, step.as_ref(), body);
                }
                StmtKind::Continue => {}
                // Unmodelled control flow: refuse everything.
                StmtKind::Call(..) | StmtKind::Goto(_) | StmtKind::Return | StmtKind::Stop => {
                    self.ok = false;
                    return;
                }
            }
        }
    }

    fn walk_do(&mut self, var: &str, lo: &FExpr, hi: &FExpr, step: Option<&FExpr>, body: &[Stmt]) {
        let unit = match step {
            None => true,
            Some(s) => to_sym(s, &self.ctx()).and_then(|e| e.as_const()) == Some(1),
        };
        // Bound expressions are only usable when nothing in the body (or
        // a sibling inner loop) reassigns their free variables.
        let stable = |e: &FExpr| {
            let mut ns = BTreeSet::new();
            names_of(e, &mut ns);
            ns.iter().all(|n| !self.assigned.contains(n))
        };
        let lo_sym = if stable(lo) {
            to_sym(lo, &self.ctx())
        } else {
            None
        };
        let hi_sym = if stable(hi) {
            to_sym(hi, &self.ctx())
        } else {
            None
        };
        let trip = match (&lo_sym, &hi_sym) {
            (Some(l), Some(h)) => prove_le(&Pred::tru(), l, h),
            _ => false,
        };
        self.loop_stack.push(LoopSpec {
            var: var.to_string(),
            lo: lo_sym.clone(),
            hi: hi_sym.clone(),
            unit,
        });
        let was_loop_var = self.loop_vars.insert(var.to_string());
        self.consts.remove(var);
        self.must_stack.push(BTreeMap::new());
        self.walk(body);
        let scope = self.must_stack.pop().expect("scope pushed above");
        // Expand the inner scope over the closed loop's full range; only
        // provably-executing unit-step loops with representable bounds
        // contribute must evidence to the enclosing level.
        if unit && trip {
            if let (Some(l), Some(h)) = (lo_sym, hi_sym) {
                let lctx = LoopCtx::new(var, l, h);
                let parent = self.must_stack.last_mut().expect("root scope");
                for (name, list) in scope {
                    let expanded = expand_list(&list, &lctx);
                    let must = GarList::from_gars(expanded.must_view().cloned());
                    if !must.is_empty() {
                        let e = parent.entry(name).or_insert_with(GarList::empty);
                        *e = e.union(&must);
                    }
                }
            }
        }
        if !was_loop_var {
            self.loop_vars.remove(var);
        }
        self.loop_stack.pop();
    }

    /// A write of `name(subs…)` at the current guard/loop position.
    fn write(&mut self, name: &str, subs: &[FExpr]) {
        if !self.step() {
            return;
        }
        let region = region_of(subs, &self.ctx());
        let exact = region.is_exact();
        if self.guard_stack.is_empty() {
            if exact {
                let top = self.must_stack.last_mut().expect("root scope");
                let e = top.entry(name.to_string()).or_insert_with(GarList::empty);
                *e = e.union_gar(Gar::new(Pred::tru(), region.clone()));
            }
            // Unconditional writes in a unit inner loop also yield an
            // index-canonical per-element guarantee (covers reads under a
            // differently-named index in a later loop).
            if let [spec] = &self.loop_stack[..] {
                if exact && spec.unit {
                    if let (Some(l), Some(h)) = (&spec.lo, &spec.hi) {
                        self.elems.push(ElemG {
                            array: name.to_string(),
                            guard: String::new(),
                            subs: canon_subs(subs, Some(&spec.var)),
                            lo: l.clone(),
                            hi: h.clone(),
                        });
                    }
                }
            }
            return;
        }
        if !exact || self.guard_stack.len() != 1 {
            return;
        }
        let g = self.guard_stack[0].clone();
        match &self.loop_stack[..] {
            [] if self.guard_usable(&g, None) => {
                let key = canon(&g, None);
                let e = self
                    .guarded
                    .entry(key)
                    .or_default()
                    .entry(name.to_string())
                    .or_insert_with(GarList::empty);
                *e = e.union_gar(Gar::new(Pred::tru(), region));
            }
            [spec] if spec.unit && self.guard_usable(&g, Some(&spec.var)) => {
                if let (Some(l), Some(h)) = (&spec.lo, &spec.hi) {
                    self.elems.push(ElemG {
                        array: name.to_string(),
                        guard: canon(&g, Some(&spec.var)),
                        subs: canon_subs(subs, Some(&spec.var)),
                        lo: l.clone(),
                        hi: h.clone(),
                    });
                }
            }
            _ => {}
        }
    }

    /// A guard template is only sound to match across program points if
    /// nothing in the body assigns any name it mentions (the matched
    /// loop index, canonicalized away, excepted).
    fn guard_usable(&self, g: &FExpr, idx: Option<&str>) -> bool {
        let mut ns = BTreeSet::new();
        names_of(g, &mut ns);
        ns.iter()
            .all(|n| Some(n.as_str()) == idx || !self.assigned.contains(n))
    }

    /// Registers every array read inside `e` and checks coverage.
    fn reads_of(&mut self, e: &FExpr) {
        match e {
            FExpr::Index(name, subs) => {
                for s in subs {
                    self.reads_of(s);
                }
                if self.table.is_array(name) {
                    let name = name.clone();
                    let subs = subs.clone();
                    self.read(&name, &subs);
                }
            }
            FExpr::Bin(_, a, b) => {
                self.reads_of(a);
                self.reads_of(b);
            }
            FExpr::Un(_, a) => self.reads_of(a),
            _ => {}
        }
    }

    fn read(&mut self, name: &str, subs: &[FExpr]) {
        if !self.step() {
            return;
        }
        let region = region_of(subs, &self.ctx());
        let covered = self.covered(name, subs, &region);
        let f = self.arrays.entry(name.to_string()).or_default();
        f.reads += 1;
        match covered {
            Some(d) => {
                if f.details.len() < 8 {
                    f.details.push(d);
                }
            }
            None => f.uncovered += 1,
        }
    }

    fn covered(&self, name: &str, subs: &[FExpr], region: &Region) -> Option<String> {
        if !region.is_exact() {
            return None;
        }
        // 1. Plain must coverage from any open scope.
        let mut rem = GarList::single(Gar::new(Pred::tru(), region.clone()));
        for scope in &self.must_stack {
            if let Some(m) = scope.get(name) {
                rem = rem.subtract(m);
                if rem.definitely_empty() {
                    return Some(format!("{name}{region} defined earlier in the iteration"));
                }
            }
        }
        // 2. Same-level guarded coverage: read under the syntactically
        //    identical guard as an earlier write.
        if self.loop_stack.is_empty() {
            if let [g] = &self.guard_stack[..] {
                if self.guard_usable(g, None) {
                    if let Some(m) = self
                        .guarded
                        .get(&canon(g, None))
                        .and_then(|by| by.get(name))
                    {
                        if rem.subtract(m).definitely_empty() {
                            return Some(format!(
                                "{name}{region} defined under the same guard {g}"
                            ));
                        }
                    }
                }
            }
        }
        // 3. Per-element template match across inner loops.
        if let [spec] = &self.loop_stack[..] {
            if spec.unit {
                if let (Some(rlo), Some(rhi)) = (&spec.lo, &spec.hi) {
                    let rguard = match &self.guard_stack[..] {
                        [] => Some(String::new()),
                        [g] if self.guard_usable(g, Some(&spec.var)) => {
                            Some(canon(g, Some(&spec.var)))
                        }
                        _ => None,
                    }?;
                    let rsubs = canon_subs(subs, Some(&spec.var));
                    for el in &self.elems {
                        if el.array == name
                            && el.subs == rsubs
                            && (el.guard.is_empty() || el.guard == rguard)
                            && prove_le(&Pred::tru(), &el.lo, rlo)
                            && prove_le(&Pred::tru(), rhi, &el.hi)
                        {
                            return Some(if el.guard.is_empty() {
                                format!("{name}({rsubs}) written for every index in range")
                            } else {
                                format!(
                                    "{name}({rsubs}) written under matching guard {} for every index",
                                    el.guard
                                )
                            });
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::{analyze, parse_program, StmtKind};
    use vrange::DEFAULT_BUDGET;

    /// Finds the outermost DO in the first routine and analyzes its body.
    fn facts_of(src: &str) -> (BodyFacts, fortran::Routine) {
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        let r = p.routines[0].clone();
        let table = &sema.tables[&r.name];
        let budget = Budget::new(DEFAULT_BUDGET);
        for s in &r.body {
            if let StmtKind::Do { var, body, .. } = &s.kind {
                let f = analyze_loop_body(body, var, &BTreeSet::new(), table, &budget);
                return (f, r.clone());
            }
        }
        panic!("no DO loop in source");
    }

    #[test]
    fn plain_write_then_read_is_covered() {
        let (f, _) = facts_of(
            "
      SUBROUTINE s(a, b, n)
      REAL a(100), b(100), t(100)
      INTEGER n, i, k
      DO i = 1, n
        DO k = 1, 100
          t(k) = a(k)
        ENDDO
        DO k = 1, 100
          b(k) = t(k) * 2.0
        ENDDO
      ENDDO
      END
",
        );
        assert!(!f.degraded());
        assert!(f.covers_reads("t").is_some(), "t reads should be covered");
        assert!(f.covers_reads("a").is_none(), "a is genuinely exposed");
    }

    #[test]
    fn guarded_write_covers_same_guard_read() {
        let (f, _) = facts_of(
            "
      SUBROUTINE s(b, c, n)
      REAL b(10), c(10), w(10), s2
      INTEGER n, i, k, j
      s2 = 0.0
      DO i = 1, n
        DO k = 1, 10
          IF (c(k) .GT. 0.0) w(k) = b(k)
        ENDDO
        DO j = 1, 10
          IF (c(j) .GT. 0.0) s2 = s2 + w(j)
        ENDDO
      ENDDO
      END
",
        );
        assert!(!f.degraded());
        assert!(
            f.covers_reads("w").is_some(),
            "guard-template match should cover w"
        );
    }

    #[test]
    fn guard_mismatch_is_not_covered() {
        let (f, _) = facts_of(
            "
      SUBROUTINE s(b, c, d, n)
      REAL b(10), c(10), d(10), w(10), s2
      INTEGER n, i, k, j
      s2 = 0.0
      DO i = 1, n
        DO k = 1, 10
          IF (c(k) .GT. 0.0) w(k) = b(k)
        ENDDO
        DO j = 1, 10
          IF (d(j) .GT. 0.0) s2 = s2 + w(j)
        ENDDO
      ENDDO
      END
",
        );
        assert!(
            f.covers_reads("w").is_none(),
            "different guards must not match"
        );
    }

    #[test]
    fn guard_variable_modified_in_body_refuses_match() {
        let (f, _) = facts_of(
            "
      SUBROUTINE s(b, n)
      REAL b(10), c(10), w(10), s2
      INTEGER n, i, k, j
      s2 = 0.0
      DO i = 1, n
        DO k = 1, 10
          IF (c(k) .GT. 0.0) w(k) = b(k)
          c(k) = b(k)
        ENDDO
        DO j = 1, 10
          IF (c(j) .GT. 0.0) s2 = s2 + w(j)
        ENDDO
      ENDDO
      END
",
        );
        assert!(
            f.covers_reads("w").is_none(),
            "c changes between write and read"
        );
    }

    #[test]
    fn read_before_write_in_same_inner_loop_not_covered() {
        // w(k+1) is read before the iteration that writes it.
        let (f, _) = facts_of(
            "
      SUBROUTINE s(b, n)
      REAL b(100), w(100), s2
      INTEGER n, i, k
      s2 = 0.0
      DO i = 1, n
        DO k = 1, 99
          w(k) = b(k)
          s2 = s2 + w(k + 1)
        ENDDO
      ENDDO
      END
",
        );
        assert!(f.covers_reads("w").is_none(), "forward-reaching read leaks");
    }

    #[test]
    fn full_definition_fact() {
        let (f, _) = facts_of(
            "
      SUBROUTINE s(a, b, n, q)
      REAL a(100), b(100), w(10), q
      INTEGER n, i, k
      DO i = 1, n
        DO k = 1, 10
          w(k) = a(k) + b(k)
        ENDDO
        b(i) = w(3)
      ENDDO
      q = w(3)
      END
",
        );
        assert!(!f.degraded());
        assert!(f.fully_defines("w", &[(1, 10)]).is_some());
        assert!(f.fully_defines("w", &[(1, 11)]).is_none(), "partial cover");
    }

    #[test]
    fn call_or_goto_refuses() {
        let (f, _) = facts_of(
            "
      SUBROUTINE s(a, n)
      REAL a(100), w(10)
      INTEGER n, i, k
      DO i = 1, n
        DO k = 1, 10
          w(k) = a(k)
        ENDDO
        CALL other(w)
        a(i) = w(1)
      ENDDO
      END
      SUBROUTINE other(x)
      REAL x(10)
      x(1) = 0.0
      END
",
        );
        assert!(f.degraded());
        assert!(f.covers_reads("w").is_none());
        assert!(f.fully_defines("w", &[(1, 10)]).is_none());
    }

    #[test]
    fn budget_exhaustion_degrades_to_top() {
        let src = "
      SUBROUTINE s(a, b, n)
      REAL a(100), b(100), t(100)
      INTEGER n, i, k
      DO i = 1, n
        DO k = 1, 100
          t(k) = a(k)
        ENDDO
        DO k = 1, 100
          b(k) = t(k)
        ENDDO
      ENDDO
      END
";
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        let r = &p.routines[0];
        let table = &sema.tables[&r.name];
        let budget = Budget::new(2);
        for s in &r.body {
            if let StmtKind::Do { var, body, .. } = &s.kind {
                let f = analyze_loop_body(body, var, &BTreeSet::new(), table, &budget);
                assert!(f.degraded());
                assert!(f.covers_reads("t").is_none(), "degraded decides nothing");
                return;
            }
        }
    }
}
