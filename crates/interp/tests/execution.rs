//! Interpreter tests: sequential semantics, calls, gotos, and the parallel
//! executor's bitwise agreement with sequential execution.

use fortran::{analyze, parse_program};
use interp::{simulate_speedup, ArrayData, LoopPlan, Machine, Memory, ParallelPlan};

fn run(src: &str) -> Memory {
    let p = parse_program(src).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    m.run().unwrap().0
}

fn real_array(mem: &Memory, handle: usize) -> &[f64] {
    match &mem.arrays[handle].data {
        ArrayData::Real(v) => v,
        other => panic!("expected real array, got {other:?}"),
    }
}

/// Source line of the `nth` (0-based) top-level `DO` on `var` in `routine`
/// — plans are keyed by `(routine, var, line)`.
fn do_line(p: &fortran::Program, routine: &str, var: &str, nth: usize) -> u32 {
    let r = p.routine(routine).expect("routine");
    r.body
        .iter()
        .filter_map(|s| match &s.kind {
            fortran::StmtKind::Do { var: v, .. } if v == var => Some(s.line),
            _ => None,
        })
        .nth(nth)
        .expect("DO statement")
}

#[test]
fn simple_arithmetic_and_do() {
    let mem = run("
      PROGRAM t
      REAL a(10)
      INTEGER i
      DO i = 1, 10
        a(i) = 2.0 * i + 1.0
      ENDDO
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a[0], 3.0);
    assert_eq!(a[9], 21.0);
}

#[test]
fn nested_do_and_2d() {
    let mem = run("
      PROGRAM t
      REAL a(3, 4)
      INTEGER i, j
      DO j = 1, 4
        DO i = 1, 3
          a(i, j) = i * 10.0 + j
        ENDDO
      ENDDO
      END
");
    let a = real_array(&mem, 0);
    // column-major: a(2,3) at (2-1) + (3-1)*3 = 7
    assert_eq!(a[7], 23.0);
}

#[test]
fn do_with_step_and_final_value() {
    let p = parse_program(
        "
      PROGRAM t
      INTEGER i, n
      REAL a(20)
      n = 0
      DO i = 1, 10, 3
        n = n + 1
        a(n) = i * 1.0
      ENDDO
      a(15) = i * 1.0
      END
",
    )
    .unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let mem = m.run().unwrap().0;
    let a = real_array(&mem, 0);
    assert_eq!(&a[0..4], &[1.0, 4.0, 7.0, 10.0]);
    // Fortran: after the loop i = 13.
    assert_eq!(a[14], 13.0);
}

#[test]
fn if_and_logical_if() {
    let mem = run("
      PROGRAM t
      REAL a(5)
      INTEGER i
      DO i = 1, 5
        IF (i .GT. 3) THEN
          a(i) = 1.0
        ELSE
          a(i) = 2.0
        ENDIF
        IF (i .EQ. 5) a(1) = 9.0
      ENDDO
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a, &[9.0, 2.0, 2.0, 1.0, 1.0]);
}

#[test]
fn goto_skip_pattern() {
    // Fig 1(a)-style conditional skip to labeled ENDDO.
    let mem = run("
      PROGRAM t
      REAL a(10)
      INTEGER k
      DO k = 1, 10
        IF (k .GT. 5) goto 1
        a(k) = 1.0
1     ENDDO
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a[4], 1.0);
    assert_eq!(a[5], 0.0);
}

#[test]
fn backward_goto_loop() {
    let mem = run("
      PROGRAM t
      REAL a(5)
      INTEGER k
      k = 1
10    a(k) = k * 1.0
      k = k + 1
      IF (k .LE. 5) goto 10
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a, &[1.0, 2.0, 3.0, 4.0, 5.0]);
}

#[test]
fn call_with_array_and_scalar_copyback() {
    let mem = run("
      PROGRAM t
      REAL a(10)
      INTEGER n
      n = 4
      call fill(a, n)
      END
      SUBROUTINE fill(b, m)
      REAL b(*)
      INTEGER m, j
      DO j = 1, m
        b(j) = j * 1.0
      ENDDO
      m = 99
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(&a[0..4], &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn common_blocks_shared() {
    let mem = run("
      PROGRAM t
      COMMON /blk/ w
      REAL w(10)
      call setw()
      END
      SUBROUTINE setw()
      COMMON /blk/ w
      REAL w(10)
      w(3) = 7.5
      END
");
    // the COMMON array is the only allocation
    let w = real_array(&mem, 0);
    assert_eq!(w[2], 7.5);
}

#[test]
fn intrinsics() {
    let mem = run("
      PROGRAM t
      REAL a(6)
      a(1) = max(1.0, 3.5)
      a(2) = min(2, 7)
      a(3) = abs(-4.5)
      a(4) = mod(7, 3)
      a(5) = sqrt(9.0)
      a(6) = float(3) / 2.0
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a, &[3.5, 2.0, 4.5, 1.0, 3.0, 1.5]);
}

#[test]
fn parameter_constants() {
    let mem = run("
      PROGRAM t
      PARAMETER (n = 5)
      REAL a(10)
      INTEGER i
      DO i = 1, n
        a(i) = 1.0
      ENDDO
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a.iter().filter(|&&x| x == 1.0).count(), 5);
}

const OCEAN_EXEC: &str = "
      PROGRAM ocean
      REAL A(50), R(40)
      INTEGER n, m, i
      REAL x
      n = 40
      m = 50
      DO i = 1, n
        x = float(i)
        call in(A, x, m)
        call out(A, x, m, R, i)
      ENDDO
      END

      SUBROUTINE in(B, x, mm)
      REAL B(*)
      INTEGER mm, j
      REAL x
      IF (x .GT. 20.0) RETURN
      DO j = 1, mm
        B(j) = x + j
      ENDDO
      END

      SUBROUTINE out(B, x, mm, R, i)
      REAL B(*), R(*)
      INTEGER mm, j, i
      REAL x, s
      IF (x .GT. 20.0) RETURN
      s = 0.0
      DO j = 1, mm
        s = s + B(j)
      ENDDO
      R(i) = s
      END
";

#[test]
fn parallel_matches_sequential_ocean() {
    let p = parse_program(OCEAN_EXEC).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let (seq_mem, _) = m.run().unwrap();

    let mut plan = ParallelPlan::new();
    plan.add(
        "ocean",
        "i",
        do_line(&p, "ocean", "i", 0),
        LoopPlan {
            private_arrays: vec!["a".to_string()],
            private_scalars: vec!["x".to_string()],
            ..Default::default()
        },
    );
    for threads in [1, 2, 4] {
        let (par_mem, stats) = m.run_parallel(&plan, threads).unwrap();
        assert_eq!(
            par_mem.arrays.len(),
            seq_mem.arrays.len(),
            "allocation divergence"
        );
        // R (the shared result array) must match exactly.
        for (k, (s, q)) in seq_mem.arrays.iter().zip(&par_mem.arrays).enumerate() {
            if let (ArrayData::Real(sv), ArrayData::Real(qv)) = (&s.data, &q.data) {
                // skip the privatized working array A (handle of "a"):
                // its final contents differ by design unless copied out.
                if k == 0 {
                    continue;
                }
                assert_eq!(sv, qv, "array {k} diverged with {threads} threads");
            }
        }
        assert!(stats.parallel_iterations > 0);
    }
}

#[test]
fn parallel_work_array_with_copy_out() {
    let src = "
      PROGRAM t
      REAL w(10), a(100), q
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = i * 1.0
        ENDDO
        a(i) = w(5)
      ENDDO
      q = w(3)
      a(50) = q
      END
";
    let p = parse_program(src).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let (seq_mem, _) = m.run().unwrap();

    let mut plan = ParallelPlan::new();
    plan.add(
        "t",
        "i",
        do_line(&p, "t", "i", 0),
        LoopPlan {
            private_arrays: vec!["w".to_string()],
            private_scalars: vec!["k".to_string()],
            copy_out: vec!["w".to_string()],
            ..Default::default()
        },
    );
    let (par_mem, _) = m.run_parallel(&plan, 3).unwrap();
    for (s, q) in seq_mem.arrays.iter().zip(&par_mem.arrays) {
        assert_eq!(s.data, q.data, "copy-out must reproduce last values");
    }
}

#[test]
fn speedup_simulation_shape() {
    let p = parse_program(OCEAN_EXEC).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let s1 = simulate_speedup(&m, "ocean", "i", 1).unwrap();
    let s8 = simulate_speedup(&m, "ocean", "i", 8).unwrap();
    assert_eq!(s1.iterations, 40);
    assert!(s1.speedup <= 1.01);
    assert!(
        s8.speedup > 3.0 && s8.speedup <= 8.0,
        "8-way speedup out of band: {}",
        s8.speedup
    );
    assert!(s8.loop_fraction > 0.9);
}

#[test]
fn runtime_errors() {
    let p = parse_program(
        "
      PROGRAM t
      REAL a(5)
      a(9) = 1.0
      END
",
    )
    .unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let e = m.run().unwrap_err();
    assert!(e.message.contains("out of bounds"), "{e}");

    let p2 = parse_program(
        "
      PROGRAM t
      INTEGER i
      i = 1 / 0
      END
",
    )
    .unwrap();
    let sema2 = analyze(&p2).unwrap();
    let m2 = Machine::new(&p2, &sema2);
    assert!(m2.run().is_err());
}

#[test]
fn goto_cycle_budget_guard() {
    let p = parse_program(
        "
      PROGRAM t
      INTEGER i
      i = 0
10    i = i - 1
      IF (i .LT. 1) goto 10
      END
",
    )
    .unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let e = m.run().unwrap_err();
    assert!(e.message.contains("budget"), "{e}");
}

#[test]
fn parallel_sum_reduction() {
    let src = "
      PROGRAM t
      REAL a(100), s
      INTEGER i
      DO i = 1, 100
        a(i) = float(i)
      ENDDO
      s = 10.0
      DO i = 1, 100
        s = s + a(i)
      ENDDO
      a(1) = s
      END
";
    let p = parse_program(src).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let (seq, _) = m.run().unwrap();

    let mut plan = ParallelPlan::new();
    plan.add(
        "t",
        "i",
        do_line(&p, "t", "i", 1),
        LoopPlan {
            sum_reductions: vec!["s".to_string()],
            ..Default::default()
        },
    );
    // The plan is keyed by line, so only the second i loop (the sum) runs
    // in parallel; the initialization loop stays sequential.
    let (par, _) = m.run_parallel(&plan, 4).unwrap();
    let seq_s = match &seq.arrays[0].data {
        ArrayData::Real(v) => v[0],
        _ => unreachable!(),
    };
    let par_s = match &par.arrays[0].data {
        ArrayData::Real(v) => v[0],
        _ => unreachable!(),
    };
    // 10 + Σ 1..100 = 5060; integers up to 2^24 are exact in f32/f64
    // arithmetic here, so equality is exact.
    assert_eq!(seq_s, 5060.0);
    assert!((par_s - seq_s).abs() < 1e-9, "par {par_s} vs seq {seq_s}");
}

#[test]
fn two_dim_array_through_call() {
    // A 2-D array passed to a callee that declares it 1-D (sequence
    // association) and fills it linearly.
    let mem = run("
      PROGRAM t
      REAL a(3, 4)
      call fill(a)
      END
      SUBROUTINE fill(b)
      REAL b(12)
      INTEGER k
      DO k = 1, 12
        b(k) = float(k)
      ENDDO
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a[0], 1.0);
    assert_eq!(a[11], 12.0);
}

#[test]
fn adjustable_array_dims_from_args() {
    // The callee's declared extent comes from another argument.
    let mem = run("
      PROGRAM t
      REAL a(6, 2)
      INTEGER n
      n = 6
      call fill(a, n)
      END
      SUBROUTINE fill(b, n)
      INTEGER n, j
      REAL b(n, 2)
      DO j = 1, n
        b(j, 2) = float(j)
      ENDDO
      END
");
    let a = real_array(&mem, 0);
    // column-major: b(j,2) at (j-1) + 1*6
    assert_eq!(a[6], 1.0);
    assert_eq!(a[11], 6.0);
}

#[test]
fn common_scalar_roundtrip() {
    let mem = run("
      PROGRAM t
      COMMON /blk/ w
      REAL w(4)
      w(1) = 1.5
      call bump()
      w(3) = w(2)
      END
      SUBROUTINE bump()
      COMMON /blk/ w
      REAL w(4)
      w(2) = w(1) * 2.0
      END
");
    let w = real_array(&mem, 0);
    assert_eq!(w, &[1.5, 3.0, 3.0, 0.0]);
}

#[test]
fn logical_values_and_not() {
    let mem = run("
      PROGRAM t
      REAL a(3)
      LOGICAL p, q
      p = .TRUE.
      q = .NOT. p
      IF (p .AND. .NOT. q) a(1) = 1.0
      IF (p .OR. q) a(2) = 2.0
      IF (q) a(3) = 3.0
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a, &[1.0, 2.0, 0.0]);
}

#[test]
fn integer_arithmetic_semantics() {
    let mem = run("
      PROGRAM t
      REAL a(4)
      INTEGER i, j
      i = 7
      j = 2
      a(1) = float(i / j)
      a(2) = float(mod(i, j))
      a(3) = float(i ** 2)
      a(4) = float(-i / j)
      END
");
    let a = real_array(&mem, 0);
    // Fortran integer division truncates toward zero.
    assert_eq!(a, &[3.0, 1.0, 49.0, -3.0]);
}

#[test]
fn nested_calls_three_deep() {
    let mem = run("
      PROGRAM t
      REAL a(5)
      call outer3(a)
      END
      SUBROUTINE outer3(x)
      REAL x(5)
      call middle(x)
      END
      SUBROUTINE middle(y)
      REAL y(5)
      call leaf(y)
      y(2) = y(1) + 1.0
      END
      SUBROUTINE leaf(z)
      REAL z(5)
      z(1) = 10.0
      END
");
    let a = real_array(&mem, 0);
    assert_eq!(a[0], 10.0);
    assert_eq!(a[1], 11.0);
}

#[test]
fn parallel_product_reduction() {
    // An INTEGER product reduction: combining thread partials additively
    // (the pre-fix behavior) gives 1 + p1 + p2 + ... instead of
    // 1 * p1 * p2 * ..., which diverges for any input with a factor > 1.
    let src = "
      PROGRAM t
      INTEGER f(12), p
      INTEGER i
      DO i = 1, 12
        f(i) = i
      ENDDO
      p = 1
      DO i = 1, 12
        p = p * f(i)
      ENDDO
      f(1) = p
      END
";
    let p = parse_program(src).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let (seq, _) = m.run().unwrap();
    let seq_p = match &seq.arrays[0].data {
        ArrayData::Int(v) => v[0],
        _ => unreachable!(),
    };
    assert_eq!(seq_p, 479_001_600); // 12!

    let mut plan = ParallelPlan::new();
    plan.add(
        "t",
        "i",
        do_line(&p, "t", "i", 1),
        LoopPlan {
            mul_reductions: vec!["p".to_string()],
            ..Default::default()
        },
    );
    for threads in [2, 4] {
        let (par, _) = m.run_parallel(&plan, threads).unwrap();
        let par_p = match &par.arrays[0].data {
            ArrayData::Int(v) => v[0],
            _ => unreachable!(),
        };
        assert_eq!(par_p, seq_p, "{threads} threads");
    }
}

#[test]
fn plan_key_line_disambiguates_same_var_loops() {
    // Two i loops; only the second is safe to privatize w (the first
    // READS w before writing it). A (routine, var)-keyed plan would fire
    // on both and zero-scrub w under the first loop, corrupting b.
    let src = "
      PROGRAM t
      REAL w(4), b(8), c(8)
      INTEGER i, k
      w(1) = 7.0
      DO i = 1, 8
        b(i) = w(1) + i
      ENDDO
      DO i = 1, 8
        DO k = 1, 4
          w(k) = i * 2.0
        ENDDO
        c(i) = w(3)
      ENDDO
      END
";
    let p = parse_program(src).unwrap();
    let sema = analyze(&p).unwrap();
    let m = Machine::new(&p, &sema);
    let (seq, _) = m.run().unwrap();

    let mut plan = ParallelPlan::new();
    plan.add(
        "t",
        "i",
        do_line(&p, "t", "i", 1),
        LoopPlan {
            private_arrays: vec!["w".to_string()],
            private_scalars: vec!["k".to_string()],
            copy_out: vec!["w".to_string()],
            ..Default::default()
        },
    );
    let (par, stats) = m.run_parallel(&plan, 4).unwrap();
    for (s, q) in seq.arrays.iter().zip(&par.arrays) {
        assert_eq!(s.data, q.data, "line-keyed plan must not touch loop 1");
    }
    assert!(stats.parallel_iterations > 0);
}
