//! Runtime errors.

use std::fmt;

/// An execution failure.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
    /// Routine in which the failure happened.
    pub routine: String,
}

impl RuntimeError {
    /// Creates an error.
    pub fn new(routine: &str, message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
            routine: routine.to_string(),
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error in {}: {}", self.routine, self.message)
    }
}

impl std::error::Error for RuntimeError {}
