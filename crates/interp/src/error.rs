//! Runtime errors.

use std::fmt;

/// What kind of failure stopped execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// An ordinary runtime fault (bad subscript, missing unit, …).
    General,
    /// The interpreter's operation budget ran out: the program did not
    /// fail, the *oracle* gave up. Callers report this as a resource
    /// verdict, not a program error.
    BudgetExceeded,
}

/// An execution failure.
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
    /// Routine in which the failure happened.
    pub routine: String,
    /// Failure class.
    pub kind: ErrorKind,
}

impl RuntimeError {
    /// Creates an error.
    pub fn new(routine: &str, message: impl Into<String>) -> Self {
        RuntimeError {
            message: message.into(),
            routine: routine.to_string(),
            kind: ErrorKind::General,
        }
    }

    /// Creates the budget-exhaustion error.
    pub fn budget_exceeded(routine: &str) -> Self {
        RuntimeError {
            message: "operation budget exceeded".to_string(),
            routine: routine.to_string(),
            kind: ErrorKind::BudgetExceeded,
        }
    }

    /// Did the operation budget (not the program) fail?
    pub fn is_budget_exceeded(&self) -> bool {
        self.kind == ErrorKind::BudgetExceeded
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error in {}: {}", self.routine, self.message)
    }
}

impl std::error::Error for RuntimeError {}
