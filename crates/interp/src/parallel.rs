//! Threaded parallel DO execution and the P-processor speedup simulation.

use crate::error::RuntimeError;
use crate::exec::{Flow, Frame, Machine, RunState};
use crate::memory::{ArrayData, Value};
use fortran::{Routine, Stmt};
use serde::Serialize;
use std::collections::BTreeMap;

/// What to privatize for one parallel loop.
///
/// The array and scalar lists implement the OpenMP data-sharing clauses
/// the codegen backend selects, so a wrong clause choice is *executable*
/// and shows up as a differential mismatch:
///
/// * `private_arrays` — PRIVATE: each thread gets a **zero-initialized**
///   copy (OpenMP leaves it undefined; zero is the deterministic model
///   of "undefined"). Sound only when the analysis proved every read is
///   preceded by a same-iteration write.
/// * `firstprivate` — FIRSTPRIVATE: each thread's copy starts from the
///   incoming shared values (copy-in).
/// * `copy_out` — LASTPRIVATE for arrays: the sequentially-last value is
///   copied back after the join.
/// * `private_scalars` are likewise zero-scrubbed at entry;
///   `scalar_copy_out` names the subset copied back (scalar LASTPRIVATE).
#[derive(Clone, Debug, Default)]
pub struct LoopPlan {
    /// Arrays given a zero-initialized private copy per thread (PRIVATE).
    pub private_arrays: Vec<String>,
    /// Arrays given a value-copied private copy per thread (FIRSTPRIVATE).
    /// Implicitly private; a name needs to appear in only one of the two
    /// lists.
    pub firstprivate: Vec<String>,
    /// Scalars given a private copy per thread (the loop index always is).
    /// Scrubbed to the type's zero at loop entry.
    pub private_scalars: Vec<String>,
    /// Privatized arrays whose last value must be copied out (LASTPRIVATE).
    pub copy_out: Vec<String>,
    /// Private scalars whose last value must be copied out after the join
    /// (scalar LASTPRIVATE).
    pub scalar_copy_out: Vec<String>,
    /// Scalars executed as sum reductions: each thread accumulates from
    /// the additive identity and the partials are combined after the join.
    /// Floating-point results may differ from sequential execution by
    /// reassociation (as on any real parallel machine).
    pub sum_reductions: Vec<String>,
    /// Scalars executed as product reductions: each thread accumulates
    /// from the multiplicative identity and the partials are multiplied
    /// after the join.
    pub mul_reductions: Vec<String>,
}

impl LoopPlan {
    /// Every privatized array (PRIVATE ∪ FIRSTPRIVATE), in order, deduped.
    pub fn privatized_arrays(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for n in self.private_arrays.iter().chain(&self.firstprivate) {
            if !out.contains(&n.as_str()) {
                out.push(n);
            }
        }
        out
    }
}

/// The set of loops to run in parallel, keyed by
/// `(routine, index var, source line)`. The line disambiguates routines
/// with several `DO` statements on the same index variable, so a plan
/// entry fires only on the verified loop.
#[derive(Clone, Debug, Default)]
pub struct ParallelPlan {
    loops: BTreeMap<(String, String, u32), LoopPlan>,
}

impl ParallelPlan {
    /// Empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a loop.
    pub fn add(&mut self, routine: &str, var: &str, line: u32, plan: LoopPlan) {
        self.loops
            .insert((routine.to_string(), var.to_string(), line), plan);
    }

    /// Does the plan cover this loop?
    pub fn matches(&self, routine: &str, var: &str, line: u32) -> bool {
        self.loops
            .contains_key(&(routine.to_string(), var.to_string(), line))
    }

    fn get(&self, routine: &str, var: &str, line: u32) -> Option<&LoopPlan> {
        self.loops
            .get(&(routine.to_string(), var.to_string(), line))
    }
}

/// Outcome information of a parallel run (beyond the memory itself).
#[derive(Clone, Debug, Default, Serialize)]
pub struct ParallelOutcome {
    /// Iterations executed across threads.
    pub iterations: u64,
    /// Threads used.
    pub threads: usize,
}

/// Executes the designated DO loop across threads. Called from the
/// interpreter when it reaches a planned loop.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel_do(
    machine: &Machine,
    r: &Routine,
    var: &str,
    line: u32,
    lo: i64,
    step: i64,
    trips: i64,
    body: &[Stmt],
    frame: &mut Frame,
    st: &mut RunState,
) -> Result<Flow, RuntimeError> {
    let plan = st
        .plan
        .and_then(|p| p.get(&r.name, var, line))
        .cloned()
        .unwrap_or_default();
    let nthreads = st.nthreads.max(1).min(trips.max(1) as usize);
    if trips <= 0 {
        frame.scalars.insert(var.to_string(), Value::Int(lo));
        return Ok(Flow::Normal);
    }

    // Snapshot memory for diff-merging.
    let base_mem = st.mem.clone();
    let mut base_frame = frame.clone();
    // Reduction scalars: remember the incoming value, start threads from
    // the operator's identity (0 for sums, 1 for products).
    let mut reduction_pre: Vec<(String, Value)> = Vec::new();
    for s in &plan.sum_reductions {
        if let Some(v) = base_frame.scalars.get(s).copied() {
            reduction_pre.push((s.clone(), v));
            base_frame.scalars.insert(
                s.clone(),
                match v {
                    Value::Int(_) => Value::Int(0),
                    _ => Value::Real(0.0),
                },
            );
        }
    }
    let mut mul_reduction_pre: Vec<(String, Value)> = Vec::new();
    for s in &plan.mul_reductions {
        if let Some(v) = base_frame.scalars.get(s).copied() {
            mul_reduction_pre.push((s.clone(), v));
            base_frame.scalars.insert(
                s.clone(),
                match v {
                    Value::Int(_) => Value::Int(1),
                    _ => Value::Real(1.0),
                },
            );
        }
    }
    // PRIVATE semantics: scrub the thread-visible starting values. A
    // scalar or array the analysis proved written-before-read never sees
    // the scrub; a wrong PRIVATE-vs-FIRSTPRIVATE clause choice does, and
    // diverges from the sequential run.
    for s in &plan.private_scalars {
        if let Some(v) = base_frame.scalars.get(s).copied() {
            base_frame.scalars.insert(
                s.clone(),
                match v {
                    Value::Int(_) => Value::Int(0),
                    _ => Value::Real(0.0),
                },
            );
        }
    }
    let base_frame = base_frame;
    let mut thread_base_mem = base_mem.clone();
    for name in &plan.private_arrays {
        if plan.firstprivate.contains(name) {
            continue;
        }
        if let Some(&(h, _)) = frame.arrays.get(name.as_str()) {
            match &mut thread_base_mem.arrays[h].data {
                ArrayData::Int(v) => v.fill(0),
                ArrayData::Real(v) => v.fill(0.0),
                ArrayData::Logical(v) => v.fill(false),
            }
        }
    }
    let thread_base_mem = thread_base_mem;

    // Contiguous chunking.
    let chunk = (trips as usize).div_ceil(nthreads);
    struct ThreadResult {
        mem: crate::memory::Memory,
        frame: Frame,
        ops: u64,
        last_iter: Option<i64>,
        err: Option<RuntimeError>,
    }

    let results: Vec<ThreadResult> = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..nthreads {
            let begin = t * chunk;
            let end = ((t + 1) * chunk).min(trips as usize);
            if begin >= end {
                continue;
            }
            let thread_base_mem = &thread_base_mem;
            let base_frame = &base_frame;
            let plan = &plan;
            handles.push(scope.spawn(move |_| {
                let mut tst = RunState {
                    mem: thread_base_mem.clone(),
                    stats: crate::exec::ExecStats::default(),
                    commons: BTreeMap::new(),
                    budget: u64::MAX,
                    plan: None,
                    nthreads: 1,
                    hook: None,
                    in_target: true,
                    tracer: None,
                };
                let mut tframe = base_frame.clone();
                let mut last_iter = None;
                let mut err = None;
                'iters: for k in begin..end {
                    let iv = lo + k as i64 * step;
                    tframe.scalars.insert(var.to_string(), Value::Int(iv));
                    // Reset private scalars each iteration is not needed —
                    // the analysis guarantees they are written before read.
                    match machine.exec_body(r, body, &mut tframe, &mut tst) {
                        Ok(Flow::Normal) => last_iter = Some(iv),
                        Ok(_) => {
                            err = Some(RuntimeError::new(
                                &r.name,
                                "control left a parallel loop iteration",
                            ));
                            break 'iters;
                        }
                        Err(e) => {
                            err = Some(e);
                            break 'iters;
                        }
                    }
                    let _ = plan;
                }
                ThreadResult {
                    mem: tst.mem,
                    frame: tframe,
                    ops: tst.stats.ops,
                    last_iter,
                    err,
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("thread scope");

    for tr in &results {
        if let Some(e) = &tr.err {
            return Err(e.clone());
        }
    }

    // Private array handles (PRIVATE ∪ FIRSTPRIVATE; skipped in the
    // shared merge).
    let private_handles: Vec<usize> = plan
        .privatized_arrays()
        .into_iter()
        .filter_map(|n| frame.arrays.get(n).map(|(h, _)| *h))
        .collect();

    // Merge shared arrays by disjoint-write diffing.
    for tr in &results {
        for (h, (base, new)) in base_mem.arrays.iter().zip(&tr.mem.arrays).enumerate() {
            if private_handles.contains(&h) {
                continue;
            }
            merge_diff(&mut st.mem.arrays[h].data, &base.data, &new.data);
        }
        st.stats.ops += tr.ops;
        st.stats.parallel_iterations += (tr.last_iter.is_some()) as u64;
    }

    // Copy-out: the thread that ran the final iteration provides last
    // values of privatized arrays and private scalars.
    if let Some(final_thread) = results
        .iter()
        .filter(|tr| tr.last_iter.is_some())
        .max_by_key(|tr| tr.last_iter)
    {
        for name in &plan.copy_out {
            if let Some(&(h, _)) = frame.arrays.get(name.as_str()) {
                st.mem.arrays[h] = final_thread.mem.arrays[h].clone();
            }
        }
        for s in &plan.scalar_copy_out {
            if let Some(v) = final_thread.frame.scalars.get(s) {
                frame.scalars.insert(s.clone(), *v);
            }
        }
    }

    // Combine reduction partials: final = pre-value + Σ thread partials
    // for sums, pre-value × Π thread partials for products.
    for (name, pre) in &reduction_pre {
        let combined = results.iter().fold(*pre, |acc, tr| {
            match (acc, tr.frame.scalars.get(name).copied()) {
                (Value::Int(a), Some(Value::Int(b))) => Value::Int(a.wrapping_add(b)),
                (a, Some(b)) => Value::Real(a.as_f64() + b.as_f64()),
                (a, None) => a,
            }
        });
        frame.scalars.insert(name.clone(), combined);
    }
    for (name, pre) in &mul_reduction_pre {
        let combined = results.iter().fold(*pre, |acc, tr| {
            match (acc, tr.frame.scalars.get(name).copied()) {
                (Value::Int(a), Some(Value::Int(b))) => Value::Int(a.wrapping_mul(b)),
                (a, Some(b)) => Value::Real(a.as_f64() * b.as_f64()),
                (a, None) => a,
            }
        });
        frame.scalars.insert(name.clone(), combined);
    }

    frame
        .scalars
        .insert(var.to_string(), Value::Int(lo + trips * step));
    Ok(Flow::Normal)
}

/// Applies `new − base` differences onto `dst`, asserting disjointness in
/// debug builds (a conflict would mean the privatization verdict was
/// wrong).
fn merge_diff(dst: &mut ArrayData, base: &ArrayData, new: &ArrayData) {
    match (dst, base, new) {
        (ArrayData::Int(d), ArrayData::Int(b), ArrayData::Int(n)) => {
            for k in 0..d.len() {
                if n[k] != b[k] {
                    debug_assert!(
                        d[k] == b[k] || d[k] == n[k],
                        "conflicting parallel writes at {k}"
                    );
                    d[k] = n[k];
                }
            }
        }
        (ArrayData::Real(d), ArrayData::Real(b), ArrayData::Real(n)) => {
            for k in 0..d.len() {
                if n[k].to_bits() != b[k].to_bits() {
                    debug_assert!(
                        d[k].to_bits() == b[k].to_bits() || d[k].to_bits() == n[k].to_bits(),
                        "conflicting parallel writes at {k}"
                    );
                    d[k] = n[k];
                }
            }
        }
        (ArrayData::Logical(d), ArrayData::Logical(b), ArrayData::Logical(n)) => {
            for k in 0..d.len() {
                if n[k] != b[k] {
                    d[k] = n[k];
                }
            }
        }
        _ => unreachable!("type-changing merge"),
    }
}

/// Result of the deterministic P-processor simulation.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SimResult {
    /// Sequential operation count of the whole program.
    pub t1: u64,
    /// Simulated parallel operation count with P processors.
    pub tp: u64,
    /// `t1 as f64 / tp as f64`.
    pub speedup: f64,
    /// Fraction of `t1` spent inside the parallelized loop.
    pub loop_fraction: f64,
    /// Iterations of the parallelized loop.
    pub iterations: usize,
}

/// Per-iteration scheduling overhead charged by the simulation (fork/join
/// and privatization copying), in abstract operations.
const SIM_OVERHEAD_PER_CHUNK: u64 = 150;

/// Simulates executing the hooked loop `(routine, var)` on `p` virtual
/// processors: runs the program sequentially once with per-iteration
/// instrumentation, then schedules contiguous chunks.
pub fn simulate_speedup(
    machine: &Machine,
    routine: &str,
    var: &str,
    p: usize,
) -> Result<SimResult, RuntimeError> {
    let (_, stats) = machine.run_hooked(routine, var)?;
    let t1 = stats.ops;
    let loop_ops: u64 = stats.iter_ops.iter().sum();
    let serial = t1 - loop_ops;
    let p = p.max(1);
    let n = stats.iter_ops.len();
    let chunk = n.div_ceil(p.max(1)).max(1);
    let mut worst: u64 = 0;
    let mut k = 0;
    while k < n {
        let end = (k + chunk).min(n);
        let cost: u64 = stats.iter_ops[k..end].iter().sum::<u64>() + SIM_OVERHEAD_PER_CHUNK;
        worst = worst.max(cost);
        k = end;
    }
    let tp = serial + if n == 0 { 0 } else { worst };
    Ok(SimResult {
        t1,
        tp,
        speedup: t1 as f64 / tp.max(1) as f64,
        loop_fraction: loop_ops as f64 / t1.max(1) as f64,
        iterations: n,
    })
}
