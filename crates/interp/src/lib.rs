//! An interpreter and parallel runtime for the Fortran subset.
//!
//! This is the execution substrate for the paper's Table 1 speedup column.
//! The original measurements ran on an 8-processor Alliant FX/8, which we
//! do not have; instead (per the substitution policy in DESIGN.md §3) this
//! crate provides:
//!
//! * a **sequential interpreter** with deterministic operation counting,
//! * a **threaded parallel executor** that runs a designated DO loop's
//!   iterations across real threads, giving each thread private copies of
//!   the arrays/scalars the privatization analysis marked private —
//!   demonstrating that privatized execution is *correct* (bitwise equal
//!   to sequential),
//! * a **P-processor simulation** that charges each iteration its counted
//!   operations and schedules chunks over `P` virtual processors, yielding
//!   deterministic speedup figures with the shape of the paper's.
//!
//! Parallel soundness contract: the caller passes a [`ParallelPlan`] that
//! must come from the privatization verdicts. Threads work on full memory
//! clones; after the loop, non-private arrays are merged by disjoint-write
//! diffing (valid because the analysis proved the absence of cross-
//! iteration output dependences) and private objects are copied out from
//! the final iteration when live.

#![warn(missing_docs)]

mod error;
mod exec;
mod memory;
mod parallel;
mod trace;

pub use error::{ErrorKind, RuntimeError};
pub use exec::{ExecStats, Machine, DEFAULT_OP_BUDGET};
pub use memory::{ArrayData, ArrayStore, Memory, Value};
pub use parallel::{simulate_speedup, LoopPlan, ParallelOutcome, ParallelPlan, SimResult};
pub use trace::{ArrayRaces, LoopTrace, RaceClass, RaceWitness};
