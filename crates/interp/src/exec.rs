//! The sequential interpreter.

use crate::error::RuntimeError;
use crate::memory::{resolve_dims, ArrayStore, Memory, Value};
use crate::parallel::{run_parallel_do, ParallelPlan};
use crate::trace::{LoopTrace, Tracer};
use fortran::{BinOp, Expr, LValue, Program, ProgramSema, Routine, Stmt, StmtKind, Ty, UnOp};
use std::collections::BTreeMap;

/// Execution statistics.
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    /// Abstract operations executed (statements + expression nodes).
    pub ops: u64,
    /// Per-iteration operation counts of the *hooked* loop (used by the
    /// speedup simulation).
    pub iter_ops: Vec<u64>,
    /// Wall-clock iterations of the parallel loop actually run threaded.
    pub parallel_iterations: u64,
}

/// Statement/expression flow control.
pub(crate) enum Flow {
    Normal,
    Goto(u32),
    Return,
    Stop,
}

/// A routine activation: scalar cells and array bindings.
#[derive(Clone, Debug, Default)]
pub(crate) struct Frame {
    pub scalars: BTreeMap<String, Value>,
    /// name → (memory handle, view dims for subscripting).
    pub arrays: BTreeMap<String, (usize, Vec<(i64, i64)>)>,
}

/// Shared run state.
pub(crate) struct RunState<'p> {
    pub mem: Memory,
    pub stats: ExecStats,
    /// COMMON array storage by name.
    pub commons: BTreeMap<String, usize>,
    /// Remaining operation budget (guards against goto cycles).
    pub budget: u64,
    /// Parallel plan, if any.
    pub plan: Option<&'p ParallelPlan>,
    /// Threads for the parallel executor.
    pub nthreads: usize,
    /// Loop being instrumented for per-iteration costs:
    /// `(routine, var, line)`. A `Some` line restricts the hook to the
    /// DO statement on that 1-based source line, disambiguating loops
    /// that share an index variable.
    pub hook: Option<(String, String, Option<u32>)>,
    /// Are we currently inside the hooked/parallel loop (no nesting)?
    pub in_target: bool,
    /// Shadow-memory recorder for the race oracle (traced runs only).
    pub tracer: Option<Tracer>,
}

/// Default per-run operation budget: large enough for every benchmark
/// kernel, small enough that a runaway backward-goto cycle fails fast.
pub const DEFAULT_OP_BUDGET: u64 = 50_000_000;

/// The interpreter, bound to a parsed + semantically checked program.
pub struct Machine<'a> {
    pub(crate) program: &'a Program,
    pub(crate) sema: &'a ProgramSema,
    budget: u64,
}

impl<'a> Machine<'a> {
    /// Creates a machine with the default operation budget.
    pub fn new(program: &'a Program, sema: &'a ProgramSema) -> Self {
        Machine {
            program,
            sema,
            budget: DEFAULT_OP_BUDGET,
        }
    }

    /// Creates a machine with an explicit operation budget. Exhausting
    /// it fails the run with a [`RuntimeError`] whose kind is
    /// [`crate::ErrorKind::BudgetExceeded`].
    pub fn with_budget(program: &'a Program, sema: &'a ProgramSema, budget: u64) -> Self {
        Machine {
            program,
            sema,
            budget,
        }
    }

    /// Runs the PROGRAM unit sequentially. Returns final memory and stats.
    pub fn run(&self) -> Result<(Memory, ExecStats), RuntimeError> {
        let (mem, stats, _) = self.run_with(None, 1, None, false)?;
        Ok((mem, stats))
    }

    /// Runs with a per-iteration instrumentation hook on the loop
    /// `(routine, var)`.
    pub fn run_hooked(
        &self,
        routine: &str,
        var: &str,
    ) -> Result<(Memory, ExecStats), RuntimeError> {
        let hook = Some((routine.to_string(), var.to_string(), None));
        let (mem, stats, _) = self.run_with(None, 1, hook, false)?;
        Ok((mem, stats))
    }

    /// Runs sequentially with shadow-memory tracing on the loop
    /// `(routine, var)`: every array-element access inside the loop is
    /// recorded and cross-iteration conflicts are classified. This is
    /// the dynamic race oracle used to validate static verdicts.
    pub fn run_traced(
        &self,
        routine: &str,
        var: &str,
    ) -> Result<(Memory, ExecStats, LoopTrace), RuntimeError> {
        self.run_traced_at(routine, var, None)
    }

    /// Like [`Machine::run_traced`], but when `line` is `Some` only the
    /// DO statement on that 1-based source line is traced — this picks
    /// one loop out of several sharing an index variable.
    pub fn run_traced_at(
        &self,
        routine: &str,
        var: &str,
        line: Option<u32>,
    ) -> Result<(Memory, ExecStats, LoopTrace), RuntimeError> {
        let hook = Some((routine.to_string(), var.to_string(), line));
        let (mem, stats, trace) = self.run_with(None, 1, hook, true)?;
        Ok((mem, stats, trace.expect("traced run always yields a trace")))
    }

    /// Runs with a parallel plan (see [`ParallelPlan`]).
    pub fn run_parallel(
        &self,
        plan: &ParallelPlan,
        nthreads: usize,
    ) -> Result<(Memory, ExecStats), RuntimeError> {
        let (mem, stats, _) = self.run_with(Some(plan), nthreads, None, false)?;
        Ok((mem, stats))
    }

    fn run_with(
        &self,
        plan: Option<&ParallelPlan>,
        nthreads: usize,
        hook: Option<(String, String, Option<u32>)>,
        traced: bool,
    ) -> Result<(Memory, ExecStats, Option<LoopTrace>), RuntimeError> {
        let main = self
            .program
            .main()
            .ok_or_else(|| RuntimeError::new("?", "no PROGRAM unit"))?;
        let mut st = RunState {
            mem: Memory::default(),
            stats: ExecStats::default(),
            commons: BTreeMap::new(),
            budget: self.budget,
            plan,
            nthreads: nthreads.max(1),
            hook,
            in_target: false,
            tracer: traced.then(Tracer::new),
        };
        let mut frame = self.enter_frame(main, &[], &mut st)?;
        self.exec_body(main, &main.body, &mut frame, &mut st)?;
        let trace = st.tracer.take().map(|t| {
            let (r, v, _) = st.hook.as_ref().expect("traced runs set a hook");
            t.finish(r, v)
        });
        Ok((st.mem, st.stats, trace))
    }

    /// Builds a frame: allocates locals and COMMON arrays, binds params.
    pub(crate) fn enter_frame(
        &self,
        r: &Routine,
        args: &[Binding],
        st: &mut RunState,
    ) -> Result<Frame, RuntimeError> {
        let table = &self.sema.tables[&r.name];
        let mut frame = Frame::default();
        // Scalars default to zero of their type.
        for (name, kind) in table.iter() {
            if let fortran::SymbolKind::Scalar(ty) = kind {
                frame.scalars.insert(name.to_string(), Value::zero(*ty));
            }
        }
        // Bind scalar arguments first: adjustable array declarators
        // (`REAL b(n, 2)`) may reference scalar dummies in any position.
        for (k, p) in r.params.iter().enumerate() {
            if let Some(Binding::Scalar(v)) = args.get(k) {
                frame.scalars.insert(p.clone(), *v);
            }
        }
        for (k, p) in r.params.iter().enumerate() {
            match args.get(k) {
                Some(Binding::Scalar(_)) => {}
                Some(Binding::Array(handle, caller_dims)) => {
                    // View dims: the callee's own declarators when they
                    // resolve; otherwise the caller's.
                    let dims = match table.array(p) {
                        Some(info) => {
                            let total: i64 = caller_dims
                                .iter()
                                .map(|&(l, u)| (u - l + 1).max(0))
                                .product();
                            resolve_dims(&info.dims, |e| self.const_like(e, &frame, st), total)
                                .unwrap_or_else(|| caller_dims.clone())
                        }
                        None => caller_dims.clone(),
                    };
                    frame.arrays.insert(p.clone(), (*handle, dims));
                }
                None => {}
            }
        }
        // Allocate local and COMMON arrays.
        for (name, dims_decl) in &r.arrays {
            if frame.arrays.contains_key(name) {
                continue; // parameter, already bound
            }
            let info = table.array(name).expect("declared array");
            let dims = resolve_dims(&dims_decl.clone(), |e| self.const_like(e, &frame, st), 1)
                .ok_or_else(|| {
                    RuntimeError::new(&r.name, format!("cannot size local array {name}"))
                })?;
            let handle = if info.common.is_some() {
                match st.commons.get(name) {
                    Some(&h) => h,
                    None => {
                        let h = st.mem.alloc(ArrayStore::new(info.ty, dims.clone()));
                        st.commons.insert(name.clone(), h);
                        h
                    }
                }
            } else {
                st.mem.alloc(ArrayStore::new(info.ty, dims.clone()))
            };
            frame.arrays.insert(name.clone(), (handle, dims));
        }
        Ok(frame)
    }

    /// Evaluates constant-like expressions for array sizing (PARAMETERs and
    /// already-bound integer scalars).
    fn const_like(&self, e: &Expr, frame: &Frame, _st: &RunState) -> Option<i64> {
        match e {
            Expr::Int(v) => Some(*v),
            Expr::Var(n) => match frame.scalars.get(n) {
                Some(Value::Int(v)) => Some(*v),
                _ => None,
            },
            Expr::Bin(op, a, b) => {
                let (a, b) = (
                    self.const_like(a, frame, _st)?,
                    self.const_like(b, frame, _st)?,
                );
                match op {
                    BinOp::Add => a.checked_add(b),
                    BinOp::Sub => a.checked_sub(b),
                    BinOp::Mul => a.checked_mul(b),
                    _ => None,
                }
            }
            Expr::Un(UnOp::Neg, a) => Some(-self.const_like(a, frame, _st)?),
            _ => None,
        }
    }

    /// Executes a statement list, resolving local GOTOs.
    pub(crate) fn exec_body(
        &self,
        r: &Routine,
        body: &[Stmt],
        frame: &mut Frame,
        st: &mut RunState,
    ) -> Result<Flow, RuntimeError> {
        let mut i = 0usize;
        while i < body.len() {
            match self.exec_stmt(r, &body[i], frame, st)? {
                Flow::Normal => i += 1,
                Flow::Goto(l) => match body.iter().position(|s| s.label == Some(l)) {
                    Some(j) => i = j,
                    None => return Ok(Flow::Goto(l)),
                },
                f @ (Flow::Return | Flow::Stop) => return Ok(f),
            }
        }
        Ok(Flow::Normal)
    }

    fn charge(&self, r: &Routine, st: &mut RunState, n: u64) -> Result<(), RuntimeError> {
        st.stats.ops += n;
        if st.stats.ops > st.budget {
            return Err(RuntimeError::budget_exceeded(&r.name));
        }
        Ok(())
    }

    pub(crate) fn exec_stmt(
        &self,
        r: &Routine,
        s: &Stmt,
        frame: &mut Frame,
        st: &mut RunState,
    ) -> Result<Flow, RuntimeError> {
        self.charge(r, st, 1)?;
        if let Some(tr) = st.tracer.as_mut() {
            tr.set_line(s.line);
        }
        match &s.kind {
            StmtKind::Assign(lhs, rhs) => {
                let v = self.eval(r, rhs, frame, st)?;
                self.store(r, lhs, v, frame, st)?;
                Ok(Flow::Normal)
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self.eval(r, cond, frame, st)?.as_bool();
                if c {
                    self.exec_body(r, then_body, frame, st)
                } else {
                    self.exec_body(r, else_body, frame, st)
                }
            }
            StmtKind::LogicalIf(cond, inner) => {
                let c = self.eval(r, cond, frame, st)?.as_bool();
                if c {
                    self.exec_stmt(r, inner, frame, st)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => self.exec_do(r, var, s.line, lo, hi, step.as_ref(), body, frame, st),
            StmtKind::Goto(l) => Ok(Flow::Goto(*l)),
            StmtKind::Call(name, args) => {
                self.exec_call(r, name, args, frame, st)?;
                Ok(Flow::Normal)
            }
            StmtKind::Return => Ok(Flow::Return),
            StmtKind::Continue => Ok(Flow::Normal),
            StmtKind::Stop => Ok(Flow::Stop),
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn exec_do(
        &self,
        r: &Routine,
        var: &str,
        line: u32,
        lo: &Expr,
        hi: &Expr,
        step: Option<&Expr>,
        body: &[Stmt],
        frame: &mut Frame,
        st: &mut RunState,
    ) -> Result<Flow, RuntimeError> {
        let lo = self.eval(r, lo, frame, st)?.as_i64();
        let hi = self.eval(r, hi, frame, st)?.as_i64();
        let step = match step {
            Some(s) => self.eval(r, s, frame, st)?.as_i64(),
            None => 1,
        };
        if step == 0 {
            return Err(RuntimeError::new(&r.name, "zero DO step"));
        }
        let trips = if step > 0 {
            ((hi - lo) / step + 1).max(0)
        } else {
            ((lo - hi) / (-step) + 1).max(0)
        };

        // Parallel or instrumented execution of the designated loop?
        let is_target = !st.in_target
            && (st.plan.is_some_and(|p| p.matches(&r.name, var, line))
                || st.hook.as_ref().is_some_and(|(hr, hv, hline)| {
                    hr == &r.name && hv == var && hline.is_none_or(|l| l == line)
                }));
        if is_target && st.plan.is_some_and(|p| p.matches(&r.name, var, line)) {
            return run_parallel_do(self, r, var, line, lo, step, trips, body, frame, st);
        }

        if is_target {
            if let Some(tr) = st.tracer.as_mut() {
                // Register the loop routine's own bindings so witnesses
                // carry these names rather than callee dummy names.
                tr.enter_loop(frame);
            }
        }

        let mut iv = lo;
        for _t in 0..trips {
            frame.scalars.insert(var.to_string(), Value::Int(iv));
            let before = st.stats.ops;
            let prev = st.in_target;
            if is_target {
                st.in_target = true;
                if let Some(tr) = st.tracer.as_mut() {
                    tr.begin_iter(iv);
                }
            }
            let flow = self.exec_body(r, body, frame, st)?;
            st.in_target = prev;
            if is_target {
                let cost = st.stats.ops - before;
                st.stats.iter_ops.push(cost);
            }
            match flow {
                Flow::Normal => {}
                Flow::Goto(l) => {
                    // Premature exit: propagate out of the loop.
                    frame.scalars.insert(var.to_string(), Value::Int(iv));
                    return Ok(Flow::Goto(l));
                }
                f @ (Flow::Return | Flow::Stop) => return Ok(f),
            }
            iv += step;
        }
        frame.scalars.insert(var.to_string(), Value::Int(iv));
        Ok(Flow::Normal)
    }

    pub(crate) fn exec_call(
        &self,
        r: &Routine,
        name: &str,
        args: &[Expr],
        frame: &mut Frame,
        st: &mut RunState,
    ) -> Result<(), RuntimeError> {
        let callee = self
            .program
            .routine(name)
            .ok_or_else(|| RuntimeError::new(&r.name, format!("unknown routine {name}")))?;
        // Evaluate bindings.
        let mut bindings = Vec::with_capacity(args.len());
        for (k, a) in args.iter().enumerate() {
            let formal_is_array = self.sema.tables[name]
                .is_array(callee.params.get(k).map(String::as_str).unwrap_or(""));
            match a {
                Expr::Var(n) if frame.arrays.contains_key(n) => {
                    let (h, dims) = frame.arrays[n].clone();
                    bindings.push(Binding::Array(h, dims));
                }
                _ if formal_is_array => {
                    return Err(RuntimeError::new(
                        &r.name,
                        format!("array formal bound to non-array actual in call to {name}"),
                    ));
                }
                _ => bindings.push(Binding::Scalar(self.eval(r, a, frame, st)?)),
            }
        }
        let mut cframe = self.enter_frame(callee, &bindings, st)?;
        match self.exec_body(callee, &callee.body, &mut cframe, st)? {
            Flow::Goto(l) => {
                return Err(RuntimeError::new(name, format!("GOTO {l} escaped routine")))
            }
            Flow::Stop => {
                return Err(RuntimeError::new(name, "STOP inside subroutine"));
            }
            _ => {}
        }
        // Copy-back for scalar Var actuals (Fortran reference semantics).
        for (k, a) in args.iter().enumerate() {
            if let (Expr::Var(n), Some(p)) = (a, callee.params.get(k)) {
                if !frame.arrays.contains_key(n) {
                    if let Some(v) = cframe.scalars.get(p) {
                        frame.scalars.insert(n.clone(), *v);
                    }
                }
            }
        }
        Ok(())
    }

    fn store(
        &self,
        r: &Routine,
        lhs: &LValue,
        v: Value,
        frame: &mut Frame,
        st: &mut RunState,
    ) -> Result<(), RuntimeError> {
        match lhs {
            LValue::Var(n) => {
                let ty = self.sema.tables[&r.name].scalar_ty(n).unwrap_or(Ty::Real);
                frame.scalars.insert(n.clone(), v.coerce(ty));
                Ok(())
            }
            LValue::Element(name, subs) => {
                let mut idx = Vec::with_capacity(subs.len());
                for sexpr in subs {
                    idx.push(self.eval(r, sexpr, frame, st)?.as_i64());
                }
                let (h, dims) =
                    frame.arrays.get(name).cloned().ok_or_else(|| {
                        RuntimeError::new(&r.name, format!("not an array: {name}"))
                    })?;
                let flat =
                    flat_index(&dims, &idx, st.mem.arrays[h].data.len()).ok_or_else(|| {
                        RuntimeError::new(
                            &r.name,
                            format!("subscript out of bounds: {name}{idx:?} dims {dims:?}"),
                        )
                    })?;
                if st.in_target {
                    if let Some(tr) = st.tracer.as_mut() {
                        tr.record_write(h, name, &dims, flat);
                    }
                }
                st.mem.arrays[h].data.set(flat, v);
                Ok(())
            }
        }
    }

    pub(crate) fn eval(
        &self,
        r: &Routine,
        e: &Expr,
        frame: &Frame,
        st: &mut RunState,
    ) -> Result<Value, RuntimeError> {
        self.charge(r, st, 1)?;
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Real(v) => Ok(Value::Real(*v)),
            Expr::Logical(v) => Ok(Value::Logical(*v)),
            Expr::Var(n) => {
                if let Some(c) = self.sema.tables[&r.name].constant(n) {
                    return self.eval(r, c, frame, st);
                }
                frame
                    .scalars
                    .get(n)
                    .copied()
                    .ok_or_else(|| RuntimeError::new(&r.name, format!("unbound scalar {n}")))
            }
            Expr::Index(name, subs) => {
                if frame.arrays.contains_key(name) {
                    let mut idx = Vec::with_capacity(subs.len());
                    for sexpr in subs {
                        idx.push(self.eval(r, sexpr, frame, st)?.as_i64());
                    }
                    let (h, dims) = frame.arrays[name].clone();
                    let flat =
                        flat_index(&dims, &idx, st.mem.arrays[h].data.len()).ok_or_else(|| {
                            RuntimeError::new(
                                &r.name,
                                format!("subscript out of bounds: {name}{idx:?}"),
                            )
                        })?;
                    if st.in_target {
                        if let Some(tr) = st.tracer.as_mut() {
                            tr.record_read(h, name, &dims, flat);
                        }
                    }
                    Ok(st.mem.arrays[h].data.get(flat))
                } else {
                    self.intrinsic(r, name, subs, frame, st)
                }
            }
            Expr::Un(UnOp::Neg, a) => {
                let v = self.eval(r, a, frame, st)?;
                Ok(match v {
                    Value::Int(x) => Value::Int(-x),
                    Value::Real(x) => Value::Real(-x),
                    Value::Logical(_) => {
                        return Err(RuntimeError::new(&r.name, "negating a LOGICAL"))
                    }
                })
            }
            Expr::Un(UnOp::Not, a) => {
                let v = self.eval(r, a, frame, st)?.as_bool();
                Ok(Value::Logical(!v))
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(r, a, frame, st)?;
                let vb = self.eval(r, b, frame, st)?;
                self.binop(r, *op, va, vb)
            }
        }
    }

    fn binop(&self, r: &Routine, op: BinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
        use BinOp::*;
        let both_int = matches!(a, Value::Int(_)) && matches!(b, Value::Int(_));
        Ok(match op {
            Add | Sub | Mul | Div | Pow => {
                if both_int {
                    let (x, y) = (a.as_i64(), b.as_i64());
                    let v = match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => {
                            if y == 0 {
                                return Err(RuntimeError::new(&r.name, "integer division by 0"));
                            }
                            x / y
                        }
                        Pow => {
                            if y < 0 {
                                0
                            } else {
                                x.checked_pow(y.min(62) as u32).unwrap_or(i64::MAX)
                            }
                        }
                        _ => unreachable!(),
                    };
                    Value::Int(v)
                } else {
                    let (x, y) = (a.as_f64(), b.as_f64());
                    let v = match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => x / y,
                        Pow => x.powf(y),
                        _ => unreachable!(),
                    };
                    Value::Real(v)
                }
            }
            Lt | Le | Gt | Ge | Eq | Ne => {
                let (x, y) = (a.as_f64(), b.as_f64());
                Value::Logical(match op {
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    Eq => x == y,
                    Ne => x != y,
                    _ => unreachable!(),
                })
            }
            And => Value::Logical(a.as_bool() && b.as_bool()),
            Or => Value::Logical(a.as_bool() || b.as_bool()),
        })
    }

    fn intrinsic(
        &self,
        r: &Routine,
        name: &str,
        args: &[Expr],
        frame: &Frame,
        st: &mut RunState,
    ) -> Result<Value, RuntimeError> {
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            vals.push(self.eval(r, a, frame, st)?);
        }
        let f1 = |v: &[Value]| v[0].as_f64();
        Ok(match (name, vals.as_slice()) {
            ("max" | "max0" | "amax1", v) if !v.is_empty() => {
                let any_real = v.iter().any(|x| matches!(x, Value::Real(_)));
                if any_real || name == "amax1" {
                    Value::Real(v.iter().map(|x| x.as_f64()).fold(f64::MIN, f64::max))
                } else {
                    Value::Int(v.iter().map(|x| x.as_i64()).max().unwrap())
                }
            }
            ("min" | "min0" | "amin1", v) if !v.is_empty() => {
                let any_real = v.iter().any(|x| matches!(x, Value::Real(_)));
                if any_real || name == "amin1" {
                    Value::Real(v.iter().map(|x| x.as_f64()).fold(f64::MAX, f64::min))
                } else {
                    Value::Int(v.iter().map(|x| x.as_i64()).min().unwrap())
                }
            }
            ("mod", [a, b]) => match (a, b) {
                (Value::Int(x), Value::Int(y)) => {
                    if *y == 0 {
                        return Err(RuntimeError::new(&r.name, "MOD by zero"));
                    }
                    Value::Int(x % y)
                }
                _ => Value::Real(a.as_f64() % b.as_f64()),
            },
            ("abs", [Value::Int(x)]) | ("iabs", [Value::Int(x)]) => Value::Int(x.abs()),
            ("abs", v) if v.len() == 1 => Value::Real(f1(v).abs()),
            ("sqrt", v) if v.len() == 1 => Value::Real(f1(v).sqrt()),
            ("exp", v) if v.len() == 1 => Value::Real(f1(v).exp()),
            ("log", v) if v.len() == 1 => Value::Real(f1(v).ln()),
            ("sin", v) if v.len() == 1 => Value::Real(f1(v).sin()),
            ("cos", v) if v.len() == 1 => Value::Real(f1(v).cos()),
            ("tan", v) if v.len() == 1 => Value::Real(f1(v).tan()),
            ("atan", v) if v.len() == 1 => Value::Real(f1(v).atan()),
            ("float" | "real" | "dble", v) if v.len() == 1 => Value::Real(f1(v)),
            ("int", v) if v.len() == 1 => Value::Int(v[0].as_i64()),
            ("nint", v) if v.len() == 1 => Value::Int(f1(v).round() as i64),
            ("sign", [a, b]) => {
                let m = a.as_f64().abs();
                Value::Real(if b.as_f64() < 0.0 { -m } else { m })
            }
            ("dim", [a, b]) => Value::Real((a.as_f64() - b.as_f64()).max(0.0)),
            _ => {
                return Err(RuntimeError::new(
                    &r.name,
                    format!("unknown intrinsic/array {name} with {} args", args.len()),
                ))
            }
        })
    }
}

/// Column-major flat index against view dims, with sequence association
/// for 1-D access into multi-dim storage.
pub(crate) fn flat_index(dims: &[(i64, i64)], subs: &[i64], len: usize) -> Option<usize> {
    if subs.len() != dims.len() {
        if subs.len() == 1 && !dims.is_empty() {
            let k = subs[0] - dims[0].0;
            if k >= 0 && (k as usize) < len {
                return Some(k as usize);
            }
        }
        return None;
    }
    let mut idx: i64 = 0;
    let mut stride: i64 = 1;
    for (&s, &(l, u)) in subs.iter().zip(dims) {
        if s < l || s > u {
            return None;
        }
        idx += (s - l) * stride;
        stride *= u - l + 1;
    }
    usize::try_from(idx).ok().filter(|&k| k < len)
}

/// An argument binding for a call.
#[derive(Clone, Debug)]
pub(crate) enum Binding {
    Scalar(Value),
    Array(usize, Vec<(i64, i64)>),
}
