//! Shadow-memory access tracing: the dynamic half of the race oracle.
//!
//! While the interpreter executes a designated DO loop sequentially, the
//! [`Tracer`] records every array-element access made inside the loop
//! body (including accesses from called subroutines) as
//! `(iteration, element, read|write, source line)`. Element identity is
//! the pair *(memory handle, flat offset)*, so aliased views of one
//! array — sequence association, COMMON, dummy arguments — coalesce
//! correctly even when routines use different names or shapes.
//!
//! Cross-iteration conflicts are classified online into the dynamic
//! counterparts of the paper's compile-time tests:
//!
//! * **flow** (`UE_i ∩ MOD_<i`): an upward-exposed read — no write to
//!   the element earlier in the same iteration — observing a value
//!   written by an earlier iteration;
//! * **anti** (`DE_i ∩ MOD_>i`): a read whose element is overwritten by
//!   a later iteration;
//! * **output** (`MOD_i ∩ (MOD_<i ∪ MOD_>i)`): writes to the same
//!   element from two different iterations.
//!
//! The per-element shadow state is O(1) — last write, last read, first
//! upward-exposed read — which suffices because sequential execution
//! delivers accesses in iteration order.

use crate::exec::Frame;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Dynamic dependence class of a cross-iteration conflict.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum RaceClass {
    /// Write in an earlier iteration, upward-exposed read in a later one.
    Flow,
    /// Read in an earlier iteration, write in a later one.
    Anti,
    /// Writes in two different iterations.
    Output,
}

impl std::fmt::Display for RaceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RaceClass::Flow => "flow",
            RaceClass::Anti => "anti",
            RaceClass::Output => "output",
        })
    }
}

/// One concrete conflicting access pair, suitable for a diagnostic.
#[derive(Clone, Debug, Serialize)]
pub struct RaceWitness {
    /// Array name (as bound in the loop's routine when possible).
    pub array: String,
    /// Dependence class.
    pub class: RaceClass,
    /// Fortran subscripts of the conflicting element.
    pub element: Vec<i64>,
    /// Iteration of the earlier access (induction-variable value).
    pub earlier_iter: i64,
    /// Iteration of the later access.
    pub later_iter: i64,
    /// 1-based source line of the earlier access (0 if unknown).
    pub earlier_line: u32,
    /// 1-based source line of the later access.
    pub later_line: u32,
}

/// Dynamic conflict summary for one array over the traced loop.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ArrayRaces {
    /// Elements with a loop-carried flow conflict.
    pub flow_elems: u64,
    /// Elements with a loop-carried anti conflict.
    pub anti_elems: u64,
    /// Elements with a loop-carried output conflict.
    pub output_elems: u64,
    /// First flow witness.
    pub flow_witness: Option<RaceWitness>,
    /// First anti witness.
    pub anti_witness: Option<RaceWitness>,
    /// First output witness.
    pub output_witness: Option<RaceWitness>,
    /// Some element had an upward-exposed read while another iteration
    /// wrote it (either order). A per-iteration private copy of the
    /// array would leave that read uninitialized, so privatization is
    /// unsound for this array when this is set.
    pub ue_write_conflict: bool,
}

impl ArrayRaces {
    /// Any cross-iteration conflict at all?
    pub fn has_conflict(&self) -> bool {
        self.flow_elems + self.anti_elems + self.output_elems > 0
    }

    /// The witness of `class`, if one was recorded.
    pub fn witness(&self, class: RaceClass) -> Option<&RaceWitness> {
        match class {
            RaceClass::Flow => self.flow_witness.as_ref(),
            RaceClass::Anti => self.anti_witness.as_ref(),
            RaceClass::Output => self.output_witness.as_ref(),
        }
    }

    /// Classes observed on this array, in a stable order.
    pub fn classes(&self) -> Vec<RaceClass> {
        let mut v = Vec::new();
        if self.flow_elems > 0 {
            v.push(RaceClass::Flow);
        }
        if self.anti_elems > 0 {
            v.push(RaceClass::Anti);
        }
        if self.output_elems > 0 {
            v.push(RaceClass::Output);
        }
        v
    }
}

/// The result of tracing one loop: per-array dynamic conflict summaries.
#[derive(Clone, Debug, Serialize)]
pub struct LoopTrace {
    /// Routine containing the traced loop.
    pub routine: String,
    /// Loop induction variable.
    pub var: String,
    /// Iterations the loop actually executed.
    pub iterations: u64,
    /// Conflict summary per array (only arrays accessed in the loop).
    pub arrays: BTreeMap<String, ArrayRaces>,
}

impl LoopTrace {
    /// Summary for one array (None = never accessed in the loop).
    pub fn array(&self, name: &str) -> Option<&ArrayRaces> {
        self.arrays.get(name)
    }

    /// Arrays with at least one cross-iteration conflict.
    pub fn racy_arrays(&self) -> impl Iterator<Item = (&String, &ArrayRaces)> {
        self.arrays.iter().filter(|(_, r)| r.has_conflict())
    }
}

#[derive(Default)]
struct ElemState {
    /// Loop execution this state belongs to; accesses from different
    /// executions of the target loop are never loop-carried conflicts.
    instance: u32,
    /// Iteration and line of the most recent write.
    last_write: Option<(i64, u32)>,
    /// Iteration and line of the most recent read (any read).
    last_read: Option<(i64, u32)>,
    /// First upward-exposed read (read with no earlier write in the same
    /// iteration).
    first_ue_read: Option<(i64, u32)>,
    flagged_flow: bool,
    flagged_anti: bool,
    flagged_output: bool,
}

impl ElemState {
    /// Clears per-execution state when a new execution of the target
    /// loop begins (e.g. the loop is nested inside an outer loop, or two
    /// sibling loops share the index variable). Accumulated array-level
    /// race counts are kept; only the carried-dependence bookkeeping
    /// resets.
    fn roll_instance(&mut self, instance: u32) {
        if self.instance != instance {
            *self = ElemState {
                instance,
                ..ElemState::default()
            };
        }
    }
}

struct ArrayShadow {
    name: String,
    dims: Vec<(i64, i64)>,
    elems: HashMap<usize, ElemState>,
    races: ArrayRaces,
}

/// Online shadow-memory recorder attached to a sequential run.
pub(crate) struct Tracer {
    cur_iter: i64,
    cur_line: u32,
    cur_instance: u32,
    iterations: u64,
    arrays: HashMap<usize, ArrayShadow>,
}

impl Tracer {
    pub(crate) fn new() -> Tracer {
        Tracer {
            cur_iter: 0,
            cur_line: 0,
            cur_instance: 0,
            iterations: 0,
            arrays: HashMap::new(),
        }
    }

    /// Registers the target routine's own array bindings so witnesses
    /// report the names visible at the loop, not callee dummy names.
    /// Called once per dynamic execution of the target loop; each
    /// execution is a separate instance for conflict detection.
    pub(crate) fn enter_loop(&mut self, frame: &Frame) {
        self.cur_instance = self.cur_instance.wrapping_add(1);
        for (name, (handle, dims)) in &frame.arrays {
            self.arrays.entry(*handle).or_insert_with(|| ArrayShadow {
                name: name.clone(),
                dims: dims.clone(),
                elems: HashMap::new(),
                races: ArrayRaces::default(),
            });
        }
    }

    pub(crate) fn begin_iter(&mut self, iv: i64) {
        self.cur_iter = iv;
        self.iterations += 1;
    }

    pub(crate) fn set_line(&mut self, line: u32) {
        if line != 0 {
            self.cur_line = line;
        }
    }

    fn shadow(&mut self, handle: usize, name: &str, dims: &[(i64, i64)]) -> &mut ArrayShadow {
        self.arrays.entry(handle).or_insert_with(|| ArrayShadow {
            name: name.to_string(),
            dims: dims.to_vec(),
            elems: HashMap::new(),
            races: ArrayRaces::default(),
        })
    }

    pub(crate) fn record_read(
        &mut self,
        handle: usize,
        name: &str,
        dims: &[(i64, i64)],
        flat: usize,
    ) {
        let (iter, line, inst) = (self.cur_iter, self.cur_line, self.cur_instance);
        let sh = self.shadow(handle, name, dims);
        let e = sh.elems.entry(flat).or_default();
        e.roll_instance(inst);
        let covered = matches!(e.last_write, Some((w, _)) if w == iter);
        if !covered {
            // Upward-exposed read: the value comes from before this
            // iteration. A write by an *earlier* iteration makes it a
            // loop-carried flow dependence.
            if let Some((w_iter, w_line)) = e.last_write {
                if !e.flagged_flow {
                    e.flagged_flow = true;
                    sh.races.flow_elems += 1;
                    sh.races.ue_write_conflict = true;
                    if sh.races.flow_witness.is_none() {
                        sh.races.flow_witness = Some(RaceWitness {
                            array: sh.name.clone(),
                            class: RaceClass::Flow,
                            element: subscripts(&sh.dims, flat),
                            earlier_iter: w_iter,
                            later_iter: iter,
                            earlier_line: w_line,
                            later_line: line,
                        });
                    }
                }
            }
            if e.first_ue_read.is_none() {
                e.first_ue_read = Some((iter, line));
            }
        }
        e.last_read = Some((iter, line));
    }

    pub(crate) fn record_write(
        &mut self,
        handle: usize,
        name: &str,
        dims: &[(i64, i64)],
        flat: usize,
    ) {
        let (iter, line, inst) = (self.cur_iter, self.cur_line, self.cur_instance);
        let sh = self.shadow(handle, name, dims);
        let e = sh.elems.entry(flat).or_default();
        e.roll_instance(inst);
        if let Some((r_iter, r_line)) = e.last_read {
            if r_iter < iter && !e.flagged_anti {
                e.flagged_anti = true;
                sh.races.anti_elems += 1;
                if sh.races.anti_witness.is_none() {
                    sh.races.anti_witness = Some(RaceWitness {
                        array: sh.name.clone(),
                        class: RaceClass::Anti,
                        element: subscripts(&sh.dims, flat),
                        earlier_iter: r_iter,
                        later_iter: iter,
                        earlier_line: r_line,
                        later_line: line,
                    });
                }
            }
        }
        if let Some((w_iter, w_line)) = e.last_write {
            if w_iter < iter && !e.flagged_output {
                e.flagged_output = true;
                sh.races.output_elems += 1;
                if sh.races.output_witness.is_none() {
                    sh.races.output_witness = Some(RaceWitness {
                        array: sh.name.clone(),
                        class: RaceClass::Output,
                        element: subscripts(&sh.dims, flat),
                        earlier_iter: w_iter,
                        later_iter: iter,
                        earlier_line: w_line,
                        later_line: line,
                    });
                }
            }
        }
        if let Some((u_iter, _)) = e.first_ue_read {
            if u_iter != iter {
                // Read of the incoming value in one iteration, write in
                // another: a private uninitialized copy would change the
                // value that read observes.
                sh.races.ue_write_conflict = true;
            }
        }
        e.last_write = Some((iter, line));
    }

    pub(crate) fn finish(self, routine: &str, var: &str) -> LoopTrace {
        let mut arrays = BTreeMap::new();
        for sh in self.arrays.into_values() {
            // Arrays never touched inside the loop were only registered;
            // skip them so the report lists actual loop accesses.
            if sh.elems.is_empty() {
                continue;
            }
            arrays.insert(sh.name, sh.races);
        }
        LoopTrace {
            routine: routine.to_string(),
            var: var.to_string(),
            iterations: self.iterations,
            arrays,
        }
    }
}

/// Inverts the column-major flat offset into Fortran subscripts.
fn subscripts(dims: &[(i64, i64)], flat: usize) -> Vec<i64> {
    if dims.is_empty() {
        return vec![flat as i64];
    }
    let mut k = flat as i64;
    let mut subs = Vec::with_capacity(dims.len());
    for &(l, u) in dims {
        let size = (u - l + 1).max(1);
        subs.push(l + k % size);
        k /= size;
    }
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscripts_invert_column_major() {
        // dims (1:3, 1:2): flat 4 = (2, 2)
        assert_eq!(subscripts(&[(1, 3), (1, 2)], 4), vec![2, 2]);
        assert_eq!(subscripts(&[(0, 9)], 7), vec![7]);
    }

    #[test]
    fn flow_detected_on_ue_read_after_write() {
        let mut t = Tracer::new();
        t.begin_iter(1);
        t.set_line(10);
        t.record_write(0, "a", &[(1, 10)], 3);
        t.begin_iter(2);
        t.set_line(11);
        t.record_read(0, "a", &[(1, 10)], 3);
        let trace = t.finish("main", "i");
        let a = trace.array("a").unwrap();
        assert_eq!(a.flow_elems, 1);
        let w = a.flow_witness.as_ref().unwrap();
        assert_eq!((w.earlier_iter, w.later_iter), (1, 2));
        assert_eq!((w.earlier_line, w.later_line), (10, 11));
        assert_eq!(w.element, vec![4]);
        assert!(a.ue_write_conflict);
    }

    #[test]
    fn covered_read_is_not_flow() {
        let mut t = Tracer::new();
        for iv in 1..=3 {
            t.begin_iter(iv);
            t.set_line(5);
            t.record_write(0, "w", &[(1, 4)], 0);
            t.set_line(6);
            t.record_read(0, "w", &[(1, 4)], 0);
        }
        let trace = t.finish("main", "i");
        let w = trace.array("w").unwrap();
        assert_eq!(w.flow_elems, 0, "read is covered by same-iteration write");
        assert_eq!(w.output_elems, 1, "rewrites across iterations are output");
        assert_eq!(w.anti_elems, 1, "read then later write is anti");
        assert!(!w.ue_write_conflict, "privatization rescues this array");
    }

    #[test]
    fn anti_only_when_read_comes_first() {
        let mut t = Tracer::new();
        t.begin_iter(1);
        t.record_read(0, "b", &[(1, 8)], 2);
        t.begin_iter(2);
        t.record_write(0, "b", &[(1, 8)], 2);
        let trace = t.finish("main", "i");
        let b = trace.array("b").unwrap();
        assert_eq!(b.anti_elems, 1);
        assert_eq!(b.flow_elems, 0);
        assert!(b.ue_write_conflict, "ue read then foreign write");
    }

    #[test]
    fn separate_loop_executions_do_not_conflict() {
        let mut t = Tracer::new();
        // First execution of the target loop writes element 2 …
        t.enter_loop(&Frame::default());
        t.begin_iter(1);
        t.record_write(0, "a", &[(1, 8)], 2);
        // … a later execution (sibling loop / outer-loop re-entry) reads
        // it. Same induction values, but no loop-carried dependence.
        t.enter_loop(&Frame::default());
        t.begin_iter(1);
        t.record_read(0, "a", &[(1, 8)], 2);
        t.begin_iter(2);
        t.record_write(0, "a", &[(1, 8)], 2);
        let trace = t.finish("main", "i");
        let a = trace.array("a").unwrap();
        assert_eq!(a.flow_elems, 0, "cross-execution write/read is not carried");
        // Within the second execution: ue read at iter 1, write at iter 2.
        assert_eq!(a.anti_elems, 1);
        assert!(a.ue_write_conflict);
    }

    #[test]
    fn disjoint_elements_race_free() {
        let mut t = Tracer::new();
        for iv in 0..4 {
            t.begin_iter(iv);
            t.record_write(0, "a", &[(1, 8)], iv as usize);
            t.record_read(0, "a", &[(1, 8)], iv as usize);
        }
        let trace = t.finish("main", "i");
        let a = trace.array("a").unwrap();
        assert!(!a.has_conflict());
        assert!(!a.ue_write_conflict);
    }
}
