//! Runtime values and memory.

use fortran::{DimBound, Ty};

/// A scalar runtime value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Value {
    /// INTEGER
    Int(i64),
    /// REAL
    Real(f64),
    /// LOGICAL
    Logical(bool),
}

impl Value {
    /// Zero of a type.
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(0),
            Ty::Real => Value::Real(0.0),
            Ty::Logical => Value::Logical(false),
        }
    }

    /// Numeric view as f64 (logicals are 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Real(v) => v,
            Value::Logical(b) => b as i64 as f64,
        }
    }

    /// Integer view (reals truncate, Fortran INT).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Real(v) => v as i64,
            Value::Logical(b) => b as i64,
        }
    }

    /// Truthiness.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Logical(b) => b,
            Value::Int(v) => v != 0,
            Value::Real(v) => v != 0.0,
        }
    }

    /// Coerces to a target type (Fortran assignment conversion).
    pub fn coerce(self, ty: Ty) -> Value {
        match ty {
            Ty::Integer => Value::Int(self.as_i64()),
            Ty::Real => Value::Real(self.as_f64()),
            Ty::Logical => Value::Logical(self.as_bool()),
        }
    }
}

/// Homogeneous array payload.
#[derive(Clone, PartialEq, Debug)]
pub enum ArrayData {
    /// INTEGER elements.
    Int(Vec<i64>),
    /// REAL elements.
    Real(Vec<f64>),
    /// LOGICAL elements.
    Logical(Vec<bool>),
}

impl ArrayData {
    fn new(ty: Ty, len: usize) -> ArrayData {
        match ty {
            Ty::Integer => ArrayData::Int(vec![0; len]),
            Ty::Real => ArrayData::Real(vec![0.0; len]),
            Ty::Logical => ArrayData::Logical(vec![false; len]),
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::Int(v) => v.len(),
            ArrayData::Real(v) => v.len(),
            ArrayData::Logical(v) => v.len(),
        }
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reads element `k`.
    pub fn get(&self, k: usize) -> Value {
        match self {
            ArrayData::Int(v) => Value::Int(v[k]),
            ArrayData::Real(v) => Value::Real(v[k]),
            ArrayData::Logical(v) => Value::Logical(v[k]),
        }
    }

    /// Writes element `k`, coercing.
    pub fn set(&mut self, k: usize, value: Value) {
        match self {
            ArrayData::Int(v) => v[k] = value.as_i64(),
            ArrayData::Real(v) => v[k] = value.as_f64(),
            ArrayData::Logical(v) => v[k] = value.as_bool(),
        }
    }
}

/// One allocated array: column-major like Fortran, with per-dimension
/// inclusive bounds.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayStore {
    /// Element type.
    pub ty: Ty,
    /// Per-dimension `(lower, upper)` bounds.
    pub dims: Vec<(i64, i64)>,
    /// The elements.
    pub data: ArrayData,
}

impl ArrayStore {
    /// Allocates with zeroed contents.
    pub fn new(ty: Ty, dims: Vec<(i64, i64)>) -> ArrayStore {
        let len = dims
            .iter()
            .map(|&(l, u)| (u - l + 1).max(0) as usize)
            .product();
        ArrayStore {
            ty,
            dims,
            data: ArrayData::new(ty, len),
        }
    }

    /// Flattens subscripts (column-major). `None` if out of bounds or rank
    /// mismatch.
    pub fn flat_index(&self, subs: &[i64]) -> Option<usize> {
        if subs.len() != self.dims.len() {
            // Fortran sequence association: allow linearized access of a
            // multi-dim array through fewer subscripts (classic F77).
            if subs.len() == 1 {
                let k = subs[0] - self.dims[0].0;
                if k >= 0 && (k as usize) < self.data.len() {
                    return Some(k as usize);
                }
            }
            return None;
        }
        let mut idx: i64 = 0;
        let mut stride: i64 = 1;
        for (&s, &(l, u)) in subs.iter().zip(&self.dims) {
            if s < l || s > u {
                return None;
            }
            idx += (s - l) * stride;
            stride *= u - l + 1;
        }
        usize::try_from(idx).ok().filter(|&k| k < self.data.len())
    }
}

/// Builds dimension bounds from declarators, resolving symbolic extents
/// with `resolve`. Assumed-size `(*)` dimensions get the provided default
/// extent.
pub fn resolve_dims(
    decl: &[DimBound],
    mut resolve: impl FnMut(&fortran::Expr) -> Option<i64>,
    assumed_extent: i64,
) -> Option<Vec<(i64, i64)>> {
    decl.iter()
        .map(|d| match d {
            DimBound::Upper(e) => Some((1, resolve(e)?)),
            DimBound::Both(l, u) => Some((resolve(l)?, resolve(u)?)),
            DimBound::Assumed => Some((1, assumed_extent)),
        })
        .collect()
}

/// Program memory: an arena of arrays plus named scalar cells per frame
/// (frames are managed by the interpreter).
#[derive(Clone, Debug, Default)]
pub struct Memory {
    /// All allocated arrays, addressed by handle.
    pub arrays: Vec<ArrayStore>,
}

impl Memory {
    /// Allocates an array and returns its handle.
    pub fn alloc(&mut self, store: ArrayStore) -> usize {
        self.arrays.push(store);
        self.arrays.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Real(2.7).as_i64(), 2);
        assert!(Value::Int(1).as_bool());
        assert_eq!(Value::Real(2.7).coerce(Ty::Integer), Value::Int(2));
        assert_eq!(Value::Int(2).coerce(Ty::Real), Value::Real(2.0));
    }

    #[test]
    fn array_flat_index_1d() {
        let a = ArrayStore::new(Ty::Real, vec![(1, 10)]);
        assert_eq!(a.flat_index(&[1]), Some(0));
        assert_eq!(a.flat_index(&[10]), Some(9));
        assert_eq!(a.flat_index(&[0]), None);
        assert_eq!(a.flat_index(&[11]), None);
    }

    #[test]
    fn array_flat_index_2d_column_major() {
        let a = ArrayStore::new(Ty::Real, vec![(1, 3), (1, 4)]);
        assert_eq!(a.flat_index(&[1, 1]), Some(0));
        assert_eq!(a.flat_index(&[2, 1]), Some(1));
        assert_eq!(a.flat_index(&[1, 2]), Some(3));
        assert_eq!(a.flat_index(&[3, 4]), Some(11));
    }

    #[test]
    fn array_custom_lower_bounds() {
        let a = ArrayStore::new(Ty::Integer, vec![(0, 4)]);
        assert_eq!(a.flat_index(&[0]), Some(0));
        assert_eq!(a.flat_index(&[4]), Some(4));
    }

    #[test]
    fn sequence_association() {
        // 1-D access into a 2-D array (classic F77 linearization).
        let a = ArrayStore::new(Ty::Real, vec![(1, 3), (1, 4)]);
        assert_eq!(a.flat_index(&[5]), Some(4));
    }

    #[test]
    fn data_get_set() {
        let mut a = ArrayStore::new(Ty::Real, vec![(1, 5)]);
        let k = a.flat_index(&[3]).unwrap();
        a.data.set(k, Value::Real(2.5));
        assert_eq!(a.data.get(k), Value::Real(2.5));
        // coercion on set
        a.data.set(k, Value::Int(7));
        assert_eq!(a.data.get(k), Value::Real(7.0));
    }
}
