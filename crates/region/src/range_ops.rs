//! Guarded set operations on ranges.
//!
//! Operations take a *context predicate* — typically the conjunction of the
//! operand GARs' guards — so that comparisons which are not decidable from
//! the expressions alone (`min(1, a+1)`) can be settled from facts the
//! guards already carry (`1 <= a`), the way the paper's Fig. 5 derivation
//! uses `jlow <= jmax <= jup`.
//!
//! Every operation returns a list of `(Pred, Range)` cases: the piece
//! `Range` is part of the result exactly when its `Pred` holds (in
//! conjunction with the operands' own guards, which the caller re-attaches).
//! Produced guards include the validity `lo <= hi` of the produced range.
//! `None` means the operation could not be represented (the caller marks the
//! dimension Ω / keeps the operands separate).

use crate::range::Range;
use pred::Pred;
use sym::{compare, Expr, SymOrdering};

/// A guarded value: the value holds under the predicate.
pub type Guarded<T> = (Pred, T);

/// Proves `a <= b` from normalization or from the context.
pub fn prove_le(ctx: &Pred, a: &Expr, b: &Expr) -> bool {
    compare(a, b).is_le() || ctx.implies(&Pred::le(a.clone(), b.clone()))
}

/// Proves `a < b`.
pub fn prove_lt(ctx: &Pred, a: &Expr, b: &Expr) -> bool {
    compare(a, b) == SymOrdering::Less || ctx.implies(&Pred::lt(a.clone(), b.clone()))
}

/// Proves `a == b`.
pub fn prove_eq(ctx: &Pred, a: &Expr, b: &Expr) -> bool {
    compare(a, b) == SymOrdering::Equal || ctx.implies(&Pred::eq(a.clone(), b.clone()))
}

/// Case analysis for `min`/`max` elimination: which of `a`, `b` is smaller,
/// decided from normalization or context, else `Unknown` (case split).
fn order_under(ctx: &Pred, a: &Expr, b: &Expr) -> SymOrdering {
    match compare(a, b) {
        SymOrdering::Unknown => {
            if prove_le(ctx, a, b) {
                // a <= b suffices to pick min/max deterministically.
                SymOrdering::Less
            } else if prove_le(ctx, b, a) {
                SymOrdering::Greater
            } else {
                SymOrdering::Unknown
            }
        }
        known => known,
    }
}

/// The `min`-elimination cases: pairs of (condition, chosen expression).
/// One case when the order is provable, two guarded cases otherwise.
/// Public because loop expansion (the `gar` crate) eliminates the
/// `max(l', l) <= i <= min(u', u)` bounds of §4.1 the same way.
pub fn min_cases(ctx: &Pred, a: &Expr, b: &Expr) -> Vec<Guarded<Expr>> {
    match order_under(ctx, a, b) {
        SymOrdering::Less | SymOrdering::Equal => vec![(Pred::tru(), a.clone())],
        SymOrdering::Greater => vec![(Pred::tru(), b.clone())],
        SymOrdering::Unknown => vec![
            (Pred::le(a.clone(), b.clone()), a.clone()),
            (Pred::lt(b.clone(), a.clone()), b.clone()),
        ],
    }
}

/// The `max`-elimination cases. See [`min_cases`].
pub fn max_cases(ctx: &Pred, a: &Expr, b: &Expr) -> Vec<Guarded<Expr>> {
    match order_under(ctx, a, b) {
        SymOrdering::Less | SymOrdering::Equal => vec![(Pred::tru(), b.clone())],
        SymOrdering::Greater => vec![(Pred::tru(), a.clone())],
        SymOrdering::Unknown => vec![
            (Pred::le(a.clone(), b.clone()), b.clone()),
            (Pred::lt(b.clone(), a.clone()), a.clone()),
        ],
    }
}

/// Alignment of two const-step ranges: `Some(true)` if `l1 ≡ l2 (mod c)`,
/// `Some(false)` if provably misaligned, `None` if undecidable.
fn aligned(l1: &Expr, l2: &Expr, c: i64) -> Option<bool> {
    sym::diff_const(l1, l2).map(|d| d.rem_euclid(c) == 0)
}

/// Intersection `r1 ∩ r2` (§3 four-case formula; §5.1 step cases).
///
/// `None` means the result is not representable (mark Ω). An empty list
/// means provably empty.
pub fn range_intersect(ctx: &Pred, r1: &Range, r2: &Range) -> Option<Vec<Guarded<Range>>> {
    if r1 == r2 {
        return Some(vec![(Pred::tru(), r1.clone())]);
    }
    // A singleton meets any grid iff it lies within the bounds and on the
    // grid — decidable regardless of step mismatches (this is what proves
    // `a(i)` independent of `a(1 : i−2 : 2)` in strided loops).
    if r1.is_singleton() || r2.is_singleton() {
        let (single, other) = if r1.is_singleton() {
            (r1, r2)
        } else {
            (r2, r1)
        };
        let x = single.lo.clone();
        let mut guard =
            Pred::le(other.lo.clone(), x.clone()).and(&Pred::le(x.clone(), other.hi.clone()));
        match (other.const_step(), sym::diff_const(&x, &other.lo)) {
            (Some(1), _) => {}
            (Some(s), Some(d)) if s > 1 => {
                if d.rem_euclid(s) != 0 {
                    return Some(Vec::new()); // off the grid
                }
            }
            _ => {
                // Grid membership undecidable: keep the bounds condition
                // but mark the piece inexact.
                guard = guard.and(&Pred::unknown());
            }
        }
        if guard.is_false() {
            return Some(Vec::new());
        }
        return Some(vec![(guard, Range::unit(x))]);
    }
    let s1 = r1.const_step();
    let s2 = r2.const_step();
    let step = match (s1, s2) {
        // §5.1 case 1: both steps 1.
        (Some(1), Some(1)) => Expr::one(),
        // §5.1 case 2: equal constant step c > 1 — intersect only when the
        // grids align.
        (Some(a), Some(b)) if a == b && a > 1 => match aligned(&r1.lo, &r2.lo, a) {
            Some(true) => Expr::from(a),
            Some(false) => return Some(Vec::new()), // provably disjoint grids
            None => return None,
        },
        // §5.1 case 3: identical symbolic steps with identical lower bounds.
        _ if r1.step == r2.step && r1.lo == r2.lo => r1.step.clone(),
        // §5.1 case 4: s2 divides s1 — only the covering case is exact.
        (Some(a), Some(b)) if b >= 1 && a >= 1 && a % b == 0 && covers(ctx, r2, r1, b) => {
            return Some(vec![(Pred::tru(), r1.clone())]);
        }
        (Some(a), Some(b)) if a >= 1 && b >= 1 && b % a == 0 && covers(ctx, r1, r2, a) => {
            return Some(vec![(Pred::tru(), r2.clone())]);
        }
        // §5.1 case 5: anything else is unknown.
        _ => return None,
    };

    let mut out = Vec::new();
    for (pl, lo) in max_cases(ctx, &r1.lo, &r2.lo) {
        for (pu, hi) in min_cases(ctx, &r1.hi, &r2.hi) {
            let piece = Range::new(lo.clone(), hi.clone(), step.clone());
            if piece.definitely_empty() {
                continue;
            }
            let guard = pl.and(&pu).and(&piece.validity());
            if guard.is_false() {
                continue;
            }
            out.push((guard, piece));
        }
    }
    Some(out)
}

/// Does `outer` provably cover `inner` (same grid, enclosing bounds)?
/// `grid` is the coarser (inner) step; both steps must be constant.
fn covers(ctx: &Pred, outer: &Range, inner: &Range, _grid: i64) -> bool {
    let (Some(so), Some(_si)) = (outer.const_step(), inner.const_step()) else {
        return false;
    };
    prove_le(ctx, &outer.lo, &inner.lo)
        && prove_le(ctx, &inner.hi, &outer.hi)
        && aligned(&inner.lo, &outer.lo, so) == Some(true)
}

/// Difference `r1 − r2`.
///
/// Returns the guarded pieces of `r1` that survive. The enumeration case-
/// splits on the relative position of the ranges; under each case the
/// surviving pieces are a left part `(l1 : d.lo − s : s)` and a right part
/// `(d.hi + s : u1 : s)` around the intersection `d`, plus the whole of
/// `r1` in cases where the intersection is empty — following §5.1 with the
/// `max`/`min` operators replaced by explicit guard inequalities.
///
/// `None` means not representable; the caller must keep `r1` and mark the
/// result inexact.
pub fn range_subtract(ctx: &Pred, r1: &Range, r2: &Range) -> Option<Vec<Guarded<Range>>> {
    if r1 == r2 {
        return Some(Vec::new());
    }
    let s1 = r1.const_step();
    let s2 = r2.const_step();
    let step = match (s1, s2) {
        (Some(1), Some(1)) => 1i64,
        (Some(a), Some(b)) if a == b && a > 1 => match aligned(&r1.lo, &r2.lo, a) {
            // Misaligned grids never meet: nothing is removed.
            Some(false) => return Some(vec![(Pred::tru(), r1.clone())]),
            // Aligned: need constant bounds for exact hi-snapping below.
            Some(true) => a,
            None => return None,
        },
        _ if r1.step == r2.step && r1.lo == r2.lo => {
            // Symbolic but identical steps from the same origin: treat like
            // step 1 on the shared grid (positions map 1:1).
            return subtract_same_grid(ctx, r1, r2, &r1.step);
        }
        _ => return None,
    };
    if step > 1 {
        // Snap r2's upper bound down to the common grid when constant, so
        // the right-hand piece starts at a real element.
        let (l2c, u2c) = (r2.lo.as_const(), r2.hi.as_const());
        if let (Some(l2), Some(u2)) = (l2c, u2c) {
            let snapped = if u2 >= l2 {
                u2 - (u2 - l2).rem_euclid(step)
            } else {
                u2
            };
            let r2s = Range::new(r2.lo.clone(), Expr::from(snapped), r2.step.clone());
            return subtract_same_grid(ctx, r1, &r2s, &Expr::from(step));
        }
        return None;
    }
    subtract_same_grid(ctx, r1, r2, &Expr::one())
}

/// Difference of two ranges known to lie on the same grid with step `s`.
fn subtract_same_grid(ctx: &Pred, r1: &Range, r2: &Range, s: &Expr) -> Option<Vec<Guarded<Range>>> {
    let mut out: Vec<Guarded<Range>> = Vec::new();

    // Enumerate intersection-position cases: d.lo = max(l1, l2),
    // d.hi = min(u1, u2).
    for (pl, dlo) in max_cases(ctx, &r1.lo, &r2.lo) {
        for (pu, dhi) in min_cases(ctx, &r1.hi, &r2.hi) {
            let case = pl.and(&pu);
            if case.is_false() {
                continue;
            }
            let d_valid = Pred::le(dlo.clone(), dhi.clone());

            // Case A: intersection non-empty — two surrounding pieces.
            let in_case = case.and(&d_valid);
            if !in_case.is_false() {
                let left = Range::new(r1.lo.clone(), dlo.clone() - s.clone(), s.clone());
                if !left.definitely_empty() {
                    let g = in_case.and(&left.validity());
                    if !g.is_false() {
                        out.push((g, left));
                    }
                }
                let right = Range::new(dhi.clone() + s.clone(), r1.hi.clone(), s.clone());
                if !right.definitely_empty() {
                    let g = in_case.and(&right.validity());
                    if !g.is_false() {
                        out.push((g, right));
                    }
                }
            }

            // Case B: intersection empty — r1 survives whole.
            let out_case = case.and(&d_valid.not());
            if !out_case.is_false() {
                out.push((out_case.and(&r1.validity()), r1.clone()));
            }
        }
    }
    Some(out)
}

/// Attempts to merge `r1 ∪ r2` into a single range (list of guarded cases).
///
/// `None` means "not mergeable into one range" — the caller keeps the two
/// operands side by side (that is *not* an approximation).
///
/// Merging assumes both operands are valid (non-empty); the paper keeps
/// validity in the enclosing guards, which justifies e.g.
/// `(1:a) ∪ (a+1:100) = (1:100)`.
pub fn range_union_merge(ctx: &Pred, r1: &Range, r2: &Range) -> Option<Vec<Guarded<Range>>> {
    if r1 == r2 {
        return Some(vec![(Pred::tru(), r1.clone())]);
    }
    let step = match (r1.const_step(), r2.const_step()) {
        (Some(1), Some(1)) => Expr::one(),
        (Some(a), Some(b)) if a == b && a > 1 => {
            if aligned(&r1.lo, &r2.lo, a) != Some(true) {
                return None;
            }
            Expr::from(a)
        }
        _ if r1.step == r2.step && r1.lo == r2.lo => r1.step.clone(),
        _ => return None,
    };
    // Union of two intervals is one interval iff they overlap or touch:
    // l2 <= u1 + s  and  l1 <= u2 + s. Both must be provable.
    let touch1 = r2.lo.clone();
    let lim1 = r1.hi.clone() + step.clone();
    let touch2 = r1.lo.clone();
    let lim2 = r2.hi.clone() + step.clone();
    if !(prove_le(ctx, &touch1, &lim1) && prove_le(ctx, &touch2, &lim2)) {
        return None;
    }
    let mut out = Vec::new();
    for (pl, lo) in min_cases(ctx, &r1.lo, &r2.lo) {
        for (pu, hi) in max_cases(ctx, &r1.hi, &r2.hi) {
            let guard = pl.and(&pu);
            if guard.is_false() {
                continue;
            }
            out.push((guard, Range::new(lo.clone(), hi.clone(), step.clone())));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn rng(lo: &str, hi: &str) -> Range {
        Range::contiguous(e(lo), e(hi))
    }

    #[test]
    fn intersect_constants() {
        let cases = range_intersect(&Pred::tru(), &rng("1", "10"), &rng("5", "20")).unwrap();
        assert_eq!(cases.len(), 1);
        assert!(cases[0].0.is_true());
        assert_eq!(cases[0].1, rng("5", "10"));
    }

    #[test]
    fn intersect_disjoint_is_empty() {
        let cases = range_intersect(&Pred::tru(), &rng("1", "3"), &rng("7", "9")).unwrap();
        assert!(cases.is_empty());
    }

    #[test]
    fn intersect_paper_example() {
        // (a:100) ∩ (b:100) = [a>b, (a:100)] ∪ [a<=b, (b:100)]
        let cases = range_intersect(&Pred::tru(), &rng("a", "100"), &rng("b", "100")).unwrap();
        assert_eq!(cases.len(), 2);
        let texts: Vec<String> = cases.iter().map(|(_, r)| r.to_string()).collect();
        assert!(texts.contains(&"a:100".to_string()));
        assert!(texts.contains(&"b:100".to_string()));
        // the two case guards must be mutually exclusive
        assert!(cases[0].0.and(&cases[1].0).is_false());
    }

    #[test]
    fn intersect_uses_context() {
        // Under ctx a <= b, (a:n) ∩ (b:n) needs no case split.
        let ctx = Pred::le(e("a"), e("b"));
        let cases = range_intersect(&ctx, &rng("a", "n"), &rng("b", "n")).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].1, rng("b", "n"));
    }

    #[test]
    fn intersect_step2_aligned() {
        let r1 = Range::new(e("1"), e("9"), e("2"));
        let r2 = Range::new(e("3"), e("13"), e("2"));
        let cases = range_intersect(&Pred::tru(), &r1, &r2).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].1, Range::new(e("3"), e("9"), e("2")));
    }

    #[test]
    fn intersect_step2_misaligned_empty() {
        let r1 = Range::new(e("1"), e("9"), e("2"));
        let r2 = Range::new(e("2"), e("10"), e("2"));
        let cases = range_intersect(&Pred::tru(), &r1, &r2).unwrap();
        assert!(cases.is_empty());
    }

    #[test]
    fn intersect_symbolic_steps_unknown() {
        let r1 = Range::new(e("1"), e("9"), e("s"));
        let r2 = Range::new(e("2"), e("10"), e("t"));
        assert!(range_intersect(&Pred::tru(), &r1, &r2).is_none());
    }

    #[test]
    fn intersect_case4_covering() {
        // r1 step 4 inside r2 step 2, aligned: r1 ∩ r2 = r1.
        let r1 = Range::new(e("3"), e("11"), e("4"));
        let r2 = Range::new(e("1"), e("13"), e("2"));
        let cases = range_intersect(&Pred::tru(), &r1, &r2).unwrap();
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].1, r1);
    }

    #[test]
    fn subtract_paper_example() {
        // (1:100) - (a:30) = [1 < a, (1:a-1)] ∪ [True, (31:100)]
        let cases = range_subtract(&Pred::tru(), &rng("1", "100"), &rng("a", "30")).unwrap();
        // Expect a left piece (1:a-1) guarded by validity 1 <= a-1 and a
        // right piece (31:100); the disjoint cases (a > 100 …) also appear
        // guarded.
        let has_left = cases
            .iter()
            .any(|(g, r)| r.to_string() == "1:a - 1" && !g.is_true());
        let has_right = cases.iter().any(|(_, r)| r.to_string() == "31:100");
        assert!(has_left, "missing left piece: {cases:?}");
        assert!(has_right, "missing right piece: {cases:?}");
    }

    #[test]
    fn subtract_concrete() {
        // (1:10) - (4:6) = (1:3) ∪ (7:10) unconditionally
        let cases = range_subtract(&Pred::tru(), &rng("1", "10"), &rng("4", "6")).unwrap();
        let mut texts: Vec<String> = cases
            .iter()
            .filter(|(g, _)| !g.is_false())
            .map(|(_, r)| r.to_string())
            .collect();
        texts.sort();
        assert_eq!(texts, vec!["1:3".to_string(), "7:10".to_string()]);
        for (g, _) in &cases {
            if !g.is_false() {
                assert!(g.is_true());
            }
        }
    }

    #[test]
    fn subtract_covering_removes_all() {
        let cases = range_subtract(&Pred::tru(), &rng("3", "5"), &rng("1", "10")).unwrap();
        assert!(
            cases.iter().all(|(g, _)| g.is_false()) || cases.is_empty(),
            "expected nothing to survive: {cases:?}"
        );
    }

    #[test]
    fn subtract_self_empty() {
        let r = rng("a", "b");
        assert!(range_subtract(&Pred::tru(), &r, &r).unwrap().is_empty());
    }

    #[test]
    fn subtract_disjoint_keeps_whole() {
        let cases = range_subtract(&Pred::tru(), &rng("1", "3"), &rng("7", "9")).unwrap();
        let whole: Vec<_> = cases.iter().filter(|(g, _)| !g.is_false()).collect();
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].1, rng("1", "3"));
    }

    #[test]
    fn subtract_step2_snapping() {
        // {1,3,5,7,9} - {3,5(,6 snapped)} with r2 = (3:6:2) = {3,5}
        let r1 = Range::new(e("1"), e("9"), e("2"));
        let r2 = Range::new(e("3"), e("6"), e("2"));
        let cases = range_subtract(&Pred::tru(), &r1, &r2).unwrap();
        let mut texts: Vec<String> = cases
            .iter()
            .filter(|(g, _)| !g.is_false())
            .map(|(_, r)| r.to_string())
            .collect();
        texts.sort();
        assert_eq!(texts, vec!["1".to_string(), "7:9:2".to_string()]);
    }

    #[test]
    fn union_merge_adjacent_symbolic() {
        // (1:a) ∪ (a+1:100) = (1:100) — needs validity context a >= 1,
        // a <= 99 (from the GAR guards).
        let ctx = Pred::le(e("1"), e("a")).and(&Pred::le(e("a + 1"), e("100")));
        let merged = range_union_merge(&ctx, &rng("1", "a"), &rng("a + 1", "100")).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].1, rng("1", "100"));
        assert!(merged[0].0.is_true());
    }

    #[test]
    fn union_merge_overlapping_constants() {
        let merged = range_union_merge(&Pred::tru(), &rng("1", "6"), &rng("4", "10")).unwrap();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].1, rng("1", "10"));
    }

    #[test]
    fn union_no_merge_with_gap() {
        assert!(range_union_merge(&Pred::tru(), &rng("1", "3"), &rng("7", "9")).is_none());
    }

    #[test]
    fn union_no_merge_when_unprovable() {
        assert!(range_union_merge(&Pred::tru(), &rng("1", "a"), &rng("b", "100")).is_none());
    }

    #[test]
    fn union_same_range() {
        let r = rng("x", "y");
        let m = range_union_merge(&Pred::tru(), &r, &r).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, r);
    }

    #[test]
    fn prove_helpers() {
        let ctx = Pred::le(e("i"), e("n"));
        assert!(prove_le(&ctx, &e("i"), &e("n + 3")));
        assert!(prove_lt(&ctx, &e("i"), &e("n + 1")));
        assert!(prove_eq(&Pred::tru(), &e("2*i"), &e("i + i")));
        assert!(!prove_le(&Pred::tru(), &e("a"), &e("b")));
    }
}
