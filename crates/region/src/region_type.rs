//! Multi-dimensional regular array regions.

use crate::range::Range;
use pred::Pred;
use serde::{Deserialize, Serialize};
use std::fmt;
use sym::Expr;

/// One dimension of a region: a known range or Ω.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Dim {
    /// A known range triple.
    Range(Range),
    /// Ω — the covered indices in this dimension are unknown (the paper
    /// marks a dimension Ω when a substitution result is not representable
    /// as a range, §4.1).
    Unknown,
}

impl Dim {
    /// A contiguous known dimension.
    pub fn contiguous(lo: Expr, hi: Expr) -> Dim {
        Dim::Range(Range::contiguous(lo, hi))
    }

    /// A single-element dimension.
    pub fn unit(e: Expr) -> Dim {
        Dim::Range(Range::unit(e))
    }

    /// The range, if known.
    pub fn as_range(&self) -> Option<&Range> {
        match self {
            Dim::Range(r) => Some(r),
            Dim::Unknown => None,
        }
    }

    /// `true` iff this dimension is Ω.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Dim::Unknown)
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Range(r) => write!(f, "{r}"),
            Dim::Unknown => f.write_str("*"),
        }
    }
}

/// A regular array region: one [`Dim`] per array dimension.
///
/// The region denotes the rectangular set `dims[0] × dims[1] × …`. Regions
/// do not carry the array name; summaries key GAR lists by array.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Region {
    dims: Vec<Dim>,
}

impl Region {
    /// Builds a region from dimensions.
    pub fn new(dims: Vec<Dim>) -> Self {
        Region { dims }
    }

    /// An all-Ω region of the given rank.
    pub fn unknown(rank: usize) -> Self {
        Region {
            dims: vec![Dim::Unknown; rank],
        }
    }

    /// A region from single ranges.
    pub fn from_ranges(ranges: impl IntoIterator<Item = Range>) -> Self {
        Region {
            dims: ranges.into_iter().map(Dim::Range).collect(),
        }
    }

    /// A region covering a single element with the given subscripts.
    pub fn element(subs: impl IntoIterator<Item = Expr>) -> Self {
        Region {
            dims: subs.into_iter().map(Dim::unit).collect(),
        }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// `true` iff no dimension is Ω — the region exactly describes its
    /// element set.
    pub fn is_exact(&self) -> bool {
        self.dims.iter().all(|d| !d.is_unknown())
    }

    /// `true` iff every dimension is Ω.
    pub fn is_fully_unknown(&self) -> bool {
        !self.dims.is_empty() && self.dims.iter().all(Dim::is_unknown)
    }

    /// `true` iff some known dimension is provably empty, making the whole
    /// region empty.
    pub fn definitely_empty(&self) -> bool {
        self.dims
            .iter()
            .any(|d| d.as_range().is_some_and(Range::definitely_empty))
    }

    /// The conjunction of validity conditions `lo <= hi` over known
    /// dimensions — attached to guards when a GAR is created from a region
    /// with symbolic bounds (the paper's explicit-validity rule).
    pub fn validity(&self) -> Pred {
        let mut p = Pred::tru();
        for d in &self.dims {
            if let Dim::Range(r) = d {
                p = p.and(&r.validity());
            }
        }
        p
    }

    /// Does any dimension mention the scalar variable?
    pub fn contains_var(&self, name: &str) -> bool {
        self.dims
            .iter()
            .any(|d| d.as_range().is_some_and(|r| r.contains_var(name)))
    }

    /// Collects every scalar name mentioned by any dimension.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<sym::Name>) {
        for d in &self.dims {
            if let Dim::Range(r) = d {
                r.collect_vars(out);
            }
        }
    }

    /// Substitutes a scalar in every dimension. Dimensions whose
    /// substitution overflows become Ω (sound weakening).
    pub fn subst_var(&self, name: &str, value: &Expr) -> Region {
        Region {
            dims: self
                .dims
                .iter()
                .map(|d| match d {
                    Dim::Range(r) => match r.try_subst_var(name, value) {
                        Some(nr) => Dim::Range(nr),
                        None => Dim::Unknown,
                    },
                    Dim::Unknown => Dim::Unknown,
                })
                .collect(),
        }
    }

    /// Marks the dimensions that mention `name` as Ω (used when expansion
    /// cannot represent the substitution, §4.1).
    pub fn forget_var(&self, name: &str) -> Region {
        Region {
            dims: self
                .dims
                .iter()
                .map(|d| match d {
                    Dim::Range(r) if r.contains_var(name) => Dim::Unknown,
                    other => other.clone(),
                })
                .collect(),
        }
    }

    /// Total element count when all bounds are constant.
    pub fn const_len(&self) -> Option<i64> {
        let mut n: i64 = 1;
        for d in &self.dims {
            n = n.checked_mul(d.as_range()?.const_len()?)?;
        }
        Some(n)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (k, d) in self.dims.iter().enumerate() {
            if k > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{d}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn element_region() {
        let r = Region::element([e("i"), e("j + 1")]);
        assert_eq!(r.rank(), 2);
        assert!(r.is_exact());
        assert_eq!(r.to_string(), "(i, j + 1)");
    }

    #[test]
    fn unknown_region() {
        let r = Region::unknown(2);
        assert!(!r.is_exact());
        assert!(r.is_fully_unknown());
        assert_eq!(r.to_string(), "(*, *)");
    }

    #[test]
    fn emptiness_via_dim() {
        let r = Region::from_ranges([
            Range::contiguous(e("1"), e("10")),
            Range::contiguous(e("5"), e("2")),
        ]);
        assert!(r.definitely_empty());
    }

    #[test]
    fn validity_conjunction() {
        let r = Region::from_ranges([
            Range::contiguous(e("1"), e("n")),
            Range::contiguous(e("a"), e("b")),
        ]);
        let v = r.validity();
        // two nontrivial conditions
        assert_eq!(v.disjs().len(), 2);
    }

    #[test]
    fn subst_and_forget() {
        let r = Region::from_ranges([Range::contiguous(e("1"), e("n"))]);
        let s = r.subst_var("n", &e("m + 1"));
        assert_eq!(s.to_string(), "(1:m + 1)");
        let forgotten = r.forget_var("n");
        assert!(forgotten.dims()[0].is_unknown());
    }

    #[test]
    fn const_len() {
        let r = Region::from_ranges([
            Range::contiguous(e("1"), e("10")),
            Range::contiguous(e("1"), e("5")),
        ]);
        assert_eq!(r.const_len(), Some(50));
        assert_eq!(Region::unknown(1).const_len(), None);
    }
}
