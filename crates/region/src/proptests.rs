//! Property tests: guarded range/region operations are checked against
//! brute-force set enumeration. Bounds are affine in one symbolic variable
//! `a`, and guards are evaluated under random bindings of `a`, so the
//! min/max case-splitting machinery itself is exercised, not just the
//! constant fast paths.

use crate::{range_intersect, range_subtract, range_union_merge, Range};
use crate::{region_intersect, region_subtract, Region};
use pred::{EvalCtx, Pred};
use proptest::prelude::*;
use std::collections::BTreeSet;
use sym::{Env, Expr};

/// An affine bound: `c` or `a + c`.
fn arb_bound() -> impl Strategy<Value = Expr> {
    (any::<bool>(), -8i64..12).prop_map(|(use_a, c)| {
        if use_a {
            Expr::var("a") + Expr::from(c)
        } else {
            Expr::from(c)
        }
    })
}

fn arb_range() -> impl Strategy<Value = Range> {
    (
        arb_bound(),
        arb_bound(),
        prop_oneof![Just(1i64), Just(2i64)],
    )
        .prop_map(|(lo, hi, s)| Range::new(lo, hi, Expr::from(s)))
}

fn arb_env() -> impl Strategy<Value = Env> {
    (-5i64..6).prop_map(|a| Env::from_pairs([("a", a)]))
}

/// Concrete element set of a range under an environment.
fn elems(r: &Range, env: &Env) -> BTreeSet<i64> {
    let lo = r.lo.eval(env).unwrap();
    let hi = r.hi.eval(env).unwrap();
    let s = r.step.eval(env).unwrap();
    let mut out = BTreeSet::new();
    if s >= 1 {
        let mut x = lo;
        while x <= hi {
            out.insert(x);
            x += s;
        }
    }
    out
}

/// Union of the pieces whose guards hold; `None` if a guard is undecidable.
fn guarded_elems(cases: &[(Pred, Range)], env: &Env) -> Option<BTreeSet<i64>> {
    let ctx = EvalCtx::scalars(env);
    let mut out = BTreeSet::new();
    for (p, r) in cases {
        match ctx.eval_pred(p) {
            Some(true) => out.extend(elems(r, env)),
            Some(false) => {}
            None => return None,
        }
    }
    Some(out)
}

proptest! {
    /// Intersection cases reproduce exact set intersection.
    #[test]
    fn intersect_matches_sets(r1 in arb_range(), r2 in arb_range(), env in arb_env()) {
        if let Some(cases) = range_intersect(&Pred::tru(), &r1, &r2) {
            if let Some(got) = guarded_elems(&cases, &env) {
                let want: BTreeSet<i64> =
                    elems(&r1, &env).intersection(&elems(&r2, &env)).copied().collect();
                prop_assert_eq!(got, want, "r1={} r2={} env a={:?}", r1, r2, env.get("a"));
            }
        }
    }

    /// Subtraction cases reproduce exact set difference (valid operands).
    #[test]
    fn subtract_matches_sets(r1 in arb_range(), r2 in arb_range(), env in arb_env()) {
        // The subtraction formulas assume r1 is valid (guards of the
        // enclosing GAR carry that), so filter empty r1.
        prop_assume!(!elems(&r1, &env).is_empty());
        if let Some(cases) = range_subtract(&Pred::tru(), &r1, &r2) {
            if let Some(got) = guarded_elems(&cases, &env) {
                let want: BTreeSet<i64> =
                    elems(&r1, &env).difference(&elems(&r2, &env)).copied().collect();
                prop_assert_eq!(got, want, "r1={} r2={} env a={:?}", r1, r2, env.get("a"));
            }
        }
    }

    /// A successful union merge reproduces exact set union (valid operands).
    #[test]
    fn union_merge_matches_sets(r1 in arb_range(), r2 in arb_range(), env in arb_env()) {
        prop_assume!(!elems(&r1, &env).is_empty());
        prop_assume!(!elems(&r2, &env).is_empty());
        // Validity facts are available to the merge as context, as they
        // would be from the enclosing GAR guards.
        let ctx = r1.validity().and(&r2.validity());
        if let Some(cases) = range_union_merge(&ctx, &r1, &r2) {
            if let Some(got) = guarded_elems(&cases, &env) {
                let want: BTreeSet<i64> =
                    elems(&r1, &env).union(&elems(&r2, &env)).copied().collect();
                prop_assert_eq!(got, want, "r1={} r2={} env a={:?}", r1, r2, env.get("a"));
            }
        }
    }

    /// 2-D region intersection against brute force.
    #[test]
    fn region_intersect_matches(
        a1 in arb_range(), a2 in arb_range(),
        b1 in arb_range(), b2 in arb_range(),
        env in arb_env(),
    ) {
        let r1 = Region::from_ranges([a1.clone(), a2.clone()]);
        let r2 = Region::from_ranges([b1.clone(), b2.clone()]);
        let cases = region_intersect(&Pred::tru(), &r1, &r2);
        // Only check when all pieces are exact and guards decide.
        if cases.iter().any(|(_, r)| !r.is_exact()) {
            return Ok(());
        }
        let ctx = EvalCtx::scalars(&env);
        let mut got: BTreeSet<(i64, i64)> = BTreeSet::new();
        for (p, r) in &cases {
            match ctx.eval_pred(p) {
                Some(true) => {
                    let d0 = elems(r.dims()[0].as_range().unwrap(), &env);
                    let d1 = elems(r.dims()[1].as_range().unwrap(), &env);
                    for &x in &d0 {
                        for &y in &d1 {
                            got.insert((x, y));
                        }
                    }
                }
                Some(false) => {}
                None => return Ok(()),
            }
        }
        let mut want = BTreeSet::new();
        let (e_a1, e_a2) = (elems(&a1, &env), elems(&a2, &env));
        let (e_b1, e_b2) = (elems(&b1, &env), elems(&b2, &env));
        for x in e_a1.intersection(&e_b1) {
            for y in e_a2.intersection(&e_b2) {
                want.insert((*x, *y));
            }
        }
        prop_assert_eq!(got, want);
    }

    /// 2-D region subtraction against brute force (valid operands).
    #[test]
    fn region_subtract_matches(
        a1 in arb_range(), a2 in arb_range(),
        b1 in arb_range(), b2 in arb_range(),
        env in arb_env(),
    ) {
        prop_assume!(!elems(&a1, &env).is_empty() && !elems(&a2, &env).is_empty());
        let r1 = Region::from_ranges([a1.clone(), a2.clone()]);
        let r2 = Region::from_ranges([b1.clone(), b2.clone()]);
        let Some(cases) = region_subtract(&Pred::tru(), &r1, &r2) else { return Ok(()); };
        if cases.iter().any(|(_, r)| !r.is_exact()) {
            return Ok(());
        }
        let ctx = EvalCtx::scalars(&env);
        let mut got: BTreeSet<(i64, i64)> = BTreeSet::new();
        for (p, r) in &cases {
            match ctx.eval_pred(p) {
                Some(true) => {
                    let d0 = elems(r.dims()[0].as_range().unwrap(), &env);
                    let d1 = elems(r.dims()[1].as_range().unwrap(), &env);
                    for &x in &d0 {
                        for &y in &d1 {
                            got.insert((x, y));
                        }
                    }
                }
                Some(false) => {}
                None => return Ok(()),
            }
        }
        let mut want = BTreeSet::new();
        let (e_a1, e_a2) = (elems(&a1, &env), elems(&a2, &env));
        let (e_b1, e_b2) = (elems(&b1, &env), elems(&b2, &env));
        for &x in &e_a1 {
            for &y in &e_a2 {
                if !(e_b1.contains(&x) && e_b2.contains(&y)) {
                    want.insert((x, y));
                }
            }
        }
        prop_assert_eq!(got, want, "r1={} r2={} a={:?}", r1, r2, env.get("a"));
    }
}
