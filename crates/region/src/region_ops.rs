//! Guarded set operations on multi-dimensional regions.

use crate::range_ops::{prove_le, range_intersect, range_subtract, range_union_merge, Guarded};
use crate::region_type::{Dim, Region};
use pred::Pred;

/// Cap on the number of guarded cases produced by one region operation.
/// Beyond it the operation degrades gracefully (Ω dimensions / `None`), the
/// paper's "mark as unknown" escape hatch.
const CASE_CAP: usize = 64;

/// Intersection `R1 ∩ R2` as guarded cases (§3).
///
/// Never fails: undecidable dimensions become Ω (the result is then an
/// over-approximation, reported by `Region::is_exact` on the pieces). An
/// empty list means provably empty.
pub fn region_intersect(ctx: &Pred, r1: &Region, r2: &Region) -> Vec<Guarded<Region>> {
    assert_eq!(
        r1.rank(),
        r2.rank(),
        "intersecting regions of different rank"
    );
    // acc holds partial dim-vectors with their accumulated guards.
    let mut acc: Vec<(Pred, Vec<Dim>)> = vec![(Pred::tru(), Vec::with_capacity(r1.rank()))];
    for (d1, d2) in r1.dims().iter().zip(r2.dims()) {
        let dim_cases: Vec<Guarded<Dim>> = match (d1, d2) {
            (Dim::Unknown, _) | (_, Dim::Unknown) => vec![(Pred::tru(), Dim::Unknown)],
            (Dim::Range(a), Dim::Range(b)) => match range_intersect(ctx, a, b) {
                None => vec![(Pred::tru(), Dim::Unknown)],
                Some(cases) if cases.is_empty() => return Vec::new(),
                Some(cases) => cases.into_iter().map(|(p, r)| (p, Dim::Range(r))).collect(),
            },
        };
        if acc.len().saturating_mul(dim_cases.len()) > CASE_CAP {
            // Degrade this dimension to Ω instead of exploding.
            for (_, dims) in &mut acc {
                dims.push(Dim::Unknown);
            }
            continue;
        }
        let mut next = Vec::with_capacity(acc.len() * dim_cases.len());
        for (p, dims) in &acc {
            for (q, dim) in &dim_cases {
                let guard = p.and(q);
                if guard.is_false() {
                    continue;
                }
                let mut nd = dims.clone();
                nd.push(dim.clone());
                next.push((guard, nd));
            }
        }
        if next.is_empty() {
            return Vec::new();
        }
        acc = next;
    }
    acc.into_iter()
        .map(|(p, dims)| (p, Region::new(dims)))
        .collect()
}

/// Difference `R1 − R2` as guarded cases, following the paper's recursive
/// peel formula (§3):
///
/// ```text
/// R1(m) − R2(m) = (r1¹−r1², r2¹, …, rm¹) ∪ (r1¹∩r1², R1(m−1) − R2(m−1))
/// ```
///
/// `None` means the difference is not representable (an Ω dimension on
/// either side, a rank mismatch, or case blow-up); the caller must then keep
/// `R1` whole and mark the result inexact — subtracting nothing is the sound
/// direction for upward-exposed sets.
pub fn region_subtract(ctx: &Pred, r1: &Region, r2: &Region) -> Option<Vec<Guarded<Region>>> {
    if r1.rank() != r2.rank() {
        return None;
    }
    if r1.dims().iter().any(Dim::is_unknown) || r2.dims().iter().any(Dim::is_unknown) {
        return None;
    }
    let cases = sub_dims(ctx, r1.dims(), r2.dims())?;
    Some(
        cases
            .into_iter()
            .filter(|(p, _)| !p.is_false())
            .map(|(p, dims)| (p, Region::new(dims)))
            .collect(),
    )
}

fn sub_dims(ctx: &Pred, d1: &[Dim], d2: &[Dim]) -> Option<Vec<Guarded<Vec<Dim>>>> {
    let (Dim::Range(h1), Dim::Range(h2)) = (&d1[0], &d2[0]) else {
        return None;
    };
    let head_diff = range_subtract(ctx, h1, h2)?;
    if d1.len() == 1 {
        return Some(
            head_diff
                .into_iter()
                .map(|(p, r)| (p, vec![Dim::Range(r)]))
                .collect(),
        );
    }
    let mut out: Vec<Guarded<Vec<Dim>>> = Vec::new();
    // Piece 1: rows of R1 outside the head intersection keep their full
    // tail from R1.
    for (p, r) in head_diff {
        let mut dims = Vec::with_capacity(d1.len());
        dims.push(Dim::Range(r));
        dims.extend_from_slice(&d1[1..]);
        out.push((p, dims));
    }
    // Piece 2: rows inside the head intersection recurse on the tail.
    let head_int = range_intersect(ctx, h1, h2)?;
    let tail = sub_dims(ctx, &d1[1..], &d2[1..])?;
    if out.len() + head_int.len().saturating_mul(tail.len()) > CASE_CAP {
        return None;
    }
    for (p, r) in &head_int {
        for (q, dims) in &tail {
            let guard = p.and(q);
            if guard.is_false() {
                continue;
            }
            let mut nd = Vec::with_capacity(d1.len());
            nd.push(Dim::Range(r.clone()));
            nd.extend(dims.iter().cloned());
            out.push((guard, nd));
        }
    }
    Some(out)
}

/// Attempts `R1 ∪ R2` as a *single* region (guarded cases). `None` means
/// "keep both regions in the list" — not an approximation.
///
/// Merging succeeds when the regions are identical, when one provably
/// covers the other, or when they differ in exactly one dimension whose
/// ranges merge.
pub fn region_union_merge(ctx: &Pred, r1: &Region, r2: &Region) -> Option<Vec<Guarded<Region>>> {
    if r1.rank() != r2.rank() {
        return None;
    }
    if r1 == r2 {
        return Some(vec![(Pred::tru(), r1.clone())]);
    }
    if region_covers(ctx, r1, r2) {
        return Some(vec![(Pred::tru(), r1.clone())]);
    }
    if region_covers(ctx, r2, r1) {
        return Some(vec![(Pred::tru(), r2.clone())]);
    }
    // Exactly one differing dimension?
    let mut differing = None;
    for (k, (a, b)) in r1.dims().iter().zip(r2.dims()).enumerate() {
        if a != b {
            if differing.is_some() {
                return None;
            }
            differing = Some(k);
        }
    }
    let k = differing?;
    let (Dim::Range(a), Dim::Range(b)) = (&r1.dims()[k], &r2.dims()[k]) else {
        return None;
    };
    let merged = range_union_merge(ctx, a, b)?;
    Some(
        merged
            .into_iter()
            .map(|(p, r)| {
                let mut dims = r1.dims().to_vec();
                dims[k] = Dim::Range(r);
                (p, Region::new(dims))
            })
            .collect(),
    )
}

/// Does `big` provably cover `small` (both exact)?
pub fn region_covers(ctx: &Pred, big: &Region, small: &Region) -> bool {
    if big.rank() != small.rank() {
        return false;
    }
    big.dims().iter().zip(small.dims()).all(|(b, s)| {
        let (Dim::Range(rb), Dim::Range(rs)) = (b, s) else {
            return false;
        };
        // Same step 1 grids only (conservative).
        rb.unit_step()
            && rs.unit_step()
            && prove_le(ctx, &rb.lo, &rs.lo)
            && prove_le(ctx, &rs.hi, &rb.hi)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::Range;
    use sym::{parse_expr, Expr};

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    fn reg(dims: &[(&str, &str)]) -> Region {
        Region::from_ranges(dims.iter().map(|(lo, hi)| Range::contiguous(e(lo), e(hi))))
    }

    #[test]
    fn intersect_2d_constants() {
        let a = reg(&[("1", "10"), ("1", "10")]);
        let b = reg(&[("5", "20"), ("3", "7")]);
        let cases = region_intersect(&Pred::tru(), &a, &b);
        assert_eq!(cases.len(), 1);
        assert_eq!(cases[0].1, reg(&[("5", "10"), ("3", "7")]));
        assert!(cases[0].0.is_true());
    }

    #[test]
    fn intersect_empty_dim_empties_region() {
        let a = reg(&[("1", "10"), ("1", "3")]);
        let b = reg(&[("5", "20"), ("7", "9")]);
        assert!(region_intersect(&Pred::tru(), &a, &b).is_empty());
    }

    #[test]
    fn intersect_with_unknown_dim() {
        let a = Region::new(vec![
            Dim::Range(Range::contiguous(e("1"), e("10"))),
            Dim::Unknown,
        ]);
        let b = reg(&[("5", "20"), ("3", "7")]);
        let cases = region_intersect(&Pred::tru(), &a, &b);
        assert_eq!(cases.len(), 1);
        assert!(!cases[0].1.is_exact());
        assert_eq!(
            cases[0].1.dims()[0],
            Dim::Range(Range::contiguous(e("5"), e("10")))
        );
    }

    #[test]
    fn subtract_2d_paper_example() {
        // (1:100, 1:100) - (20:30, a:30)
        let a = reg(&[("1", "100"), ("1", "100")]);
        let b = reg(&[("20", "30"), ("a", "30")]);
        let cases = region_subtract(&Pred::tru(), &a, &b).unwrap();
        let live: Vec<String> = cases.iter().map(|(p, r)| format!("[{p}] {r}")).collect();
        let joined = live.join(" ; ");
        // The four pieces from §3's worked example must be present.
        assert!(joined.contains("(1:19, 1:100)"), "{joined}");
        assert!(joined.contains("(31:100, 1:100)"), "{joined}");
        assert!(joined.contains("(20:30, 1:a - 1)"), "{joined}");
        assert!(joined.contains("(20:30, 31:100)"), "{joined}");
    }

    #[test]
    fn subtract_full_cover_leaves_nothing() {
        let a = reg(&[("2", "5")]);
        let b = reg(&[("1", "10")]);
        let cases = region_subtract(&Pred::tru(), &a, &b).unwrap();
        assert!(cases.iter().all(|(p, _)| p.is_false()) || cases.is_empty());
    }

    #[test]
    fn subtract_with_unknown_fails() {
        let a = Region::unknown(1);
        let b = reg(&[("1", "10")]);
        assert!(region_subtract(&Pred::tru(), &a, &b).is_none());
        assert!(region_subtract(&Pred::tru(), &b, &a).is_none());
    }

    #[test]
    fn union_merge_identical() {
        let a = reg(&[("1", "n")]);
        let m = region_union_merge(&Pred::tru(), &a, &a).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, a);
    }

    #[test]
    fn union_merge_one_dim_adjacent() {
        let a = reg(&[("1", "5"), ("1", "10")]);
        let b = reg(&[("6", "9"), ("1", "10")]);
        let m = region_union_merge(&Pred::tru(), &a, &b).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].1, reg(&[("1", "9"), ("1", "10")]));
    }

    #[test]
    fn union_merge_covering() {
        let big = reg(&[("1", "100")]);
        let small = reg(&[("20", "30")]);
        let m = region_union_merge(&Pred::tru(), &big, &small).unwrap();
        assert_eq!(m[0].1, big);
    }

    #[test]
    fn union_no_merge_two_dims_differ() {
        let a = reg(&[("1", "5"), ("1", "5")]);
        let b = reg(&[("6", "9"), ("6", "9")]);
        assert!(region_union_merge(&Pred::tru(), &a, &b).is_none());
    }

    #[test]
    fn covers_with_context() {
        let ctx = Pred::le(e("1"), e("a")).and(&Pred::le(e("b"), e("100")));
        let big = reg(&[("1", "100")]);
        let small = reg(&[("a", "b")]);
        assert!(region_covers(&ctx, &big, &small));
        assert!(!region_covers(&Pred::tru(), &big, &small));
    }
}
