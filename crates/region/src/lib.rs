//! Regular array regions: rectangular sets of array elements described by
//! symbolic range triples, with guarded set operations.
//!
//! A *regular array region* of an `m`-dimensional array is
//! `A(r_1, …, r_m)` where each `r_k` is a range `(l : u : s)` of symbolic
//! expressions (§3 of Gu, Li & Lee, SC'95). Because bounds are symbolic,
//! the set operations ∩, ∪ and − cannot always produce a single region;
//! instead they produce *guarded* lists `[(P, R)]` where `P` is the symbolic
//! condition ([`pred::Pred`]) under which the piece `R` is the result. All
//! `min`/`max` operators are eliminated by case-splitting into such guards,
//! exactly as §3 prescribes, so simplifiers can discharge empty and
//! redundant pieces early.
//!
//! Conventions:
//!
//! * The validity condition `l <= u` of every *produced* range is included
//!   in its guard (the paper's explicit-validity rule).
//! * A dimension may be Ω ([`Dim::Unknown`]): the analysis lost track of
//!   which elements are covered in that dimension. Regions with unknown
//!   dimensions are over-approximations; [`Region::is_exact`] reports this.

#![warn(missing_docs)]

mod range;
mod range_ops;
mod region_ops;
mod region_type;
mod shape;

pub use range::Range;
pub use range_ops::{
    max_cases, min_cases, prove_eq, prove_le, prove_lt, range_intersect, range_subtract,
    range_union_merge, Guarded,
};
pub use region_ops::{region_covers, region_intersect, region_subtract, region_union_merge};
pub use region_type::{Dim, Region};
pub use shape::{ShapeCond, ShapeOp, ShapedRegion};

#[cfg(test)]
mod proptests;
