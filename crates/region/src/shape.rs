//! Non-rectangular regions — the §5.3 extension.
//!
//! The paper notes that GARs can represent non-rectangular element sets by
//! introducing a *dimension symbol* ψᵢ per dimension and putting relations
//! between the ψᵢ in the guard: the diagonal `A(i,i)` becomes
//! `[ψ₁ = ψ₂, A(1:n, 1:n)]` and an upper triangle `[ψ₁ <= ψ₂, A(1:n, 1:n)]`.
//! Their experience "so far has not required such an extension" for
//! privatization, and neither do our kernels — so this module implements
//! the representation and its set algebra as a standalone, fully tested
//! extension without wiring it into the main dataflow pipeline.
//!
//! A [`ShapedRegion`] is a rectangular bounding [`Region`] plus a
//! conjunction of [`ShapeCond`]s `ψ_a <= ψ_b + c` / `ψ_a = ψ_b + c`
//! relating pairs of dimensions. Operations stay sound by construction:
//! intersections are exact, unions and differences fall back to
//! conservative answers when exactness would require disjunctive shapes.

use crate::range_ops::Guarded;
use crate::region_ops::{region_intersect, region_subtract, region_union_merge};
use crate::region_type::Region;
use pred::Pred;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relation between two dimension symbols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ShapeOp {
    /// `ψ_a = ψ_b + offset`
    Eq,
    /// `ψ_a <= ψ_b + offset`
    Le,
}

/// One shape condition `ψ_a op ψ_b + offset` (`a != b`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct ShapeCond {
    /// Left dimension index (0-based).
    pub dim_a: usize,
    /// Right dimension index.
    pub dim_b: usize,
    /// Relation.
    pub op: ShapeOp,
    /// Constant offset.
    pub offset: i64,
}

impl ShapeCond {
    /// `ψ_a = ψ_b + c`.
    pub fn eq(dim_a: usize, dim_b: usize, offset: i64) -> ShapeCond {
        ShapeCond {
            dim_a,
            dim_b,
            op: ShapeOp::Eq,
            offset,
        }
    }

    /// `ψ_a <= ψ_b + c`.
    pub fn le(dim_a: usize, dim_b: usize, offset: i64) -> ShapeCond {
        ShapeCond {
            dim_a,
            dim_b,
            op: ShapeOp::Le,
            offset,
        }
    }

    /// Does a concrete point satisfy the condition?
    pub fn holds(&self, point: &[i64]) -> bool {
        let a = point[self.dim_a];
        let b = point[self.dim_b];
        match self.op {
            ShapeOp::Eq => a == b + self.offset,
            ShapeOp::Le => a <= b + self.offset,
        }
    }
}

impl fmt::Display for ShapeCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            ShapeOp::Eq => "=",
            ShapeOp::Le => "<=",
        };
        if self.offset == 0 {
            write!(f, "ψ{} {} ψ{}", self.dim_a + 1, op, self.dim_b + 1)
        } else {
            write!(
                f,
                "ψ{} {} ψ{} {} {}",
                self.dim_a + 1,
                op,
                self.dim_b + 1,
                if self.offset >= 0 { "+" } else { "-" },
                self.offset.abs()
            )
        }
    }
}

/// A possibly non-rectangular region: rectangular bounds restricted by a
/// conjunction of shape conditions.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ShapedRegion {
    /// The rectangular bounding region.
    pub bounds: Region,
    /// Conjunction of shape conditions, kept sorted and deduplicated.
    pub shape: Vec<ShapeCond>,
}

impl ShapedRegion {
    /// A plain rectangle (no shape conditions).
    pub fn rect(bounds: Region) -> ShapedRegion {
        ShapedRegion {
            bounds,
            shape: Vec::new(),
        }
    }

    /// Builds with conditions, canonicalizing the list.
    pub fn new(bounds: Region, shape: impl IntoIterator<Item = ShapeCond>) -> ShapedRegion {
        let mut shape: Vec<ShapeCond> = shape.into_iter().collect();
        shape.sort();
        shape.dedup();
        ShapedRegion { bounds, shape }
    }

    /// The diagonal `A(i, i), i = 1..n` of the paper's example:
    /// `[ψ1 = ψ2, A(1:n, 1:n)]`.
    pub fn diagonal(bounds: Region) -> ShapedRegion {
        ShapedRegion::new(bounds, [ShapeCond::eq(0, 1, 0)])
    }

    /// The upper triangle `A(i, j), j >= i`: `[ψ1 <= ψ2, A(1:n, 1:n)]`.
    pub fn upper_triangle(bounds: Region) -> ShapedRegion {
        ShapedRegion::new(bounds, [ShapeCond::le(0, 1, 0)])
    }

    /// `true` iff no shape conditions (plain rectangle).
    pub fn is_rect(&self) -> bool {
        self.shape.is_empty()
    }

    /// Is the shape conjunction provably self-contradictory (e.g.
    /// `ψ1 = ψ2 + 1 ∧ ψ1 = ψ2 + 2`, or `ψ1 <= ψ2 − k` against
    /// `ψ2 <= ψ1 − m` with `k + m > 0`)?
    pub fn shape_contradictory(&self) -> bool {
        for (i, a) in self.shape.iter().enumerate() {
            for b in &self.shape[i + 1..] {
                if a.dim_a == b.dim_a && a.dim_b == b.dim_b {
                    match (a.op, b.op) {
                        (ShapeOp::Eq, ShapeOp::Eq) if a.offset != b.offset => return true,
                        (ShapeOp::Eq, ShapeOp::Le) if a.offset > b.offset => return true,
                        (ShapeOp::Le, ShapeOp::Eq) if b.offset > a.offset => return true,
                        _ => {}
                    }
                }
                // Opposite orientation: ψa <= ψb + c1 and ψb <= ψa + c2
                // require c1 + c2 >= 0; equalities likewise.
                if a.dim_a == b.dim_b && a.dim_b == b.dim_a && a.offset + b.offset < 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Does a concrete point lie in the region? (Constant bounds only —
    /// used by tests and enumeration.)
    pub fn contains(&self, point: &[i64]) -> Option<bool> {
        if point.len() != self.bounds.rank() {
            return Some(false);
        }
        for (x, d) in point.iter().zip(self.bounds.dims()) {
            let r = d.as_range()?;
            let lo = r.lo.as_const()?;
            let hi = r.hi.as_const()?;
            let s = r.step.as_const()?;
            if *x < lo || *x > hi || (s > 1 && (x - lo) % s != 0) {
                return Some(false);
            }
        }
        Some(self.shape.iter().all(|c| c.holds(point)))
    }

    /// Enumerates all points (constant bounds only).
    pub fn enumerate(&self) -> Option<Vec<Vec<i64>>> {
        let mut dims = Vec::new();
        for d in self.bounds.dims() {
            let r = d.as_range()?;
            let (lo, hi, s) = (r.lo.as_const()?, r.hi.as_const()?, r.step.as_const()?);
            let mut v = Vec::new();
            if s >= 1 {
                let mut x = lo;
                while x <= hi {
                    v.push(x);
                    x += s;
                }
            }
            dims.push(v);
        }
        let mut out = vec![Vec::new()];
        for axis in &dims {
            let mut next = Vec::with_capacity(out.len() * axis.len());
            for p in &out {
                for &x in axis {
                    let mut q = p.clone();
                    q.push(x);
                    next.push(q);
                }
            }
            out = next;
        }
        Some(
            out.into_iter()
                .filter(|p| self.shape.iter().all(|c| c.holds(p)))
                .collect(),
        )
    }

    /// Exact intersection: bounds intersect (guarded cases) and the shape
    /// conjunctions concatenate. Pieces with contradictory shapes vanish.
    pub fn intersect(&self, ctx: &Pred, other: &ShapedRegion) -> Vec<Guarded<ShapedRegion>> {
        let merged_shape: Vec<ShapeCond> = self
            .shape
            .iter()
            .chain(other.shape.iter())
            .copied()
            .collect();
        let probe = ShapedRegion::new(Region::unknown(0), merged_shape.clone());
        if probe.shape_contradictory() {
            return Vec::new();
        }
        region_intersect(ctx, &self.bounds, &other.bounds)
            .into_iter()
            .map(|(p, r)| (p, ShapedRegion::new(r, merged_shape.iter().copied())))
            .collect()
    }

    /// Union: merges only when the shapes are identical and the bounds
    /// merge; `None` means "keep both" (not an approximation).
    pub fn union_merge(
        &self,
        ctx: &Pred,
        other: &ShapedRegion,
    ) -> Option<Vec<Guarded<ShapedRegion>>> {
        if self.shape != other.shape {
            return None;
        }
        let merged = region_union_merge(ctx, &self.bounds, &other.bounds)?;
        Some(
            merged
                .into_iter()
                .map(|(p, r)| (p, ShapedRegion::new(r, self.shape.iter().copied())))
                .collect(),
        )
    }

    /// Difference. Exact when the subtrahend's shape is no more
    /// restrictive than ours (its conditions are implied by ours, e.g.
    /// subtracting a rectangle); otherwise `None` — the caller keeps
    /// `self` whole (the sound, kill-nothing direction).
    pub fn subtract(&self, ctx: &Pred, other: &ShapedRegion) -> Option<Vec<Guarded<ShapedRegion>>> {
        let implied = other
            .shape
            .iter()
            .all(|c| self.shape.contains(c) || implied_by(&self.shape, *c));
        if !implied {
            return None;
        }
        let pieces = region_subtract(ctx, &self.bounds, &other.bounds)?;
        Some(
            pieces
                .into_iter()
                .map(|(p, r)| (p, ShapedRegion::new(r, self.shape.iter().copied())))
                .collect(),
        )
    }
}

/// Is `c` implied by the conjunction `shape` (pairwise, constant offsets)?
fn implied_by(shape: &[ShapeCond], c: ShapeCond) -> bool {
    shape.iter().any(|s| {
        s.dim_a == c.dim_a
            && s.dim_b == c.dim_b
            && match (s.op, c.op) {
                // ψa = ψb + k implies ψa <= ψb + c for c >= k.
                (ShapeOp::Eq, ShapeOp::Le) => s.offset <= c.offset,
                // ψa <= ψb + k implies ψa <= ψb + c for c >= k.
                (ShapeOp::Le, ShapeOp::Le) => s.offset <= c.offset,
                (ShapeOp::Eq, ShapeOp::Eq) => s.offset == c.offset,
                (ShapeOp::Le, ShapeOp::Eq) => false,
            }
    })
}

impl fmt::Display for ShapedRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.shape.is_empty() {
            return write!(f, "{}", self.bounds);
        }
        f.write_str("[")?;
        for (k, c) in self.shape.iter().enumerate() {
            if k > 0 {
                f.write_str(" & ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ", {}]", self.bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::Range;
    use std::collections::BTreeSet;
    use sym::Expr;

    fn square(n: i64) -> Region {
        Region::from_ranges([
            Range::contiguous(Expr::from(1), Expr::from(n)),
            Range::contiguous(Expr::from(1), Expr::from(n)),
        ])
    }

    fn points(v: &[Guarded<ShapedRegion>]) -> BTreeSet<Vec<i64>> {
        let mut out = BTreeSet::new();
        for (p, r) in v {
            assert!(!p.is_false());
            // tests use constant bounds; all guards should be decided
            assert!(p.is_true(), "undecided guard {p}");
            out.extend(r.enumerate().unwrap());
        }
        out
    }

    #[test]
    fn diagonal_membership() {
        let d = ShapedRegion::diagonal(square(4));
        assert_eq!(d.contains(&[2, 2]), Some(true));
        assert_eq!(d.contains(&[2, 3]), Some(false));
        assert_eq!(d.enumerate().unwrap().len(), 4);
        assert_eq!(d.to_string(), "[ψ1 = ψ2, (1:4, 1:4)]");
    }

    #[test]
    fn triangle_membership() {
        let t = ShapedRegion::upper_triangle(square(3));
        // ψ1 <= ψ2: (i, j) with i <= j
        assert_eq!(t.enumerate().unwrap().len(), 6);
        assert_eq!(t.contains(&[1, 3]), Some(true));
        assert_eq!(t.contains(&[3, 1]), Some(false));
    }

    #[test]
    fn triangle_intersect_diagonal() {
        let t = ShapedRegion::upper_triangle(square(5));
        let d = ShapedRegion::diagonal(square(5));
        let i = t.intersect(&Pred::tru(), &d);
        // upper triangle ∩ diagonal = diagonal
        let got = points(&i);
        let want: BTreeSet<Vec<i64>> = (1..=5).map(|k| vec![k, k]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn offset_diagonals_disjoint() {
        let d0 = ShapedRegion::new(square(5), [ShapeCond::eq(0, 1, 0)]);
        let d1 = ShapedRegion::new(square(5), [ShapeCond::eq(0, 1, 1)]);
        assert!(d0.intersect(&Pred::tru(), &d1).is_empty());
    }

    #[test]
    fn opposite_triangles_overlap_on_band() {
        // ψ1 <= ψ2 and ψ2 <= ψ1 overlap exactly on the diagonal.
        let up = ShapedRegion::new(square(4), [ShapeCond::le(0, 1, 0)]);
        let lo = ShapedRegion::new(square(4), [ShapeCond::le(1, 0, 0)]);
        let i = up.intersect(&Pred::tru(), &lo);
        let got = points(&i);
        let want: BTreeSet<Vec<i64>> = (1..=4).map(|k| vec![k, k]).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn strictly_disjoint_triangles() {
        // ψ1 <= ψ2 - 1 and ψ2 <= ψ1 - 1: contradictory.
        let a = ShapedRegion::new(square(4), [ShapeCond::le(0, 1, -1)]);
        let b = ShapedRegion::new(square(4), [ShapeCond::le(1, 0, -1)]);
        assert!(a.intersect(&Pred::tru(), &b).is_empty());
    }

    #[test]
    fn rect_subtract_from_triangle() {
        // triangle − full rectangle = empty
        let t = ShapedRegion::upper_triangle(square(3));
        let r = ShapedRegion::rect(square(3));
        let d = t.subtract(&Pred::tru(), &r).unwrap();
        assert!(points(&d).is_empty());
    }

    #[test]
    fn triangle_subtract_triangle_refused() {
        // subtracting a more restrictive shape cannot be represented:
        // the conservative answer is None (keep everything).
        let r = ShapedRegion::rect(square(3));
        let t = ShapedRegion::upper_triangle(square(3));
        assert!(r.subtract(&Pred::tru(), &t).is_none());
    }

    #[test]
    fn same_shape_subtract_bounds() {
        // upper triangle minus its first two columns, same shape.
        let t = ShapedRegion::upper_triangle(square(4));
        let cut = ShapedRegion::new(
            Region::from_ranges([
                Range::contiguous(Expr::from(1), Expr::from(4)),
                Range::contiguous(Expr::from(1), Expr::from(2)),
            ]),
            [ShapeCond::le(0, 1, 0)],
        );
        let d = t.subtract(&Pred::tru(), &cut).unwrap();
        let got = points(&d);
        // brute force
        let mut want = BTreeSet::new();
        for i in 1..=4i64 {
            for j in 3..=4i64 {
                if i <= j {
                    want.insert(vec![i, j]);
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn union_same_shape_merges() {
        let a = ShapedRegion::new(
            Region::from_ranges([
                Range::contiguous(Expr::from(1), Expr::from(2)),
                Range::contiguous(Expr::from(1), Expr::from(4)),
            ]),
            [ShapeCond::le(0, 1, 0)],
        );
        let b = ShapedRegion::new(
            Region::from_ranges([
                Range::contiguous(Expr::from(3), Expr::from(4)),
                Range::contiguous(Expr::from(1), Expr::from(4)),
            ]),
            [ShapeCond::le(0, 1, 0)],
        );
        let m = a.union_merge(&Pred::tru(), &b).unwrap();
        let got = points(&m);
        assert_eq!(
            got,
            ShapedRegion::upper_triangle(square(4))
                .enumerate()
                .unwrap()
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn union_different_shapes_kept_apart() {
        let t = ShapedRegion::upper_triangle(square(3));
        let d = ShapedRegion::diagonal(square(3));
        assert!(t.union_merge(&Pred::tru(), &d).is_none());
    }

    #[test]
    fn brute_force_intersection_agreement() {
        // Exhaustive check over several shape pairs on a 4×4 grid.
        let shapes = [
            vec![],
            vec![ShapeCond::eq(0, 1, 0)],
            vec![ShapeCond::le(0, 1, 0)],
            vec![ShapeCond::le(1, 0, 1)],
            vec![ShapeCond::eq(0, 1, -1)],
        ];
        for sa in &shapes {
            for sb in &shapes {
                let a = ShapedRegion::new(square(4), sa.iter().copied());
                let b = ShapedRegion::new(square(4), sb.iter().copied());
                let got = points(&a.intersect(&Pred::tru(), &b));
                let pa: BTreeSet<Vec<i64>> = a.enumerate().unwrap().into_iter().collect();
                let pb: BTreeSet<Vec<i64>> = b.enumerate().unwrap().into_iter().collect();
                let want: BTreeSet<Vec<i64>> = pa.intersection(&pb).cloned().collect();
                assert_eq!(got, want, "shapes {sa:?} ∩ {sb:?}");
            }
        }
    }
}
