//! Symbolic range triples `(l : u : s)`.

use pred::Pred;
use serde::{Deserialize, Serialize};
use std::fmt;
use sym::{compare, Expr, SymOrdering};

/// A range triple `(lo : hi : step)` denoting `{lo, lo+step, …} ∩ [lo, hi]`.
///
/// Steps are positive; the common case is 1. Bounds are symbolic
/// expressions. A range is *valid* (non-empty) iff `lo <= hi`; validity is
/// tracked in guards, not in the range itself.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Inclusive upper bound.
    pub hi: Expr,
    /// Positive step.
    pub step: Expr,
}

impl Range {
    /// `(lo : hi : step)`.
    pub fn new(lo: Expr, hi: Expr, step: Expr) -> Self {
        Range { lo, hi, step }
    }

    /// A contiguous range `(lo : hi : 1)`.
    pub fn contiguous(lo: Expr, hi: Expr) -> Self {
        Range::new(lo, hi, Expr::one())
    }

    /// A single element `(e : e : 1)`.
    pub fn unit(e: Expr) -> Self {
        Range::new(e.clone(), e, Expr::one())
    }

    /// The validity condition `lo <= hi` of this range.
    pub fn validity(&self) -> Pred {
        Pred::le(self.lo.clone(), self.hi.clone())
    }

    /// `true` iff the range is provably empty (`lo > hi`).
    pub fn definitely_empty(&self) -> bool {
        compare(&self.lo, &self.hi) == SymOrdering::Greater
    }

    /// `true` iff the range is provably non-empty (`lo <= hi`).
    pub fn definitely_nonempty(&self) -> bool {
        compare(&self.lo, &self.hi).is_le()
    }

    /// `true` iff the step is the constant 1.
    pub fn unit_step(&self) -> bool {
        self.step.as_const() == Some(1)
    }

    /// The step as a constant, if it is one.
    pub fn const_step(&self) -> Option<i64> {
        self.step.as_const()
    }

    /// `true` iff this is a single provable element (`lo == hi`).
    pub fn is_singleton(&self) -> bool {
        compare(&self.lo, &self.hi) == SymOrdering::Equal
    }

    /// Does any component mention the variable?
    pub fn contains_var(&self, name: &str) -> bool {
        self.lo.contains_var(name) || self.hi.contains_var(name) || self.step.contains_var(name)
    }

    /// Collects every scalar name mentioned by the range.
    pub fn collect_vars(&self, out: &mut std::collections::BTreeSet<sym::Name>) {
        out.extend(self.lo.vars());
        out.extend(self.hi.vars());
        out.extend(self.step.vars());
    }

    /// Substitutes a scalar in all components; `None` on overflow.
    pub fn try_subst_var(&self, name: &str, value: &Expr) -> Option<Range> {
        Some(Range {
            lo: self.lo.try_subst_var(name, value)?,
            hi: self.hi.try_subst_var(name, value)?,
            step: self.step.try_subst_var(name, value)?,
        })
    }

    /// Structural equality after normalization (bounds and step identical as
    /// polynomials).
    pub fn same_as(&self, other: &Range) -> bool {
        self == other
    }

    /// Number of elements if all bounds are constants.
    pub fn const_len(&self) -> Option<i64> {
        let lo = self.lo.as_const()?;
        let hi = self.hi.as_const()?;
        let s = self.step.as_const()?;
        if s <= 0 {
            return None;
        }
        Some(if hi < lo { 0 } else { (hi - lo) / s + 1 })
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{}", self.lo)
        } else if self.unit_step() {
            write!(f, "{}:{}", self.lo, self.hi)
        } else {
            write!(f, "{}:{}:{}", self.lo, self.hi, self.step)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sym::parse_expr;

    fn e(s: &str) -> Expr {
        parse_expr(s).unwrap()
    }

    #[test]
    fn constructors_and_display() {
        let r = Range::contiguous(e("1"), e("n"));
        assert_eq!(r.to_string(), "1:n");
        let u = Range::unit(e("jmax"));
        assert_eq!(u.to_string(), "jmax");
        let s = Range::new(e("1"), e("n"), e("2"));
        assert_eq!(s.to_string(), "1:n:2");
    }

    #[test]
    fn emptiness() {
        assert!(Range::contiguous(e("5"), e("3")).definitely_empty());
        assert!(Range::contiguous(e("3"), e("5")).definitely_nonempty());
        let sym_r = Range::contiguous(e("a"), e("b"));
        assert!(!sym_r.definitely_empty());
        assert!(!sym_r.definitely_nonempty());
        // a <= a+1 provable
        assert!(Range::contiguous(e("a"), e("a + 1")).definitely_nonempty());
    }

    #[test]
    fn validity_guard() {
        let r = Range::contiguous(e("a"), e("b"));
        let v = r.validity();
        assert!(!v.is_true() && !v.is_false());
        let t = Range::contiguous(e("1"), e("10"));
        assert!(t.validity().is_true());
    }

    #[test]
    fn singleton_and_len() {
        assert!(Range::unit(e("k")).is_singleton());
        assert_eq!(Range::contiguous(e("1"), e("10")).const_len(), Some(10));
        assert_eq!(Range::new(e("1"), e("9"), e("2")).const_len(), Some(5));
        assert_eq!(Range::contiguous(e("5"), e("3")).const_len(), Some(0));
        assert_eq!(Range::contiguous(e("1"), e("n")).const_len(), None);
    }

    #[test]
    fn subst() {
        let r = Range::contiguous(e("1"), e("n"));
        let s = r.try_subst_var("n", &e("10")).unwrap();
        assert_eq!(s, Range::contiguous(e("1"), e("10")));
        assert!(r.contains_var("n"));
        assert!(!s.contains_var("n"));
    }
}
