//! Integer intervals with optionally-infinite endpoints.

use std::fmt;

/// An integer interval `[lo, hi]`; `None` means unbounded on that side.
/// The empty interval is canonicalized to `[1, 0]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Lower bound (`None` = −∞).
    pub lo: Option<i64>,
    /// Upper bound (`None` = +∞).
    pub hi: Option<i64>,
}

impl Interval {
    /// The full interval ⊤ (every integer).
    pub const TOP: Interval = Interval { lo: None, hi: None };

    /// The empty interval ⊥.
    pub const EMPTY: Interval = Interval {
        lo: Some(1),
        hi: Some(0),
    };

    /// A single constant.
    pub fn constant(c: i64) -> Interval {
        Interval {
            lo: Some(c),
            hi: Some(c),
        }
    }

    /// `[lo, hi]`, canonicalizing an inverted pair to [`Interval::EMPTY`].
    pub fn new(lo: Option<i64>, hi: Option<i64>) -> Interval {
        match (lo, hi) {
            (Some(l), Some(h)) if l > h => Interval::EMPTY,
            _ => Interval { lo, hi },
        }
    }

    /// `true` iff no integer is in the interval.
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(l), Some(h)) if l > h)
    }

    /// `true` iff every integer is in the interval.
    pub fn is_top(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// `Some(c)` iff the interval is exactly `{c}`.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) if l == h => Some(l),
            _ => None,
        }
    }

    /// `true` iff `v` lies in the interval.
    pub fn contains(&self, v: i64) -> bool {
        !self.is_empty() && self.lo.is_none_or(|l| l <= v) && self.hi.is_none_or(|h| v <= h)
    }

    /// `true` iff `other` is a subset of `self`.
    pub fn contains_interval(&self, other: &Interval) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        let lo_ok = match (self.lo, other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => a <= b,
        };
        let hi_ok = match (self.hi, other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(a), Some(b)) => b <= a,
        };
        lo_ok && hi_ok
    }

    /// Least upper bound (interval hull).
    pub fn join(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.min(b)),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.max(b)),
                _ => None,
            },
        }
    }

    /// Greatest lower bound (intersection).
    pub fn meet(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(
            match (self.lo, other.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (x, None) | (None, x) => x,
            },
            match (self.hi, other.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (x, None) | (None, x) => x,
            },
        )
    }

    /// Interval sum; an overflowing endpoint becomes unbounded.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: match (self.lo, other.lo) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            },
            hi: match (self.hi, other.hi) {
                (Some(a), Some(b)) => a.checked_add(b),
                _ => None,
            },
        }
    }

    /// Interval difference `self - other`.
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        Interval {
            lo: self.hi.and_then(i64::checked_neg),
            hi: self.lo.and_then(i64::checked_neg),
        }
    }

    /// Interval product. Fully finite operands take the corner-product
    /// hull; a half-infinite operand only survives scaling by an exact
    /// constant, everything else widens to ⊤ — imprecise but sound.
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if let Some(c) = self.as_const() {
            return other.scale(c);
        }
        if let Some(c) = other.as_const() {
            return self.scale(c);
        }
        match (self.lo, self.hi, other.lo, other.hi) {
            (Some(a), Some(b), Some(c), Some(d)) => {
                let corners = [
                    a.checked_mul(c),
                    a.checked_mul(d),
                    b.checked_mul(c),
                    b.checked_mul(d),
                ];
                if corners.iter().any(Option::is_none) {
                    return Interval::TOP;
                }
                let vals: Vec<i64> = corners.iter().map(|c| c.unwrap()).collect();
                Interval {
                    lo: vals.iter().min().copied(),
                    hi: vals.iter().max().copied(),
                }
            }
            _ => Interval::TOP,
        }
    }

    /// Multiplication by a constant.
    pub fn scale(&self, c: i64) -> Interval {
        if self.is_empty() {
            return Interval::EMPTY;
        }
        if c == 0 {
            return Interval::constant(0);
        }
        let lo = self.lo.and_then(|v| v.checked_mul(c));
        let hi = self.hi.and_then(|v| v.checked_mul(c));
        if c > 0 {
            Interval { lo, hi }
        } else {
            Interval { lo: hi, hi: lo }
        }
    }

    /// Standard widening against the [`crate::WIDENING_THRESHOLDS`]
    /// ladder: an endpoint that moved past the previous iterate jumps to
    /// the nearest enclosing threshold instead of creeping one step per
    /// iteration.
    pub fn widen(&self, next: &Interval) -> Interval {
        if self.is_empty() {
            return *next;
        }
        if next.is_empty() {
            return *self;
        }
        let lo = match (self.lo, next.lo) {
            (Some(a), Some(b)) if b < a => crate::WIDENING_THRESHOLDS
                .iter()
                .rev()
                .find(|&&t| t <= b)
                .copied(),
            (Some(a), Some(_)) => Some(a),
            _ => None,
        };
        let hi = match (self.hi, next.hi) {
            (Some(a), Some(b)) if b > a => crate::WIDENING_THRESHOLDS
                .iter()
                .find(|&&t| t >= b)
                .copied(),
            (Some(a), Some(_)) => Some(a),
            _ => None,
        };
        Interval { lo, hi }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("empty");
        }
        match self.lo {
            Some(l) => write!(f, "[{l}, ")?,
            None => f.write_str("[-inf, ")?,
        }
        match self.hi {
            Some(h) => write!(f, "{h}]"),
            None => f.write_str("+inf]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_basics() {
        let a = Interval::new(Some(1), Some(5));
        let b = Interval::new(Some(3), Some(9));
        assert_eq!(a.join(&b), Interval::new(Some(1), Some(9)));
        assert_eq!(a.meet(&b), Interval::new(Some(3), Some(5)));
        assert!(Interval::new(Some(6), Some(9)).meet(&a).is_empty());
        assert!(Interval::TOP.contains_interval(&a));
        assert!(!a.contains_interval(&Interval::TOP));
        assert!(a.contains_interval(&Interval::EMPTY));
    }

    #[test]
    fn arithmetic() {
        let a = Interval::new(Some(1), Some(5));
        let b = Interval::new(Some(-2), Some(3));
        assert_eq!(a.add(&b), Interval::new(Some(-1), Some(8)));
        assert_eq!(a.sub(&b), Interval::new(Some(-2), Some(7)));
        assert_eq!(a.neg(), Interval::new(Some(-5), Some(-1)));
        assert_eq!(a.mul(&b), Interval::new(Some(-10), Some(15)));
        assert_eq!(a.scale(-2), Interval::new(Some(-10), Some(-2)));
        let half = Interval::new(Some(0), None);
        assert_eq!(half.add(&a), Interval::new(Some(1), None));
        assert_eq!(half.mul(&b), Interval::TOP);
        assert_eq!(half.scale(3), Interval::new(Some(0), None));
    }

    #[test]
    fn overflow_is_unbounded_not_wrapped() {
        let big = Interval::constant(i64::MAX);
        let sum = big.add(&Interval::constant(1));
        assert_eq!(sum.hi, None);
        assert_eq!(big.scale(2).hi, None);
    }

    #[test]
    fn widening_jumps_to_thresholds() {
        let a = Interval::new(Some(0), Some(1));
        let b = Interval::new(Some(0), Some(2));
        let w = a.widen(&b);
        assert_eq!(w.lo, Some(0));
        assert!(w.hi.unwrap() >= 2, "widened above the moving bound");
        // A stable bound is left alone.
        assert_eq!(a.widen(&a), a);
        // Motion past the last threshold goes to infinity.
        let huge = Interval::new(Some(0), Some(i64::MAX - 1));
        assert_eq!(a.widen(&huge).hi, None);
    }

    #[test]
    fn display() {
        assert_eq!(Interval::new(Some(1), Some(5)).to_string(), "[1, 5]");
        assert_eq!(Interval::new(None, Some(0)).to_string(), "[-inf, 0]");
        assert_eq!(Interval::EMPTY.to_string(), "empty");
    }
}
