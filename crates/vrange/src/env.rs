//! Range environments and interval evaluation of symbolic expressions.

use crate::{Budget, Congruence, Interval};
use std::collections::BTreeMap;
use std::fmt;
use sym::Expr;

/// What the pass knows about one scalar: an interval and a congruence,
/// interpreted conjunctively.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ValueRange {
    /// Interval component.
    pub interval: Interval,
    /// Congruence component.
    pub congruence: Congruence,
}

impl ValueRange {
    /// No information.
    pub const TOP: ValueRange = ValueRange {
        interval: Interval::TOP,
        congruence: Congruence::TOP,
    };

    /// Exactly the constant `c`.
    pub fn constant(c: i64) -> ValueRange {
        ValueRange {
            interval: Interval::constant(c),
            congruence: Congruence::constant(c),
        }
    }

    /// An interval with no congruence information.
    pub fn of_interval(iv: Interval) -> ValueRange {
        ValueRange {
            interval: iv,
            congruence: iv.as_const().map_or(Congruence::TOP, Congruence::constant),
        }
    }

    /// `true` iff nothing is known.
    pub fn is_top(&self) -> bool {
        self.interval.is_top() && self.congruence.is_top()
    }

    /// `true` iff no value satisfies both components.
    pub fn is_empty(&self) -> bool {
        self.interval.is_empty()
    }

    /// `Some(c)` iff the range pins an exact constant.
    pub fn as_const(&self) -> Option<i64> {
        self.interval
            .as_const()
            .or_else(|| self.congruence.as_const())
    }

    /// Least upper bound.
    pub fn join(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            interval: self.interval.join(&other.interval),
            congruence: self.congruence.join(&other.congruence),
        }
    }

    /// Greatest lower bound.
    pub fn meet(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            interval: self.interval.meet(&other.interval),
            congruence: if self.congruence.is_top() {
                other.congruence
            } else {
                self.congruence
            },
        }
    }

    /// Sum.
    pub fn add(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            interval: self.interval.add(&other.interval),
            congruence: self.congruence.add(&other.congruence),
        }
    }

    /// Difference.
    pub fn sub(&self, other: &ValueRange) -> ValueRange {
        self.add(&other.neg())
    }

    /// Negation.
    pub fn neg(&self) -> ValueRange {
        ValueRange {
            interval: self.interval.neg(),
            congruence: self.congruence.neg(),
        }
    }

    /// Product.
    pub fn mul(&self, other: &ValueRange) -> ValueRange {
        ValueRange {
            interval: self.interval.mul(&other.interval),
            congruence: self.congruence.mul(&other.congruence),
        }
    }

    /// Widening (interval component only; congruences join).
    pub fn widen(&self, next: &ValueRange) -> ValueRange {
        ValueRange {
            interval: self.interval.widen(&next.interval),
            congruence: self.congruence.join(&next.congruence),
        }
    }
}

impl fmt::Display for ValueRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.congruence.is_top() || self.congruence.as_const().is_some() {
            write!(f, "{}", self.interval)
        } else {
            write!(f, "{} & {}", self.interval, self.congruence)
        }
    }
}

/// Proved ranges for a set of scalars. Missing names are ⊤.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RangeEnv {
    map: BTreeMap<String, ValueRange>,
}

impl RangeEnv {
    /// The empty (all-⊤) environment.
    pub fn new() -> RangeEnv {
        RangeEnv::default()
    }

    /// The proved range of `name` (⊤ when unknown).
    pub fn get(&self, name: &str) -> ValueRange {
        self.map.get(name).copied().unwrap_or(ValueRange::TOP)
    }

    /// Binds `name`; a ⊤ binding is dropped to keep the map sparse.
    pub fn set(&mut self, name: impl Into<String>, r: ValueRange) {
        let name = name.into();
        if r.is_top() {
            self.map.remove(&name);
        } else {
            self.map.insert(name, r);
        }
    }

    /// Removes any binding for `name`.
    pub fn forget(&mut self, name: &str) {
        self.map.remove(name);
    }

    /// Pointwise join: names bound on only one side become ⊤.
    pub fn join(&self, other: &RangeEnv) -> RangeEnv {
        let mut out = RangeEnv::new();
        for (n, r) in &self.map {
            if let Some(o) = other.map.get(n) {
                out.set(n.clone(), r.join(o));
            }
        }
        out
    }

    /// Pointwise widening of `self` against the next iterate.
    pub fn widen(&self, next: &RangeEnv) -> RangeEnv {
        let mut out = RangeEnv::new();
        for (n, r) in &self.map {
            if let Some(o) = next.map.get(n) {
                out.set(n.clone(), r.widen(o));
            }
        }
        out
    }

    /// The bound names and their ranges.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &ValueRange)> {
        self.map.iter()
    }

    /// Number of non-⊤ bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` iff every name is ⊤.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Evaluates a normalized symbolic expression to a [`ValueRange`] under
/// `env`. Each term and variable factor charges the budget; exhaustion
/// answers ⊤.
pub fn eval_sym(e: &Expr, env: &RangeEnv, budget: &Budget) -> ValueRange {
    let mut sum = ValueRange::constant(0);
    for t in e.terms() {
        if !budget.step() {
            return ValueRange::TOP;
        }
        let mut prod = ValueRange::constant(t.coef);
        for (name, power) in t.mono.factors() {
            if !budget.step() {
                return ValueRange::TOP;
            }
            let v = env.get(name.as_str());
            for _ in 0..*power {
                prod = prod.mul(&v);
            }
        }
        sum = sum.add(&prod);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> ValueRange {
        ValueRange::of_interval(Interval::new(Some(lo), Some(hi)))
    }

    #[test]
    fn eval_affine() {
        let mut env = RangeEnv::new();
        env.set("n", iv(1, 10));
        // 2*n + 3 ∈ [5, 23]
        let e = Expr::var("n") * Expr::from(2) + Expr::from(3);
        let r = eval_sym(&e, &env, &Budget::default());
        assert_eq!(r.interval, Interval::new(Some(5), Some(23)));
    }

    #[test]
    fn eval_unbound_var_is_top() {
        let e = Expr::var("q") + Expr::from(1);
        let r = eval_sym(&e, &RangeEnv::new(), &Budget::default());
        assert!(r.interval.is_top());
    }

    #[test]
    fn eval_product_and_power() {
        let mut env = RangeEnv::new();
        env.set("i", iv(2, 3));
        let e = Expr::var("i") * Expr::var("i");
        let r = eval_sym(&e, &env, &Budget::default());
        assert_eq!(r.interval, Interval::new(Some(4), Some(9)));
    }

    #[test]
    fn exhausted_budget_degrades_to_top() {
        let mut env = RangeEnv::new();
        env.set("n", iv(1, 10));
        let e = Expr::var("n") * Expr::from(2) + Expr::from(3);
        let b = Budget::new(0);
        assert!(eval_sym(&e, &env, &b).is_top());
        assert!(b.degraded());
    }

    #[test]
    fn env_join_drops_one_sided_names() {
        let mut a = RangeEnv::new();
        a.set("n", iv(1, 5));
        a.set("m", iv(0, 0));
        let mut b = RangeEnv::new();
        b.set("n", iv(3, 9));
        let j = a.join(&b);
        assert_eq!(j.get("n").interval, Interval::new(Some(1), Some(9)));
        assert!(j.get("m").is_top());
    }
}
