//! Sparse conditional value-range and congruence analysis over scalars.
//!
//! `vrange` is the SCCP-shaped precision pass DESIGN.md §4g describes: it
//! tracks, for every integer scalar, an interval `[lo, hi]` (either bound
//! possibly infinite) and a congruence `r (mod m)`, propagated
//! flow-sensitively with branch narrowing on `IF` arms and
//! widening/narrowing to a fixed point across `DO` loops.
//!
//! The crate has two consumers:
//!
//! * the dataflow analyzer evaluates **symbolic** expressions
//!   ([`eval_sym`]) under an environment of proved scalar bounds, and
//!   feeds the results into `sym::compare` as a refutation oracle so
//!   Δ-unknown guards can be discharged during summary construction;
//! * panolint walks the **AST** ([`routine_facts`]) with the same
//!   lattice to derive the P007 (infeasible guard), P008 (subscript out
//!   of declared bounds) and P009 (loop never executes) diagnostics.
//!
//! Every analysis in the crate is fuel-bounded through [`Budget`]:
//! exhaustion degrades each subsequent answer to ⊤ (all values
//! possible) — never a panic, never an invented fact.

mod congruence;
mod env;
mod fixpoint;
mod interval;
mod walk;

pub use congruence::Congruence;
pub use env::{eval_sym, RangeEnv, ValueRange};
pub use fixpoint::{loop_fixpoint, ScalarAssign, WIDENING_THRESHOLDS};
pub use interval::Interval;
pub use walk::{routine_facts, DeclaredDims, RangeFact, RangeFactKind};

use std::cell::Cell;

/// Default per-routine step budget: far above what any benchsuite
/// routine needs, low enough to bound pathological inputs.
pub const DEFAULT_BUDGET: u64 = 100_000;

/// A step budget for one analysis scope. Each expression node evaluated
/// and each transfer step charges one unit; once the budget hits zero
/// every further query answers ⊤ and [`Budget::degraded`] reports it.
#[derive(Debug)]
pub struct Budget {
    remaining: Cell<u64>,
    degraded: Cell<bool>,
}

impl Budget {
    /// A budget of `steps` units.
    pub fn new(steps: u64) -> Self {
        Budget {
            remaining: Cell::new(steps),
            degraded: Cell::new(false),
        }
    }

    /// Charges one unit; `false` once the budget is exhausted.
    pub fn step(&self) -> bool {
        let r = self.remaining.get();
        if r == 0 {
            self.degraded.set(true);
            return false;
        }
        self.remaining.set(r - 1);
        true
    }

    /// `true` once any query has been degraded to ⊤ by exhaustion.
    pub fn degraded(&self) -> bool {
        self.degraded.get()
    }

    /// Snapshots the budget state (for per-routine save/restore around
    /// cached-summary boundaries, where determinism requires each
    /// routine to see the same starting fuel on every run).
    pub fn save(&self) -> BudgetState {
        BudgetState {
            remaining: self.remaining.get(),
            degraded: self.degraded.get(),
        }
    }

    /// Restores a snapshot taken by [`Budget::save`].
    pub fn restore(&self, state: BudgetState) {
        self.remaining.set(state.remaining);
        self.degraded.set(state.degraded);
    }

    /// Resets to a full budget of `steps` units.
    pub fn reset(&self, steps: u64) {
        self.remaining.set(steps);
        self.degraded.set(false);
    }
}

/// Saved [`Budget`] state from [`Budget::save`].
#[derive(Clone, Copy, Debug)]
pub struct BudgetState {
    remaining: u64,
    degraded: bool,
}

impl Default for Budget {
    fn default() -> Self {
        Budget::new(DEFAULT_BUDGET)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_counts_down_and_flags() {
        let b = Budget::new(2);
        assert!(b.step());
        assert!(b.step());
        assert!(!b.degraded());
        assert!(!b.step());
        assert!(b.degraded());
        assert!(!b.step());
    }
}
