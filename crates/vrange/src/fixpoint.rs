//! Loop fixed points with threshold widening and one narrowing pass.

use crate::{eval_sym, Budget, Interval, RangeEnv, ValueRange};
use sym::Expr;

/// The widening ladder (DESIGN.md §4g): a moving bound jumps outward to
/// the nearest enclosing threshold, and past the last one to ±∞, so a
/// loop stabilizes in at most one pass per rung instead of one pass per
/// integer.
pub const WIDENING_THRESHOLDS: [i64; 11] =
    [-65536, -4096, -256, -16, -1, 0, 1, 16, 256, 4096, 65536];

/// One scalar assignment inside a loop body, in symbolic form. `rhs` is
/// `None` when the right-hand side is opaque (not representable as a
/// polynomial over scalars) — the target then degrades to ⊤.
#[derive(Clone, Debug)]
pub struct ScalarAssign {
    /// The assigned scalar.
    pub var: String,
    /// Its symbolic right-hand side, if representable.
    pub rhs: Option<Expr>,
}

/// Number of pre-widening iterations: small constant loops converge
/// exactly, everything else widens on the next pass.
const DESCEND_ITERS: usize = 2;

/// Computes ranges that hold for the loop-carried values of the scalars
/// assigned in a loop body, by iterating the body's assignments from
/// `entry` to a post-fixed point: [`DESCEND_ITERS`] plain iterations,
/// then threshold widening until stable, then one narrowing pass.
///
/// `index` is the loop variable with its trip range (bound while the
/// body runs). The result binds exactly the assigned scalars; callers
/// use it to seed the clobber synthetics the analyzer allocates for
/// them.
pub fn loop_fixpoint(
    entry: &RangeEnv,
    index: Option<(&str, Interval)>,
    assigns: &[ScalarAssign],
    budget: &Budget,
) -> RangeEnv {
    let mut cur = entry.clone();
    if let Some((var, iv)) = index {
        cur.set(var, ValueRange::of_interval(iv));
    }
    let step = |env: &RangeEnv| -> RangeEnv {
        let mut next = env.clone();
        for a in assigns {
            if !budget.step() {
                next.set(a.var.clone(), ValueRange::TOP);
                continue;
            }
            let v = match &a.rhs {
                Some(e) => eval_sym(e, &next, budget),
                None => ValueRange::TOP,
            };
            // The assignment list is flow-insensitive (branch structure
            // is flattened), so an assignment may not execute on a given
            // path: join with the prior value instead of overwriting.
            let prev = next.get(&a.var);
            next.set(a.var.clone(), v.join(&prev));
        }
        next
    };
    // Plain descent: join each iterate into the accumulator.
    for _ in 0..DESCEND_ITERS {
        let next = step(&cur);
        let joined = join_assigned(&cur, &next, assigns);
        if joined == cur {
            break;
        }
        cur = joined;
    }
    // Widen until stable (the threshold ladder bounds the pass count).
    loop {
        let next = step(&cur);
        let widened = widen_assigned(&cur, &join_assigned(&cur, &next, assigns), assigns);
        if widened == cur || !budget.step() {
            break;
        }
        cur = widened;
    }
    // One narrowing pass recovers precision widening overshot.
    let narrowed = step(&cur);
    let mut out = RangeEnv::new();
    for a in assigns {
        let w = cur.get(&a.var);
        let n = narrowed.get(&a.var);
        // Narrowing may only shrink; keep the widened answer otherwise.
        let r = if w.interval.contains_interval(&n.interval) {
            w.meet(&n)
        } else {
            w
        };
        out.set(a.var.clone(), r.join(&entry.get(&a.var)));
    }
    out
}

fn join_assigned(a: &RangeEnv, b: &RangeEnv, assigns: &[ScalarAssign]) -> RangeEnv {
    let mut out = a.clone();
    for s in assigns {
        out.set(s.var.clone(), a.get(&s.var).join(&b.get(&s.var)));
    }
    out
}

fn widen_assigned(a: &RangeEnv, b: &RangeEnv, assigns: &[ScalarAssign]) -> RangeEnv {
    let mut out = a.clone();
    for s in assigns {
        out.set(s.var.clone(), a.get(&s.var).widen(&b.get(&s.var)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: i64, hi: i64) -> ValueRange {
        ValueRange::of_interval(Interval::new(Some(lo), Some(hi)))
    }

    #[test]
    fn constant_reassignment_converges_exactly() {
        // m = 150 in the body: the loop-carried range is the join with
        // the entry value.
        let mut entry = RangeEnv::new();
        entry.set("m", iv(100, 100));
        let assigns = [ScalarAssign {
            var: "m".into(),
            rhs: Some(Expr::from(150)),
        }];
        let out = loop_fixpoint(&entry, None, &assigns, &Budget::default());
        assert_eq!(out.get("m").interval, Interval::new(Some(100), Some(150)));
    }

    #[test]
    fn counter_widens_to_threshold_not_forever() {
        // k = k + 1 from [0,0]: widening must terminate with a finite
        // number of passes and an upper bound of +inf.
        let mut entry = RangeEnv::new();
        entry.set("k", iv(0, 0));
        let assigns = [ScalarAssign {
            var: "k".into(),
            rhs: Some(Expr::var("k") + Expr::from(1)),
        }];
        let out = loop_fixpoint(&entry, None, &assigns, &Budget::default());
        let k = out.get("k").interval;
        assert_eq!(k.lo, Some(0), "lower bound is stable");
        assert!(k.hi.is_none(), "upper bound widened to +inf, got {k}");
    }

    #[test]
    fn index_bound_flows_into_assigned_scalar() {
        let entry = RangeEnv::new();
        let assigns = [ScalarAssign {
            var: "j".into(),
            rhs: Some(Expr::var("i") + Expr::from(1)),
        }];
        let out = loop_fixpoint(
            &entry,
            Some(("i", Interval::new(Some(1), Some(10)))),
            &assigns,
            &Budget::default(),
        );
        // j = i + 1 with i ∈ [1,10]: j ∈ [2,11] joined with ⊤ entry = ⊤?
        // No: entry.get("j") is ⊤ — the join degrades to ⊤. The caller
        // is expected to pass the entry env only for scalars live into
        // the loop; here j's entry value is unknown so ⊤ is the sound
        // answer for the loop-carried join... unless the loop always
        // executes, which this helper does not assume.
        assert!(out.get("j").is_top());
    }

    #[test]
    fn opaque_rhs_degrades_to_top() {
        let mut entry = RangeEnv::new();
        entry.set("m", iv(1, 2));
        let assigns = [ScalarAssign {
            var: "m".into(),
            rhs: None,
        }];
        let out = loop_fixpoint(&entry, None, &assigns, &Budget::default());
        assert!(out.get("m").is_top());
    }

    #[test]
    fn zero_budget_is_all_top_not_panic() {
        let mut entry = RangeEnv::new();
        entry.set("m", iv(0, 5));
        let assigns = [ScalarAssign {
            var: "m".into(),
            rhs: Some(Expr::from(1)),
        }];
        let b = Budget::new(0);
        let out = loop_fixpoint(&entry, None, &assigns, &b);
        assert!(out.get("m").is_top());
        assert!(b.degraded());
    }
}
