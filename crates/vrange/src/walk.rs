//! Flow-sensitive range walk over a routine's AST — the lint-side
//! consumer of the lattice, powering P007/P008/P009.
//!
//! The walk mirrors the analyzer's forward pass but stays on the AST:
//! integer scalars are tracked through assignments, `IF` arms narrow
//! with the branch condition, `DO` loops bind the index to its trip
//! hull and clobber body-assigned scalars, and unstructured control flow
//! (`GOTO` and its targets) degrades the environment to ⊤ — imprecise
//! but never unsound.

use crate::{Budget, Interval, RangeEnv, ValueRange};
use fortran::{BinOp, Expr, LValue, Routine, Stmt, StmtKind, Ty, UnOp};
use std::collections::{BTreeMap, BTreeSet};

/// Declared (lo, hi) bounds per dimension for each array of a routine,
/// constant-evaluated by semantic analysis; `None` for a symbolic or
/// assumed bound.
pub type DeclaredDims = BTreeMap<String, Vec<(Option<i64>, Option<i64>)>>;

/// One proved range fact a lint rule can report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeFact {
    /// Source line of the offending statement.
    pub line: u32,
    /// What was proved.
    pub kind: RangeFactKind,
}

/// The provable situations the walk reports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RangeFactKind {
    /// P007: a guard is constant, so one arm can never execute.
    InfeasibleGuard {
        /// The condition, as written.
        cond: String,
        /// The constant truth value the pass proved.
        always: bool,
    },
    /// P008: a subscript's proved range is disjoint from the declared
    /// dimension.
    SubscriptOutOfBounds {
        /// Array name.
        array: String,
        /// 1-based dimension index.
        dim: usize,
        /// The subscript expression, as written.
        subscript: String,
        /// Its proved range.
        range: Interval,
        /// Declared bounds of the dimension.
        declared: (Option<i64>, Option<i64>),
    },
    /// P009: a `DO` loop's trip range is provably empty.
    LoopNeverExecutes {
        /// Loop index variable.
        var: String,
        /// Proved range of the lower bound.
        lo: Interval,
        /// Proved range of the upper bound.
        hi: Interval,
    },
}

struct Walker<'a> {
    dims: &'a DeclaredDims,
    budget: &'a Budget,
    int_scalars: BTreeSet<String>,
    common_scalars: BTreeSet<String>,
    goto_targets: BTreeSet<u32>,
    facts: Vec<RangeFact>,
}

/// Runs the range walk over `routine` and returns every proved fact, in
/// source order. `dims` supplies the declared array bounds (see
/// `sema::SymbolTable::declared_bounds`).
pub fn routine_facts(routine: &Routine, dims: &DeclaredDims, budget: &Budget) -> Vec<RangeFact> {
    let mut w = Walker {
        dims,
        budget,
        int_scalars: integer_scalars(routine),
        common_scalars: BTreeSet::new(),
        goto_targets: BTreeSet::new(),
        facts: Vec::new(),
    };
    for (_, names) in &routine.commons {
        for n in names {
            if w.int_scalars.contains(n) {
                w.common_scalars.insert(n.clone());
            }
        }
    }
    collect_goto_targets(&routine.body, &mut w.goto_targets);
    let mut env = RangeEnv::new();
    // PARAMETER constants are immutable: evaluate them in order (later
    // ones may reference earlier ones).
    for (name, e) in &routine.parameters {
        let v = eval_ast(e, &env, budget);
        env.set(name.clone(), v);
    }
    w.walk(&routine.body, &mut env);
    w.facts
}

/// The integer scalars of a routine: explicitly declared `INTEGER`
/// names plus implicitly-typed `i`–`n` names, minus arrays.
fn integer_scalars(routine: &Routine) -> BTreeSet<String> {
    let arrays: BTreeSet<&str> = routine.arrays.iter().map(|(n, _)| n.as_str()).collect();
    let explicit: BTreeMap<&str, Ty> = routine
        .types
        .iter()
        .map(|(n, t)| (n.as_str(), *t))
        .collect();
    let mut out = BTreeSet::new();
    let mut consider = |name: &str| {
        if arrays.contains(name) {
            return;
        }
        let is_int = match explicit.get(name) {
            Some(t) => *t == Ty::Integer,
            None => matches!(name.bytes().next(), Some(b'i'..=b'n')),
        };
        if is_int {
            out.insert(name.to_string());
        }
    };
    for (n, _) in &routine.types {
        consider(n);
    }
    for n in &routine.params {
        consider(n);
    }
    for (n, _) in &routine.parameters {
        consider(n);
    }
    for (_, names) in &routine.commons {
        for n in names {
            consider(n);
        }
    }
    let from_stmts = |stmts: &[Stmt]| {
        let mut names = Vec::new();
        each_stmt(stmts, &mut |s| {
            if let StmtKind::Assign(LValue::Var(v), _) = &s.kind {
                names.push(v.clone());
            }
            each_stmt_expr(s, &mut |e| {
                e.walk(&mut |e| {
                    if let Expr::Var(v) = e {
                        names.push(v.clone());
                    }
                });
            });
        });
        names
    };
    for n in from_stmts(&routine.body) {
        consider(&n);
    }
    out
}

fn each_stmt<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                each_stmt(then_body, f);
                each_stmt(else_body, f);
            }
            StmtKind::LogicalIf(_, inner) => {
                f(inner);
            }
            StmtKind::Do { body, .. } => each_stmt(body, f),
            _ => {}
        }
    }
}

/// Visits the top-level expressions of one statement (not recursing
/// into nested statements).
fn each_stmt_expr<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &s.kind {
        StmtKind::Assign(lv, rhs) => {
            if let LValue::Element(_, subs) = lv {
                for e in subs {
                    f(e);
                }
            }
            f(rhs);
        }
        StmtKind::If { cond, .. } => f(cond),
        StmtKind::LogicalIf(cond, _) => f(cond),
        StmtKind::Do { lo, hi, step, .. } => {
            f(lo);
            f(hi);
            if let Some(st) = step {
                f(st);
            }
        }
        StmtKind::Call(_, args) => {
            for a in args {
                f(a);
            }
        }
        _ => {}
    }
}

fn collect_goto_targets(stmts: &[Stmt], out: &mut BTreeSet<u32>) {
    each_stmt(stmts, &mut |s| {
        if let StmtKind::Goto(l) = &s.kind {
            out.insert(*l);
        }
    });
}

impl Walker<'_> {
    fn walk(&mut self, stmts: &[Stmt], env: &mut RangeEnv) {
        for s in stmts {
            self.stmt(s, env);
        }
    }

    fn stmt(&mut self, s: &Stmt, env: &mut RangeEnv) {
        if !self.budget.step() {
            *env = RangeEnv::new();
            return;
        }
        // A GOTO target merges unknown in-edges: degrade to ⊤.
        if matches!(s.label, Some(l) if self.goto_targets.contains(&l)) {
            *env = RangeEnv::new();
        }
        // Proved-range subscript checks on this statement's expressions.
        each_stmt_expr(s, &mut |e| self.check_subscripts(s.line, e, env));
        if let StmtKind::Assign(LValue::Element(name, subs), _) = &s.kind {
            self.check_element(s.line, name, subs, env);
        }
        match &s.kind {
            StmtKind::Assign(LValue::Var(v), rhs) => {
                if self.int_scalars.contains(v) {
                    let val = eval_ast(rhs, env, self.budget);
                    env.set(v.clone(), val);
                }
            }
            StmtKind::Assign(LValue::Element(..), _) => {}
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => match self.cond_value(cond, env) {
                Some(always) => {
                    let dead = if always { else_body } else { then_body };
                    if !dead.is_empty() {
                        self.facts.push(RangeFact {
                            line: s.line,
                            kind: RangeFactKind::InfeasibleGuard {
                                cond: cond.to_string(),
                                always,
                            },
                        });
                    }
                    let live = if always { then_body } else { else_body };
                    let mut live_env = env.clone();
                    refine(&mut live_env, cond, always, self.budget);
                    self.walk(live, &mut live_env);
                    *env = live_env;
                }
                None => {
                    let mut t_env = env.clone();
                    refine(&mut t_env, cond, true, self.budget);
                    self.walk(then_body, &mut t_env);
                    let mut f_env = env.clone();
                    refine(&mut f_env, cond, false, self.budget);
                    self.walk(else_body, &mut f_env);
                    *env = t_env.join(&f_env);
                }
            },
            StmtKind::LogicalIf(cond, inner) => match self.cond_value(cond, env) {
                Some(true) => self.stmt(inner, env),
                Some(false) => {
                    self.facts.push(RangeFact {
                        line: s.line,
                        kind: RangeFactKind::InfeasibleGuard {
                            cond: cond.to_string(),
                            always: false,
                        },
                    });
                }
                None => {
                    let mut t_env = env.clone();
                    refine(&mut t_env, cond, true, self.budget);
                    self.stmt(inner, &mut t_env);
                    *env = t_env.join(env);
                }
            },
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let l = eval_ast(lo, env, self.budget).interval;
                let h = eval_ast(hi, env, self.budget).interval;
                let st = step.as_ref().map_or(Some(1), |e| {
                    eval_ast(e, env, self.budget).interval.as_const()
                });
                let empty_trip = match st {
                    Some(c) if c > 0 => matches!((l.lo, h.hi), (Some(a), Some(b)) if a > b),
                    Some(c) if c < 0 => matches!((l.hi, h.lo), (Some(a), Some(b)) if a < b),
                    _ => false,
                };
                if empty_trip {
                    self.facts.push(RangeFact {
                        line: s.line,
                        kind: RangeFactKind::LoopNeverExecutes {
                            var: var.clone(),
                            lo: l,
                            hi: h,
                        },
                    });
                    // The body is dead; the index still gets its
                    // initial value.
                    env.set(var.clone(), ValueRange::of_interval(l));
                    return;
                }
                let mut body_env = env.clone();
                for v in assigned_scalars(body, &self.int_scalars, &self.common_scalars) {
                    body_env.forget(&v);
                }
                let hull = match st {
                    Some(c) if c > 0 => Interval::new(l.lo, h.hi),
                    Some(c) if c < 0 => Interval::new(h.lo, l.hi),
                    _ => Interval::new(
                        match (l.lo, h.lo) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            _ => None,
                        },
                        match (l.hi, h.hi) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            _ => None,
                        },
                    ),
                };
                body_env.set(var.clone(), ValueRange::of_interval(hull));
                self.walk(body, &mut body_env);
                // After the loop: body-assigned scalars and the index
                // are unknown; everything else keeps its entry range.
                *env = {
                    let mut out = env.clone();
                    for v in assigned_scalars(body, &self.int_scalars, &self.common_scalars) {
                        out.forget(&v);
                    }
                    out.forget(var);
                    out
                };
            }
            StmtKind::Call(_, args) => {
                // By-reference actuals and COMMON scalars may change.
                for a in args {
                    if let Expr::Var(v) = a {
                        env.forget(v);
                    }
                }
                let commons: Vec<String> = self.common_scalars.iter().cloned().collect();
                for v in commons {
                    env.forget(&v);
                }
            }
            StmtKind::Goto(_) => {
                // Fallthrough is dead; the next live point is a target
                // label, which resets the env anyway.
                *env = RangeEnv::new();
            }
            StmtKind::Return | StmtKind::Continue | StmtKind::Stop => {}
        }
    }

    fn check_subscripts(&mut self, line: u32, e: &Expr, env: &RangeEnv) {
        let mut elements = Vec::new();
        e.walk(&mut |node| {
            if let Expr::Index(name, subs) = node {
                elements.push((name, subs));
            }
        });
        for (name, subs) in elements {
            self.check_element(line, name, subs, env);
        }
    }

    fn check_element(&mut self, line: u32, name: &str, subs: &[Expr], env: &RangeEnv) {
        let Some(dims) = self.dims.get(name) else {
            return;
        };
        for (k, sub) in subs.iter().enumerate() {
            let Some((dlo, dhi)) = dims.get(k).copied() else {
                continue;
            };
            let r = eval_ast(sub, env, self.budget).interval;
            if r.is_empty() {
                continue;
            }
            let below = matches!((r.hi, dlo), (Some(h), Some(l)) if h < l);
            let above = matches!((r.lo, dhi), (Some(l), Some(h)) if l > h);
            if below || above {
                self.facts.push(RangeFact {
                    line,
                    kind: RangeFactKind::SubscriptOutOfBounds {
                        array: name.to_string(),
                        dim: k + 1,
                        subscript: sub.to_string(),
                        range: r,
                        declared: (dlo, dhi),
                    },
                });
            }
        }
    }

    /// Three-valued truth of a condition under `env`.
    fn cond_value(&self, e: &Expr, env: &RangeEnv) -> Option<bool> {
        if !self.budget.step() {
            return None;
        }
        match e {
            Expr::Logical(b) => Some(*b),
            Expr::Un(UnOp::Not, a) => self.cond_value(a, env).map(|b| !b),
            Expr::Bin(op, a, b) if op.is_logical() => {
                let (va, vb) = (self.cond_value(a, env), self.cond_value(b, env));
                match op {
                    BinOp::And => match (va, vb) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    _ => match (va, vb) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                }
            }
            Expr::Bin(op, a, b) if op.is_relational() => {
                let ra = eval_ast(a, env, self.budget);
                let rb = eval_ast(b, env, self.budget);
                decide_relation(*op, &ra, &rb)
            }
            _ => None,
        }
    }
}

/// Decides `a op b` when the proved ranges separate the operands.
fn decide_relation(op: BinOp, a: &ValueRange, b: &ValueRange) -> Option<bool> {
    let (ai, bi) = (a.interval, b.interval);
    if ai.is_empty() || bi.is_empty() {
        return None;
    }
    let lt = matches!((ai.hi, bi.lo), (Some(x), Some(y)) if x < y);
    let le = matches!((ai.hi, bi.lo), (Some(x), Some(y)) if x <= y);
    let gt = matches!((ai.lo, bi.hi), (Some(x), Some(y)) if x > y);
    let ge = matches!((ai.lo, bi.hi), (Some(x), Some(y)) if x >= y);
    match op {
        BinOp::Lt => {
            if lt {
                Some(true)
            } else if ge {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Le => {
            if le {
                Some(true)
            } else if gt {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Gt => {
            if gt {
                Some(true)
            } else if le {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Ge => {
            if ge {
                Some(true)
            } else if lt {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Eq => {
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                Some(x == y)
            } else if lt || gt || a.congruence.disjoint(&b.congruence) {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Ne => decide_relation(BinOp::Eq, a, b).map(|v| !v),
        _ => None,
    }
}

/// Narrows `env` assuming `cond == holds`, for the simple shapes
/// `var REL expr` / `expr REL var` and their `.AND.`/`.OR.`/`.NOT.`
/// combinations.
fn refine(env: &mut RangeEnv, cond: &Expr, holds: bool, budget: &Budget) {
    match cond {
        Expr::Un(UnOp::Not, a) => refine(env, a, !holds, budget),
        Expr::Bin(BinOp::And, a, b) if holds => {
            refine(env, a, true, budget);
            refine(env, b, true, budget);
        }
        Expr::Bin(BinOp::Or, a, b) if !holds => {
            refine(env, a, false, budget);
            refine(env, b, false, budget);
        }
        Expr::Bin(op, a, b) if op.is_relational() => {
            // Normalize to `var op bound`.
            let (var, bound, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Var(v), e) => (v, e, *op),
                (e, Expr::Var(v)) => (v, e, flip(*op)),
                _ => return,
            };
            let r = eval_ast(bound, env, budget).interval;
            if r.is_empty() {
                return;
            }
            let op = if holds { op } else { negate(op) };
            let cur = env.get(var);
            let constraint = match op {
                // var < e with e <= r.hi ⇒ var <= r.hi - 1
                BinOp::Lt => Interval::new(None, r.hi.and_then(|h| h.checked_sub(1))),
                BinOp::Le => Interval::new(None, r.hi),
                BinOp::Gt => Interval::new(r.lo.and_then(|l| l.checked_add(1)), None),
                BinOp::Ge => Interval::new(r.lo, None),
                BinOp::Eq => r,
                _ => return,
            };
            let narrowed = ValueRange {
                interval: cur.interval.meet(&constraint),
                congruence: cur.congruence,
            };
            // An empty meet means this arm is infeasible; keep the
            // narrowed (empty) interval out of the env — the caller
            // decides feasibility through `cond_value`, not here.
            if !narrowed.interval.is_empty() {
                env.set(var.clone(), narrowed);
            }
        }
        _ => {}
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn negate(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Ge,
        BinOp::Le => BinOp::Gt,
        BinOp::Gt => BinOp::Le,
        BinOp::Ge => BinOp::Lt,
        BinOp::Eq => BinOp::Ne,
        BinOp::Ne => BinOp::Eq,
        other => other,
    }
}

/// Integer scalars assigned (or clobbered through CALLs) anywhere in
/// `stmts`.
fn assigned_scalars(
    stmts: &[Stmt],
    int_scalars: &BTreeSet<String>,
    common_scalars: &BTreeSet<String>,
) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    each_stmt(stmts, &mut |s| match &s.kind {
        StmtKind::Assign(LValue::Var(v), _) if int_scalars.contains(v) => {
            out.insert(v.clone());
        }
        StmtKind::Do { var, .. } if int_scalars.contains(var) => {
            out.insert(var.clone());
        }
        StmtKind::Call(_, args) => {
            for a in args {
                if let Expr::Var(v) = a {
                    if int_scalars.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
            out.extend(common_scalars.iter().cloned());
        }
        _ => {}
    });
    out
}

/// Evaluates an AST expression to a [`ValueRange`] under `env`.
/// Non-integer and opaque constructs answer ⊤.
pub fn eval_ast(e: &Expr, env: &RangeEnv, budget: &Budget) -> ValueRange {
    if !budget.step() {
        return ValueRange::TOP;
    }
    match e {
        Expr::Int(c) => ValueRange::constant(*c),
        Expr::Real(_) | Expr::Logical(_) | Expr::Index(..) => ValueRange::TOP,
        Expr::Var(v) => env.get(v),
        Expr::Un(UnOp::Neg, a) => eval_ast(a, env, budget).neg(),
        Expr::Un(UnOp::Not, _) => ValueRange::TOP,
        Expr::Bin(op, a, b) => {
            let (ra, rb) = (eval_ast(a, env, budget), eval_ast(b, env, budget));
            match op {
                BinOp::Add => ra.add(&rb),
                BinOp::Sub => ra.sub(&rb),
                BinOp::Mul => ra.mul(&rb),
                BinOp::Div => match (ra.as_const(), rb.as_const()) {
                    (Some(x), Some(y)) if y != 0 => ValueRange::constant(x / y),
                    _ => ValueRange::TOP,
                },
                BinOp::Pow => match (ra.as_const(), rb.as_const()) {
                    (Some(x), Some(y)) if (0..=16).contains(&y) => x
                        .checked_pow(y as u32)
                        .map_or(ValueRange::TOP, ValueRange::constant),
                    _ => ValueRange::TOP,
                },
                _ => ValueRange::TOP,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::{parse_program, DimBound};

    fn facts_of(src: &str) -> Vec<RangeFact> {
        let program = parse_program(src).expect("parse");
        let routine = &program.routines[0];
        let mut dims = DeclaredDims::new();
        for (name, bounds) in &routine.arrays {
            let ds = bounds
                .iter()
                .map(|b| match b {
                    DimBound::Upper(Expr::Int(n)) => (Some(1), Some(*n)),
                    DimBound::Both(Expr::Int(l), Expr::Int(h)) => (Some(*l), Some(*h)),
                    _ => (Some(1), None),
                })
                .collect();
            dims.insert(name.clone(), ds);
        }
        routine_facts(routine, &dims, &Budget::default())
    }

    #[test]
    fn infeasible_guard_detected() {
        let facts = facts_of(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   N = 5\n\
                   IF (N .GT. 10) THEN\n\
                     A(1) = 0.0\n\
                   ELSE\n\
                     A(2) = 0.0\n\
                   ENDIF\n\
                   END\n",
        );
        assert_eq!(facts.len(), 1, "{facts:?}");
        assert!(matches!(
            &facts[0].kind,
            RangeFactKind::InfeasibleGuard { always: false, .. }
        ));
    }

    #[test]
    fn branch_join_not_constant() {
        // After the join m ∈ [1,2]: neither arm of the second IF is
        // provably dead.
        let facts = facts_of(
            "      SUBROUTINE S(A, K)\n\
                   REAL A(100)\n\
                   IF (K .GT. 0) THEN\n\
                     M = 1\n\
                   ELSE\n\
                     M = 2\n\
                   ENDIF\n\
                   IF (M .GT. 0) THEN\n\
                     A(M) = 0.0\n\
                   ENDIF\n\
                   END\n",
        );
        // M > 0 is provable from the join [1,2] — the ELSE arm is dead,
        // but it is empty, so no fact fires.
        assert!(facts.is_empty(), "{facts:?}");
    }

    #[test]
    fn subscript_out_of_bounds_detected() {
        let facts = facts_of(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   N = 150\n\
                   A(N) = 0.0\n\
                   END\n",
        );
        assert_eq!(facts.len(), 1, "{facts:?}");
        match &facts[0].kind {
            RangeFactKind::SubscriptOutOfBounds {
                array,
                dim,
                declared,
                ..
            } => {
                assert_eq!(array, "a");
                assert_eq!(*dim, 1);
                assert_eq!(*declared, (Some(1), Some(100)));
            }
            other => panic!("unexpected fact {other:?}"),
        }
    }

    #[test]
    fn loop_index_range_checks_subscripts() {
        let facts = facts_of(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   DO 10 I = 1, 50\n\
                     A(I + 200) = 0.0\n\
                10 CONTINUE\n\
                   END\n",
        );
        assert_eq!(facts.len(), 1, "{facts:?}");
        assert!(matches!(
            &facts[0].kind,
            RangeFactKind::SubscriptOutOfBounds { dim: 1, .. }
        ));
    }

    #[test]
    fn empty_trip_loop_detected() {
        let facts = facts_of(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   N = 0\n\
                   DO 10 I = 1, N\n\
                     A(I) = 0.0\n\
                10 CONTINUE\n\
                   END\n",
        );
        assert_eq!(facts.len(), 1, "{facts:?}");
        assert!(matches!(
            &facts[0].kind,
            RangeFactKind::LoopNeverExecutes { .. }
        ));
    }

    #[test]
    fn goto_degrades_to_top() {
        // The backward GOTO forms a loop: n's range must not stick.
        let facts = facts_of(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   N = 150\n\
                20 N = N - 100\n\
                   A(N) = 0.0\n\
                   IF (N .GT. 0) GOTO 20\n\
                   END\n",
        );
        assert!(facts.is_empty(), "{facts:?}");
    }

    #[test]
    fn narrowing_refines_arms() {
        let facts = facts_of(
            "      SUBROUTINE S(A, N)\n\
                   REAL A(100)\n\
                   IF (N .GT. 100) THEN\n\
                     A(N) = 0.0\n\
                   ENDIF\n\
                   END\n",
        );
        assert_eq!(facts.len(), 1, "narrowed N > 100 escapes A(100): {facts:?}");
        assert!(matches!(
            &facts[0].kind,
            RangeFactKind::SubscriptOutOfBounds { .. }
        ));
    }

    #[test]
    fn call_clobbers_actuals() {
        let facts = facts_of(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   N = 150\n\
                   CALL F(N)\n\
                   A(N) = 0.0\n\
                   END\n",
        );
        assert!(facts.is_empty(), "{facts:?}");
    }

    #[test]
    fn zero_budget_reports_nothing() {
        let program = parse_program(
            "      SUBROUTINE S(A)\n\
                   REAL A(100)\n\
                   N = 150\n\
                   A(N) = 0.0\n\
                   END\n",
        )
        .expect("parse");
        let routine = &program.routines[0];
        let mut dims = DeclaredDims::new();
        dims.insert("a".into(), vec![(Some(1), Some(100))]);
        let b = Budget::new(0);
        let facts = routine_facts(routine, &dims, &b);
        assert!(facts.is_empty(), "exhausted budget invented facts");
        assert!(b.degraded());
    }
}
