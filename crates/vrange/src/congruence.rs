//! Congruence lattice: `x ≡ rem (mod modulus)`.

use std::fmt;

/// A congruence constraint. `modulus == 0` pins the exact constant
/// `rem`; `modulus == 1` is ⊤ (no information); otherwise the value is
/// known to be `rem (mod modulus)` with `0 <= rem < modulus`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Congruence {
    /// The modulus (0 = constant, 1 = ⊤).
    pub modulus: u64,
    /// The residue (the constant itself when `modulus == 0`).
    pub rem: i64,
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl Congruence {
    /// No information: any value.
    pub const TOP: Congruence = Congruence { modulus: 1, rem: 0 };

    /// Exactly the constant `c`.
    pub fn constant(c: i64) -> Congruence {
        Congruence { modulus: 0, rem: c }
    }

    /// `rem (mod modulus)`, normalizing the residue into `[0, modulus)`.
    pub fn of(modulus: u64, rem: i64) -> Congruence {
        match modulus {
            0 => Congruence::constant(rem),
            1 => Congruence::TOP,
            m => Congruence {
                modulus: m,
                rem: rem.rem_euclid(m as i64),
            },
        }
    }

    /// `true` iff nothing is known.
    pub fn is_top(&self) -> bool {
        self.modulus == 1
    }

    /// `Some(c)` iff the congruence pins an exact constant.
    pub fn as_const(&self) -> Option<i64> {
        (self.modulus == 0).then_some(self.rem)
    }

    /// `true` iff `v` satisfies the congruence.
    pub fn contains(&self, v: i64) -> bool {
        match self.modulus {
            0 => v == self.rem,
            1 => true,
            m => v.rem_euclid(m as i64) == self.rem,
        }
    }

    /// Least upper bound: the coarsest congruence both satisfy
    /// (`gcd` of the moduli and of the residue difference).
    pub fn join(&self, other: &Congruence) -> Congruence {
        if self == other {
            return *self;
        }
        let diff = self.rem.abs_diff(other.rem);
        let m = gcd(gcd(self.modulus, other.modulus), diff);
        Congruence::of(m, self.rem)
    }

    /// Congruence sum.
    pub fn add(&self, other: &Congruence) -> Congruence {
        let m = gcd(self.modulus, other.modulus);
        match self.rem.checked_add(other.rem) {
            Some(r) => Congruence::of(m, r),
            None => Congruence::TOP,
        }
    }

    /// Negation.
    pub fn neg(&self) -> Congruence {
        match self.rem.checked_neg() {
            Some(r) => Congruence::of(self.modulus, r),
            None => Congruence::TOP,
        }
    }

    /// Congruence product: constants multiply exactly; a constant `c`
    /// scales a congruence to `(c*m, c*r)`; otherwise the best modulus
    /// is the gcd of the cross products.
    pub fn mul(&self, other: &Congruence) -> Congruence {
        let scaled = |c: i64, g: &Congruence| -> Congruence {
            let m = g.modulus.checked_mul(c.unsigned_abs());
            match (m, g.rem.checked_mul(c)) {
                (Some(m), Some(r)) => Congruence::of(m, r),
                _ => Congruence::TOP,
            }
        };
        match (self.as_const(), other.as_const()) {
            (Some(a), Some(b)) => match a.checked_mul(b) {
                Some(c) => Congruence::constant(c),
                None => Congruence::TOP,
            },
            (Some(c), None) => scaled(c, other),
            (None, Some(c)) => scaled(c, self),
            // (m1·k)·(m2·j) ≡ 0 (mod m1·m2); anything with nonzero
            // residues is ⊤ here.
            (None, None) if self.rem == 0 && other.rem == 0 => {
                match self.modulus.checked_mul(other.modulus) {
                    Some(m) => Congruence::of(m, 0),
                    None => Congruence::TOP,
                }
            }
            (None, None) => Congruence::TOP,
        }
    }

    /// `true` iff no value can satisfy both congruences — the
    /// disequality refutation used for `.EQ.` guards.
    pub fn disjoint(&self, other: &Congruence) -> bool {
        match (self.modulus, other.modulus) {
            (0, 0) => self.rem != other.rem,
            (0, m) | (m, 0) if m > 1 => {
                let (c, g) = if self.modulus == 0 {
                    (self.rem, other)
                } else {
                    (other.rem, self)
                };
                !g.contains(c)
            }
            (a, b) if a > 1 && b > 1 => {
                let g = gcd(a, b) as i64;
                g > 1 && self.rem.rem_euclid(g) != other.rem.rem_euclid(g)
            }
            _ => false,
        }
    }
}

impl fmt::Display for Congruence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.modulus {
            0 => write!(f, "= {}", self.rem),
            1 => f.write_str("any"),
            m => write!(f, "{} (mod {m})", self.rem),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_constants() {
        let a = Congruence::constant(4);
        let b = Congruence::constant(10);
        let j = a.join(&b);
        assert_eq!(j, Congruence::of(6, 4));
        assert!(j.contains(4) && j.contains(10) && j.contains(16));
        assert!(!j.contains(5));
    }

    #[test]
    fn arithmetic() {
        let even = Congruence::of(2, 0);
        let three = Congruence::constant(3);
        // 2k + 3 is odd:
        assert_eq!(even.add(&three), Congruence::of(2, 1));
        assert_eq!(even.mul(&three), Congruence::of(6, 0));
        assert_eq!(three.neg(), Congruence::constant(-3));
    }

    #[test]
    fn disjointness() {
        let even = Congruence::of(2, 0);
        let odd = Congruence::of(2, 1);
        assert!(even.disjoint(&odd));
        assert!(!even.disjoint(&Congruence::of(4, 2)));
        assert!(even.disjoint(&Congruence::constant(5)));
        assert!(Congruence::constant(1).disjoint(&Congruence::constant(2)));
        assert!(!Congruence::TOP.disjoint(&even));
    }
}
