//! The numeric dependence tests on affine subscript pairs.

use serde::Serialize;
use std::collections::BTreeMap;

/// An affine subscript `c0 + Σ ck · idx_k` with integer coefficients over
/// named loop indices.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AffineSub {
    /// Constant term.
    pub c0: i64,
    /// Coefficient per loop-index name.
    pub coeffs: BTreeMap<String, i64>,
}

impl AffineSub {
    /// A constant subscript.
    pub fn constant(c0: i64) -> Self {
        AffineSub {
            c0,
            coeffs: BTreeMap::new(),
        }
    }

    /// Adds a term `c · idx`.
    pub fn with(mut self, idx: &str, c: i64) -> Self {
        if c != 0 {
            *self.coeffs.entry(idx.to_string()).or_insert(0) += c;
        }
        self
    }

    /// Coefficient of an index (0 if absent).
    pub fn coeff(&self, idx: &str) -> i64 {
        self.coeffs.get(idx).copied().unwrap_or(0)
    }
}

/// Outcome of a dependence test.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum DepAnswer {
    /// Dependence disproved.
    Independent,
    /// The test could not disprove dependence.
    MaybeDependent,
}

/// ZIV test: two constant subscripts depend iff equal.
pub fn ziv_test(a: &AffineSub, b: &AffineSub) -> Option<DepAnswer> {
    if a.coeffs.is_empty() && b.coeffs.is_empty() {
        Some(if a.c0 == b.c0 {
            DepAnswer::MaybeDependent
        } else {
            DepAnswer::Independent
        })
    } else {
        None
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// GCD test on the dependence equation `a(i₁,…) = b(i₂,…)`: the linear
/// Diophantine equation `Σ aₖ·iₖ¹ − Σ bₖ·iₖ² = b₀ − a₀` has an integer
/// solution only if `gcd(all coefficients)` divides the right-hand side.
///
/// Returns `Independent` when it does not divide; `MaybeDependent`
/// otherwise.
pub fn gcd_test(a: &AffineSub, b: &AffineSub) -> DepAnswer {
    let mut g = 0i64;
    for &c in a.coeffs.values().chain(b.coeffs.values()) {
        g = gcd(g, c);
    }
    let rhs = b.c0 - a.c0;
    if g == 0 {
        // No index terms at all: equality of constants (ZIV).
        return if rhs == 0 {
            DepAnswer::MaybeDependent
        } else {
            DepAnswer::Independent
        };
    }
    if rhs % g != 0 {
        DepAnswer::Independent
    } else {
        DepAnswer::MaybeDependent
    }
}

/// Banerjee's inequalities for one subscript dimension with constant loop
/// bounds. `bounds` maps each index to its inclusive `(lo, hi)`. `carrier`
/// (if set) is the loop whose *carried* dependence is tested: the test
/// requires `i¹ < i²` (direction `<`) or `i¹ > i²`, covering both carried
/// directions; loop-independent (`=`) solutions are ignored.
///
/// The test computes min/max of `h = a(i¹) − b(i²)` subject to the bounds
/// and the direction constraint; `0 ∉ [min, max]` disproves dependence.
pub fn banerjee_test(
    a: &AffineSub,
    b: &AffineSub,
    bounds: &BTreeMap<String, (i64, i64)>,
    carrier: Option<&str>,
) -> Option<DepAnswer> {
    // Every index with a nonzero coefficient needs bounds.
    for idx in a.coeffs.keys().chain(b.coeffs.keys()) {
        let (lo, hi) = bounds.get(idx)?;
        if lo > hi {
            return Some(DepAnswer::Independent); // empty loop
        }
    }
    let indices: std::collections::BTreeSet<&String> =
        a.coeffs.keys().chain(b.coeffs.keys()).collect();

    // For each direction of the carrier, accumulate the extreme values of
    // h = Σ aₖ iₖ¹ − Σ bₖ iₖ² + (a0 − b0).
    let directions: &[i64] = if carrier.is_some() { &[-1, 1] } else { &[0] };
    for &dir in directions {
        let mut min = a.c0 - b.c0;
        let mut max = min;
        let mut feasible = true;
        for idx in &indices {
            let (lo, hi) = bounds[idx.as_str()];
            let ca = a.coeff(idx);
            let cb = b.coeff(idx);
            if carrier == Some(idx.as_str()) && dir != 0 {
                // Two instances with i¹ − i² = −d·δ, δ >= 1 (dir=−1 means
                // i¹ < i²). Extremize ca·i¹ − cb·i² over lo <= i¹,i² <= hi
                // with the ordering constraint.
                if hi - lo < 1 {
                    feasible = false; // cannot have two distinct iterations
                    break;
                }
                let (mn, mx) = extremize_ordered(ca, cb, lo, hi, dir);
                min += mn;
                max += mx;
            } else {
                // Independent instances (or same loop not the carrier —
                // conservatively treat instances as unconstrained).
                let term = |c: i64| -> (i64, i64) {
                    if c >= 0 {
                        (c * lo, c * hi)
                    } else {
                        (c * hi, c * lo)
                    }
                };
                let (amn, amx) = term(ca);
                let (bmn, bmx) = term(cb);
                min += amn - bmx;
                max += amx - bmn;
            }
        }
        if feasible && min <= 0 && 0 <= max {
            return Some(DepAnswer::MaybeDependent);
        }
    }
    Some(DepAnswer::Independent)
}

/// Extreme values of `ca·x − cb·y` for `lo <= x, y <= hi` with `x < y`
/// (`dir == -1`) or `x > y` (`dir == 1`). Brute interval reasoning via the
/// substitution `y = x + δ, δ >= 1` (or symmetric).
fn extremize_ordered(ca: i64, cb: i64, lo: i64, hi: i64, dir: i64) -> (i64, i64) {
    // Enumerate corner candidates: for affine objectives on a lattice
    // polytope the extrema sit at vertices: (x, y) ∈ {(lo, lo+1), (lo, hi),
    // (hi-1, hi)} for x<y and mirrored for x>y.
    let cands: [(i64, i64); 3] = if dir == -1 {
        [(lo, lo + 1), (lo, hi), (hi - 1, hi)]
    } else {
        [(lo + 1, lo), (hi, lo), (hi, hi - 1)]
    };
    let mut mn = i64::MAX;
    let mut mx = i64::MIN;
    for (x, y) in cands {
        if x < lo || x > hi || y < lo || y > hi {
            continue;
        }
        let v = ca * x - cb * y;
        mn = mn.min(v);
        mx = mx.max(v);
    }
    if mn == i64::MAX {
        (0, 0)
    } else {
        (mn, mx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bounds(pairs: &[(&str, i64, i64)]) -> BTreeMap<String, (i64, i64)> {
        pairs
            .iter()
            .map(|(n, l, h)| (n.to_string(), (*l, *h)))
            .collect()
    }

    #[test]
    fn ziv_basics() {
        assert_eq!(
            ziv_test(&AffineSub::constant(3), &AffineSub::constant(4)),
            Some(DepAnswer::Independent)
        );
        assert_eq!(
            ziv_test(&AffineSub::constant(3), &AffineSub::constant(3)),
            Some(DepAnswer::MaybeDependent)
        );
        assert_eq!(
            ziv_test(
                &AffineSub::constant(3).with("i", 1),
                &AffineSub::constant(3)
            ),
            None
        );
    }

    #[test]
    fn gcd_disproves() {
        // a(2i) vs a(2i + 1): parity differs → independent.
        let w = AffineSub::constant(0).with("i", 2);
        let r = AffineSub::constant(1).with("i", 2);
        assert_eq!(gcd_test(&w, &r), DepAnswer::Independent);
        // a(2i) vs a(2i + 2): may depend.
        let r2 = AffineSub::constant(2).with("i", 2);
        assert_eq!(gcd_test(&w, &r2), DepAnswer::MaybeDependent);
    }

    #[test]
    fn gcd_zero_coeffs() {
        assert_eq!(
            gcd_test(&AffineSub::constant(1), &AffineSub::constant(1)),
            DepAnswer::MaybeDependent
        );
        assert_eq!(
            gcd_test(&AffineSub::constant(1), &AffineSub::constant(2)),
            DepAnswer::Independent
        );
    }

    #[test]
    fn banerjee_carried_self_dependence() {
        // a(i) written and read as a(i): no carried dependence (i1 != i2
        // forces h = i1 - i2 != 0).
        let s = AffineSub::constant(0).with("i", 1);
        let b = bounds(&[("i", 1, 100)]);
        assert_eq!(
            banerjee_test(&s, &s, &b, Some("i")),
            Some(DepAnswer::Independent)
        );
    }

    #[test]
    fn banerjee_offset_dependence() {
        // a(i) vs a(i-1): carried dependence exists.
        let w = AffineSub::constant(0).with("i", 1);
        let r = AffineSub::constant(-1).with("i", 1);
        let b = bounds(&[("i", 1, 100)]);
        assert_eq!(
            banerjee_test(&w, &r, &b, Some("i")),
            Some(DepAnswer::MaybeDependent)
        );
    }

    #[test]
    fn banerjee_far_offset_disproved() {
        // a(i) vs a(i + 200) with 1 <= i <= 100: offset exceeds range.
        let w = AffineSub::constant(0).with("i", 1);
        let r = AffineSub::constant(200).with("i", 1);
        let b = bounds(&[("i", 1, 100)]);
        assert_eq!(
            banerjee_test(&w, &r, &b, Some("i")),
            Some(DepAnswer::Independent)
        );
    }

    #[test]
    fn banerjee_needs_bounds() {
        let w = AffineSub::constant(0).with("i", 1);
        let r = AffineSub::constant(-1).with("i", 1);
        assert_eq!(banerjee_test(&w, &r, &BTreeMap::new(), Some("i")), None);
    }

    #[test]
    fn banerjee_single_iteration_loop() {
        // One iteration: no two distinct instances exist.
        let s = AffineSub::constant(0).with("i", 1);
        let b = bounds(&[("i", 5, 5)]);
        assert_eq!(
            banerjee_test(&s, &s, &b, Some("i")),
            Some(DepAnswer::Independent)
        );
    }

    #[test]
    fn banerjee_inner_index_unconstrained() {
        // a(i, j) vs a(i, j): carried by i → independent in dim i; the j
        // dimension alone (carrier i) may collide.
        let s = AffineSub::constant(0).with("j", 1);
        let b = bounds(&[("j", 1, 10)]);
        assert_eq!(
            banerjee_test(&s, &s, &b, Some("i")),
            Some(DepAnswer::MaybeDependent)
        );
    }

    #[test]
    fn brute_force_agreement() {
        // Exhaustively check Banerjee soundness on small ranges: whenever
        // it says Independent there really is no solution with i1 != i2.
        for ca in -2i64..3 {
            for cb in -2i64..3 {
                for off in -4i64..5 {
                    let w = AffineSub::constant(0).with("i", ca);
                    let r = AffineSub::constant(off).with("i", cb);
                    let b = bounds(&[("i", 1, 6)]);
                    let ans = banerjee_test(&w, &r, &b, Some("i")).unwrap();
                    let mut any = false;
                    for i1 in 1..=6 {
                        for i2 in 1..=6 {
                            if i1 != i2 && ca * i1 == cb * i2 + off {
                                any = true;
                            }
                        }
                    }
                    if ans == DepAnswer::Independent {
                        assert!(!any, "ca={ca} cb={cb} off={off}: false independence");
                    }
                }
            }
        }
    }
}
