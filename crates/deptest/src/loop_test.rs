//! Lifting the numeric tests to whole DO loops on the AST.

use crate::tests_numeric::{banerjee_test, gcd_test, AffineSub, DepAnswer};
use fortran::{BinOp, Expr, LValue, Stmt, StmtKind, SymbolTable, UnOp};
use serde::Serialize;
use std::collections::BTreeMap;

/// Verdict of the conventional pre-filter on one loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize)]
pub enum ConvVerdict {
    /// Every reference pair disproved: the loop is parallel without any
    /// transformation.
    Parallel,
    /// The conventional tests could not decide; the loop needs the array
    /// dataflow analysis (or stays serial).
    Unknown,
}

/// One array reference with affine subscripts.
#[derive(Clone, Debug)]
struct Ref {
    array: String,
    subs: Vec<AffineSub>,
    is_write: bool,
}

/// Runs the conventional tests on a `DO` statement. `table` supplies
/// PARAMETER constants.
pub fn conventional_loop_test(do_stmt: &Stmt, table: &SymbolTable) -> ConvVerdict {
    let StmtKind::Do {
        var,
        lo,
        hi,
        step,
        body,
    } = &do_stmt.kind
    else {
        return ConvVerdict::Unknown;
    };
    let mut bounds = BTreeMap::new();
    let mut indices = vec![var.clone()];
    let (Some(lo), Some(hi)) = (const_of(lo, table), const_of(hi, table)) else {
        return ConvVerdict::Unknown;
    };
    if step.as_ref().is_some_and(|s| const_of(s, table) != Some(1)) {
        return ConvVerdict::Unknown;
    }
    bounds.insert(var.clone(), (lo, hi));

    let mut refs = Vec::new();
    let mut order = 0usize;
    let mut scalar_first_read: BTreeMap<String, usize> = BTreeMap::new();
    let mut scalar_first_write: BTreeMap<String, usize> = BTreeMap::new();
    let mut scalar_any_write: std::collections::BTreeSet<String> = Default::default();
    if !collect(
        body,
        table,
        &mut indices,
        &mut bounds,
        &mut refs,
        &mut order,
        &mut scalar_first_read,
        &mut scalar_first_write,
        &mut scalar_any_write,
        false,
    ) {
        return ConvVerdict::Unknown;
    }

    // Scalars: every scalar read must be preceded by an unconditional
    // write in the same iteration (privatizable the conventional way).
    for (s, &r) in &scalar_first_read {
        if s == var || indices.contains(s) {
            continue;
        }
        if !scalar_any_write.contains(s) {
            continue; // read-only scalar
        }
        match scalar_first_write.get(s) {
            Some(&w) if w < r => {}
            _ => return ConvVerdict::Unknown,
        }
    }

    // Array pairs: every (write, any) pair on the same array must be
    // disproved for the carrier loop.
    for (k, w) in refs.iter().enumerate() {
        if !w.is_write {
            continue;
        }
        for (j, r) in refs.iter().enumerate() {
            if j == k && !w.is_write {
                continue;
            }
            if r.array != w.array {
                continue;
            }
            if j == k {
                // self-pair: still needs the carried-self test
            }
            if !pair_independent(w, r, &bounds, var) {
                return ConvVerdict::Unknown;
            }
        }
    }
    ConvVerdict::Parallel
}

/// Is the (write, other) pair disproved for a dependence carried by
/// `carrier`? A single independent dimension suffices.
fn pair_independent(
    a: &Ref,
    b: &Ref,
    bounds: &BTreeMap<String, (i64, i64)>,
    carrier: &str,
) -> bool {
    if a.subs.len() != b.subs.len() {
        return false;
    }
    for (sa, sb) in a.subs.iter().zip(&b.subs) {
        if gcd_test(sa, sb) == DepAnswer::Independent {
            return true;
        }
        if banerjee_test(sa, sb, bounds, Some(carrier)) == Some(DepAnswer::Independent) {
            return true;
        }
    }
    false
}

/// Walks statements collecting refs; returns `false` on anything the
/// conventional tests cannot handle (CALL, GOTO, symbolic bounds, IF —
/// handled conservatively by including both branches but noting scalar
/// writes become conditional).
#[allow(clippy::too_many_arguments)]
fn collect(
    body: &[Stmt],
    table: &SymbolTable,
    indices: &mut Vec<String>,
    bounds: &mut BTreeMap<String, (i64, i64)>,
    refs: &mut Vec<Ref>,
    order: &mut usize,
    scalar_first_read: &mut BTreeMap<String, usize>,
    scalar_first_write: &mut BTreeMap<String, usize>,
    scalar_any_write: &mut std::collections::BTreeSet<String>,
    conditional: bool,
) -> bool {
    for s in body {
        *order += 1;
        match &s.kind {
            StmtKind::Assign(lhs, rhs) => {
                if !collect_expr_reads(rhs, table, indices, refs, *order, scalar_first_read) {
                    return false;
                }
                match lhs {
                    LValue::Element(arr, subs) => {
                        let mut affs = Vec::new();
                        for sub in subs {
                            if !collect_expr_reads(
                                sub,
                                table,
                                indices,
                                refs,
                                *order,
                                scalar_first_read,
                            ) {
                                return false;
                            }
                            match affine_of(sub, table, indices) {
                                Some(a) => affs.push(a),
                                None => return false,
                            }
                        }
                        refs.push(Ref {
                            array: arr.clone(),
                            subs: affs,
                            is_write: true,
                        });
                    }
                    LValue::Var(v) => {
                        scalar_any_write.insert(v.clone());
                        // Conditional writes don't establish a definition
                        // that covers the iteration.
                        if !conditional {
                            scalar_first_write.entry(v.clone()).or_insert(*order);
                        }
                    }
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                if !collect_expr_reads(cond, table, indices, refs, *order, scalar_first_read) {
                    return false;
                }
                if !collect(
                    then_body,
                    table,
                    indices,
                    bounds,
                    refs,
                    order,
                    scalar_first_read,
                    scalar_first_write,
                    scalar_any_write,
                    true,
                ) || !collect(
                    else_body,
                    table,
                    indices,
                    bounds,
                    refs,
                    order,
                    scalar_first_read,
                    scalar_first_write,
                    scalar_any_write,
                    true,
                ) {
                    return false;
                }
            }
            StmtKind::LogicalIf(cond, inner) => {
                if !collect_expr_reads(cond, table, indices, refs, *order, scalar_first_read) {
                    return false;
                }
                if !collect(
                    std::slice::from_ref(inner),
                    table,
                    indices,
                    bounds,
                    refs,
                    order,
                    scalar_first_read,
                    scalar_first_write,
                    scalar_any_write,
                    true,
                ) {
                    return false;
                }
            }
            StmtKind::Do {
                var,
                lo,
                hi,
                step,
                body,
            } => {
                let (Some(l), Some(h)) = (const_of(lo, table), const_of(hi, table)) else {
                    return false;
                };
                if step.as_ref().is_some_and(|s| const_of(s, table) != Some(1)) {
                    return false;
                }
                indices.push(var.clone());
                bounds.insert(var.clone(), (l, h));
                if !collect(
                    body,
                    table,
                    indices,
                    bounds,
                    refs,
                    order,
                    scalar_first_read,
                    scalar_first_write,
                    scalar_any_write,
                    conditional,
                ) {
                    return false;
                }
                indices.pop();
            }
            StmtKind::Continue => {}
            // CALL / GOTO / RETURN / STOP: conventional tests give up.
            _ => return false,
        }
    }
    true
}

/// Records array reads and scalar reads inside an expression.
fn collect_expr_reads(
    e: &Expr,
    table: &SymbolTable,
    indices: &[String],
    refs: &mut Vec<Ref>,
    order: usize,
    scalar_first_read: &mut BTreeMap<String, usize>,
) -> bool {
    match e {
        Expr::Index(name, subs) => {
            if table.is_array(name) {
                let mut affs = Vec::new();
                for sub in subs {
                    if !collect_expr_reads(sub, table, indices, refs, order, scalar_first_read) {
                        return false;
                    }
                    match affine_of(sub, table, indices) {
                        Some(a) => affs.push(a),
                        None => return false,
                    }
                }
                refs.push(Ref {
                    array: name.clone(),
                    subs: affs,
                    is_write: false,
                });
                true
            } else {
                subs.iter()
                    .all(|s| collect_expr_reads(s, table, indices, refs, order, scalar_first_read))
            }
        }
        Expr::Var(n) => {
            if !table.is_array(n) && table.constant(n).is_none() {
                scalar_first_read.entry(n.clone()).or_insert(order);
            }
            true
        }
        Expr::Bin(_, a, b) => {
            collect_expr_reads(a, table, indices, refs, order, scalar_first_read)
                && collect_expr_reads(b, table, indices, refs, order, scalar_first_read)
        }
        Expr::Un(_, a) => collect_expr_reads(a, table, indices, refs, order, scalar_first_read),
        _ => true,
    }
}

/// Extracts an affine form over the loop indices; `None` for anything else
/// (symbolic terms, nonlinear, array elements).
fn affine_of(e: &Expr, table: &SymbolTable, indices: &[String]) -> Option<AffineSub> {
    match e {
        Expr::Int(v) => Some(AffineSub::constant(*v)),
        Expr::Var(n) => {
            if indices.contains(n) {
                Some(AffineSub::constant(0).with(n, 1))
            } else {
                const_of(e, table).map(AffineSub::constant)
            }
        }
        Expr::Un(UnOp::Neg, a) => {
            let a = affine_of(a, table, indices)?;
            Some(scale(a, -1))
        }
        Expr::Bin(op, a, b) => {
            let (fa, fb) = (affine_of(a, table, indices), affine_of(b, table, indices));
            match op {
                BinOp::Add => add(fa?, fb?, 1),
                BinOp::Sub => add(fa?, fb?, -1),
                BinOp::Mul => {
                    let fa = fa?;
                    let fb = fb?;
                    if fa.coeffs.is_empty() {
                        Some(scale(fb, fa.c0))
                    } else if fb.coeffs.is_empty() {
                        Some(scale(fa, fb.c0))
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn scale(mut a: AffineSub, c: i64) -> AffineSub {
    a.c0 *= c;
    for v in a.coeffs.values_mut() {
        *v *= c;
    }
    a.coeffs.retain(|_, v| *v != 0);
    a
}

fn add(mut a: AffineSub, b: AffineSub, sign: i64) -> Option<AffineSub> {
    a.c0 = a.c0.checked_add(sign.checked_mul(b.c0)?)?;
    for (k, v) in b.coeffs {
        *a.coeffs.entry(k).or_insert(0) += sign * v;
    }
    a.coeffs.retain(|_, v| *v != 0);
    Some(a)
}

/// Constant value of an expression (folding PARAMETERs).
fn const_of(e: &Expr, table: &SymbolTable) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Var(n) => const_of(table.constant(n)?, table),
        Expr::Un(UnOp::Neg, a) => Some(-const_of(a, table)?),
        Expr::Bin(op, a, b) => {
            let (a, b) = (const_of(a, table)?, const_of(b, table)?);
            match op {
                BinOp::Add => a.checked_add(b),
                BinOp::Sub => a.checked_sub(b),
                BinOp::Mul => a.checked_mul(b),
                BinOp::Div if b != 0 => Some(a / b),
                _ => None,
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::{analyze, parse_program};

    fn verdict(src: &str) -> ConvVerdict {
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        let r = &p.routines[0];
        let table = &sema.tables[&r.name];
        let do_stmt = r
            .body
            .iter()
            .find(|s| matches!(s.kind, StmtKind::Do { .. }))
            .expect("a DO loop");
        conventional_loop_test(do_stmt, table)
    }

    #[test]
    fn elementwise_parallel() {
        let v = verdict(
            "
      PROGRAM t
      REAL a(100), b(100)
      INTEGER i
      DO i = 1, 100
        a(i) = b(i) + 1.0
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Parallel);
    }

    #[test]
    fn recurrence_unknown() {
        let v = verdict(
            "
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 2, 100
        a(i) = a(i-1)
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Unknown);
    }

    #[test]
    fn strided_disjoint_parallel() {
        // even writes, odd reads: GCD disproves.
        let v = verdict(
            "
      PROGRAM t
      REAL a(200)
      INTEGER i
      DO i = 1, 100
        a(2*i) = a(2*i - 1)
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Parallel);
    }

    #[test]
    fn work_array_defeats_conventional() {
        // The privatizable-work-array pattern: conventional tests see
        // output/flow dependences on w and give up — exactly why array
        // dataflow analysis is needed (the paper's premise).
        let v = verdict(
            "
      PROGRAM t
      REAL w(10), a(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = 1.0
        ENDDO
        DO k = 1, 10
          a(i) = a(i) + w(k)
        ENDDO
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Unknown);
    }

    #[test]
    fn call_defeats_conventional() {
        let v = verdict(
            "
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 1, 100
        call s(a)
      ENDDO
      END
      SUBROUTINE s(b)
      REAL b(100)
      RETURN
      END
",
        );
        assert_eq!(v, ConvVerdict::Unknown);
    }

    #[test]
    fn symbolic_bounds_defeat_conventional() {
        let v = verdict(
            "
      PROGRAM t
      REAL a(100)
      INTEGER i, n
      DO i = 1, n
        a(i) = 1.0
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Unknown);
    }

    #[test]
    fn private_scalar_ok_conventional() {
        let v = verdict(
            "
      PROGRAM t
      REAL a(100), tmp
      INTEGER i
      DO i = 1, 100
        tmp = 1.0
        a(i) = tmp
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Parallel);
    }

    #[test]
    fn exposed_scalar_unknown() {
        let v = verdict(
            "
      PROGRAM t
      REAL a(100), s
      INTEGER i
      DO i = 1, 100
        a(i) = s
        s = a(i)
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Unknown);
    }

    #[test]
    fn conditional_scalar_write_unknown() {
        // write under IF does not dominate the read
        let v = verdict(
            "
      PROGRAM t
      REAL a(100), s
      INTEGER i
      DO i = 1, 100
        IF (a(i) .GT. 0.0) s = 1.0
        a(i) = s
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Unknown);
    }

    #[test]
    fn parameter_bounds_fold() {
        let v = verdict(
            "
      PROGRAM t
      PARAMETER (n = 50)
      REAL a(100)
      INTEGER i
      DO i = 1, n
        a(i) = 1.0
      ENDDO
      END
",
        );
        assert_eq!(v, ConvVerdict::Parallel);
    }
}
