//! Conventional data dependence tests (§2's "numerical methods").
//!
//! Panorama applies cheap classic dependence tests first and runs the
//! expensive array dataflow analysis only on loops these cannot decide
//! (§6). This crate reconstructs that pre-filter: ZIV, the GCD test and
//! Banerjee's inequalities over affine subscripts, lifted to whole DO
//! loops.
//!
//! A conventional test can only *disprove* dependence; anything it cannot
//! disprove is assumed to be a dependence (memory disambiguation, not
//! value flow — which is exactly why these tests cannot privatize arrays).

#![warn(missing_docs)]

mod loop_test;
mod tests_numeric;

pub use loop_test::{conventional_loop_test, ConvVerdict};
pub use tests_numeric::{banerjee_test, gcd_test, ziv_test, AffineSub, DepAnswer};
