//! Call-site alias classification.

use fortran::{Expr, ProgramSema, StorageClass};

/// How confidently two call-site operands are known to share storage.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum AliasClass {
    /// Provably distinct storage.
    No,
    /// Possibly overlapping storage.
    May,
    /// Provably the same storage.
    Must,
}

/// Why a pair of operands was classified as aliased.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AliasReason {
    /// Both formals are bound to the same actual array name.
    SameActual(String),
    /// The two (distinct) actuals' storage locations may overlap,
    /// through COMMON layout or EQUIVALENCE.
    StorageOverlap(String, String),
}

/// Two formal positions of one CALL that alias each other.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FormalPair {
    /// First formal position (0-based, `a < b`).
    pub a: usize,
    /// Second formal position.
    pub b: usize,
    /// Must or may.
    pub class: AliasClass,
    /// Evidence.
    pub reason: AliasReason,
}

/// A formal whose actual is also reachable by the callee through a
/// COMMON block, so the callee sees the same storage under two names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GlobalOverlap {
    /// Formal position (0-based).
    pub pos: usize,
    /// Caller-side actual name.
    pub actual: String,
    /// The COMMON block the callee (transitively) declares.
    pub block: String,
}

/// The complete alias classification of one CALL statement.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CallAliasing {
    /// Aliased formal/formal pairs (`a < b`; no-alias pairs omitted).
    pub pairs: Vec<FormalPair>,
    /// Formal/global overlaps through COMMON visible to the callee.
    pub globals: Vec<GlobalOverlap>,
    /// Positions passing an element/slice actual `a(k)` — the formal's
    /// placement inside the base array is not tracked, so it stays
    /// may-aliased with everything in `a`: `(position, base array)`.
    pub slices: Vec<(usize, String)>,
    /// Whole-array actuals whose rank differs from the formal's —
    /// reshaped across the call: `(position, actual, formal rank,
    /// actual rank)`.
    pub reshaped: Vec<(usize, String, usize, usize)>,
    /// COMMON blocks declared by both caller and callee with different
    /// member layouts, so callee-side names do not denote the
    /// caller-side bytes one-to-one.
    pub mismatched_commons: Vec<String>,
}

impl CallAliasing {
    /// `true` when the no-alias convention holds and summaries can be
    /// mapped formal→actual without degradation.
    pub fn clean(&self) -> bool {
        self.pairs.is_empty()
            && self.globals.is_empty()
            && self.slices.is_empty()
            && self.reshaped.is_empty()
            && self.mismatched_commons.is_empty()
    }

    /// Actual names that must be degraded to unknown MOD/UE (and empty
    /// DE): every member of a may-pair, every COMMON-visible actual and
    /// every slice base. Must-aliased actuals are *not* included — their
    /// union-mapped MOD/UE stays usable — but their DE must still drop
    /// (see [`CallAliasing::de_unsafe_targets`]).
    pub fn may_targets(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for p in &self.pairs {
            if p.class == AliasClass::May {
                match &p.reason {
                    AliasReason::SameActual(n) => out.push(n.clone()),
                    AliasReason::StorageOverlap(x, y) => {
                        out.push(x.clone());
                        out.push(y.clone());
                    }
                }
            }
        }
        for g in &self.globals {
            out.push(g.actual.clone());
        }
        for (_, base) in &self.slices {
            out.push(base.clone());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Actual names whose mapped DE cannot be trusted: every aliased
    /// actual. Interleaved accesses through the other name may follow a
    /// "downward exposed" use, so the use is not actually exposed at
    /// segment end — keeping it would manufacture anti dependences on
    /// the wrong name; dropping DE is always sound (the unknown MOD
    /// already forces the output test).
    pub fn de_unsafe_targets(&self) -> Vec<String> {
        let mut out = self.may_targets();
        for p in &self.pairs {
            if let AliasReason::SameActual(n) = &p.reason {
                out.push(n.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// The base array of an actual argument, if any.
enum Actual<'a> {
    Whole(&'a str),
    Slice(&'a str),
    Other,
}

/// Classifies one CALL: every formal/formal and formal/global pair.
///
/// `caller`/`callee` name routines analyzed by [`fortran::analyze`];
/// `callee_params` are the callee's dummy names in order, `args` the
/// actual argument expressions. Unknown routines yield the
/// conservative-free default (empty = clean) — sema has already
/// rejected programs with unknown callees.
pub fn classify_call(
    sema: &ProgramSema,
    caller: &str,
    callee: &str,
    callee_params: &[String],
    args: &[Expr],
) -> CallAliasing {
    let _span = trace::span_with(|| format!("alias:{caller}->{callee}"));
    let mut out = CallAliasing::default();
    let Some(caller_t) = sema.tables.get(caller) else {
        return out;
    };
    let callee_t = sema.tables.get(callee);
    let reach = sema.common_reach.get(callee);

    let actuals: Vec<Actual> = args
        .iter()
        .map(|a| match a {
            Expr::Var(n) if caller_t.is_array(n) => Actual::Whole(n),
            Expr::Index(n, _) if caller_t.is_array(n) => Actual::Slice(n),
            _ => Actual::Other,
        })
        .collect();

    // Formal/formal pairs.
    for i in 0..actuals.len() {
        let (Actual::Whole(a) | Actual::Slice(a)) = actuals[i] else {
            continue;
        };
        for j in i + 1..actuals.len() {
            let (Actual::Whole(b) | Actual::Slice(b)) = actuals[j] else {
                continue;
            };
            if a == b {
                let whole = matches!(actuals[i], Actual::Whole(_))
                    && matches!(actuals[j], Actual::Whole(_));
                out.pairs.push(FormalPair {
                    a: i,
                    b: j,
                    class: if whole {
                        AliasClass::Must
                    } else {
                        AliasClass::May
                    },
                    reason: AliasReason::SameActual(a.to_string()),
                });
            } else if caller_t.storage_overlaps(a, b) {
                out.pairs.push(FormalPair {
                    a: i,
                    b: j,
                    class: AliasClass::May,
                    reason: AliasReason::StorageOverlap(a.to_string(), b.to_string()),
                });
            }
        }
    }

    // Formal/global overlaps: the actual (array, slice base, or scalar
    // passed by reference) lives in a COMMON block the callee can reach.
    for (i, actual) in actuals.iter().enumerate() {
        let name = match actual {
            Actual::Whole(n) | Actual::Slice(n) => n,
            Actual::Other => match &args[i] {
                Expr::Var(n) => n.as_str(),
                _ => continue,
            },
        };
        if let Some(loc) = caller_t.storage(name) {
            if let StorageClass::Common(b) = &loc.class {
                if reach.is_some_and(|r| r.contains(b)) {
                    out.globals.push(GlobalOverlap {
                        pos: i,
                        actual: name.to_string(),
                        block: b.clone(),
                    });
                }
            }
        }
    }

    // Slice actuals and reshapes need the callee's view of the formal.
    if let Some(ct) = callee_t {
        for (i, actual) in actuals.iter().enumerate() {
            let Some(formal) = callee_params.get(i) else {
                continue;
            };
            match actual {
                Actual::Slice(n) => out.slices.push((i, n.to_string())),
                Actual::Whole(n) => {
                    if let (Some(fa), Some(aa)) = (ct.array(formal), caller_t.array(n)) {
                        if fa.rank() != aa.rank() {
                            out.reshaped.push((i, n.to_string(), fa.rank(), aa.rank()));
                        }
                    }
                }
                Actual::Other => {}
            }
        }
    }

    // Every COMMON block the callee can (transitively) reach and the
    // caller also declares must have one layout program-wide, otherwise
    // callee-side global names do not denote caller bytes one-to-one.
    if let Some(reach) = reach {
        for b in reach {
            let caller_side = block_layout(caller_t, b);
            if caller_side.is_empty() {
                continue;
            }
            for (rname, t) in &sema.tables {
                if rname == caller {
                    continue;
                }
                let other = block_layout(t, b);
                if !other.is_empty() && other != caller_side {
                    out.mismatched_commons.push(b.clone());
                    break;
                }
            }
        }
        out.mismatched_commons.sort();
        out.mismatched_commons.dedup();
    }

    out
}

/// The `(member, offset, extent)` layout of one COMMON block in one
/// routine, including names EQUIVALENCE'd into it.
fn block_layout(t: &fortran::SymbolTable, block: &str) -> Vec<(String, Option<i64>, Option<i64>)> {
    let mut v: Vec<(String, Option<i64>, Option<i64>)> = t
        .storage_iter()
        .filter(|(_, l)| matches!(&l.class, StorageClass::Common(b) if b == block))
        .map(|(n, l)| (n.to_string(), l.offset, l.extent))
        .collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::{analyze, parse_program};

    fn classified(src: &str, caller: &str, callee: &str) -> CallAliasing {
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        let callee_r = p.routine(callee).unwrap();
        let mut out = None;
        for r in &p.routines {
            if r.name != caller {
                continue;
            }
            visit(&r.body, &mut |s| {
                if let fortran::StmtKind::Call(name, args) = &s.kind {
                    if name == callee {
                        out = Some(classify_call(&sema, caller, callee, &callee_r.params, args));
                    }
                }
            });
        }
        out.expect("call site present")
    }

    fn visit<'a>(body: &'a [fortran::Stmt], f: &mut impl FnMut(&'a fortran::Stmt)) {
        for s in body {
            f(s);
            match &s.kind {
                fortran::StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    visit(then_body, f);
                    visit(else_body, f);
                }
                fortran::StmtKind::Do { body, .. } => visit(body, f),
                fortran::StmtKind::LogicalIf(_, inner) => f(inner),
                _ => {}
            }
        }
    }

    const CALLEE: &str = "
      SUBROUTINE f(x, y)
      REAL x(10), y(10)
      x(1) = y(1)
      END
";

    #[test]
    fn same_actual_is_must_alias() {
        let c = classified(
            &format!(
                "
      PROGRAM t
      REAL a(10)
      CALL f(a, a)
      END
{CALLEE}"
            ),
            "t",
            "f",
        );
        assert_eq!(c.pairs.len(), 1);
        assert_eq!(c.pairs[0].class, AliasClass::Must);
        assert_eq!(c.pairs[0].reason, AliasReason::SameActual("a".to_string()));
        assert!(!c.clean());
        assert!(c.may_targets().is_empty());
        assert_eq!(c.de_unsafe_targets(), vec!["a".to_string()]);
    }

    #[test]
    fn distinct_private_actuals_are_clean() {
        let c = classified(
            &format!(
                "
      PROGRAM t
      REAL a(10), b(10)
      CALL f(a, b)
      END
{CALLEE}"
            ),
            "t",
            "f",
        );
        assert!(c.clean());
    }

    #[test]
    fn equivalence_overlap_is_may_alias() {
        let c = classified(
            &format!(
                "
      PROGRAM t
      REAL a(10), b(4)
      EQUIVALENCE (a(3), b(1))
      CALL f(a, b)
      END
{CALLEE}"
            ),
            "t",
            "f",
        );
        assert_eq!(c.pairs.len(), 1);
        assert_eq!(c.pairs[0].class, AliasClass::May);
        assert_eq!(c.may_targets(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn common_actual_visible_to_callee_is_global_overlap() {
        let c = classified(
            "
      PROGRAM t
      COMMON /shared/ g
      REAL g(10), b(10)
      CALL f(g, b)
      END
      SUBROUTINE f(x, y)
      COMMON /shared/ g
      REAL x(10), y(10), g(10)
      x(1) = g(1)
      END
",
            "t",
            "f",
        );
        assert_eq!(c.globals.len(), 1);
        assert_eq!(c.globals[0].pos, 0);
        assert_eq!(c.globals[0].block, "shared");
        assert_eq!(c.may_targets(), vec!["g".to_string()]);
    }

    #[test]
    fn common_actual_with_unrelated_callee_is_clean() {
        let c = classified(
            &format!(
                "
      PROGRAM t
      COMMON /mine/ g
      REAL g(10), b(10)
      CALL f(g, b)
      END
{CALLEE}"
            ),
            "t",
            "f",
        );
        assert!(c.clean(), "callee reaches no COMMON: {c:?}");
    }

    #[test]
    fn slice_actuals_and_reshapes_flagged() {
        let c = classified(
            "
      PROGRAM t
      REAL a(10), m(3,4)
      CALL f(a(2), m)
      END
      SUBROUTINE f(x, y)
      REAL x(10), y(12)
      x(1) = y(1)
      END
",
            "t",
            "f",
        );
        assert_eq!(c.slices, vec![(0, "a".to_string())]);
        assert_eq!(c.reshaped.len(), 1);
        assert_eq!(c.reshaped[0], (1, "m".to_string(), 1, 2));
        assert_eq!(c.may_targets(), vec!["a".to_string()]);
    }

    #[test]
    fn transitive_common_layout_mismatch_detected() {
        let c = classified(
            "
      PROGRAM t
      COMMON /c/ a, b
      REAL a(4), b(4)
      CALL mid()
      a(1) = 0.0
      END
      SUBROUTINE mid()
      CALL leaf()
      END
      SUBROUTINE leaf()
      COMMON /c/ w
      REAL w(8)
      w(1) = 1.0
      END
",
            "t",
            "mid",
        );
        assert_eq!(c.mismatched_commons, vec!["c".to_string()]);
    }
}
