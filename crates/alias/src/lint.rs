//! `panolint`: stable, machine-readable diagnostics.
//!
//! Every "we conservatively assume X" decision in the pipeline becomes
//! a lint with a stable code. Lints are computed by a standalone static
//! pass over the program — never during summary propagation — so the
//! output is deterministic across `--jobs`, cache state, and daemon vs
//! one-shot CLI.

use crate::classify::classify_call;
use fortran::{Expr, LValue, Program, ProgramSema, Routine, Stmt, StmtKind, SymbolTable};

/// Stable lint codes. The numeric code of an existing lint never
/// changes; new lints append.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LintCode {
    /// `P001` — two actuals of one CALL (or an actual and a COMMON
    /// block visible to the callee) share storage.
    AliasedActuals,
    /// `P002` — an array's shape differs across a call boundary: rank
    /// change, or a COMMON block laid out differently per routine.
    ReshapedAcrossCall,
    /// `P003` — an element/slice actual `a(k)`; the callee's footprint
    /// inside `a` is not tracked.
    SliceActual,
    /// `P004` — an EQUIVALENCE group overlays arrays; overlaid arrays
    /// are never privatization candidates.
    EquivalenceOverlay,
    /// `P005` — a subscript is not affine in loop variables (indirect
    /// indexing, products of variables, …); regions become unknown.
    NonlinearSubscript,
    /// `P006` — a CALL summarized without interprocedural analysis;
    /// its reachable storage is clobbered.
    ConservativeClobber,
    /// `P007` — an IF condition is provably constant under the scalar
    /// value ranges, so one arm can never execute.
    InfeasibleGuard,
    /// `P008` — a subscript's proved range is disjoint from the array's
    /// declared dimension bounds.
    SubscriptOutOfDeclaredBounds,
    /// `P009` — a DO loop's trip range is provably empty: the body
    /// never executes.
    LoopNeverExecutes,
    /// `P010` — a local array is read in a region no earlier store may
    /// have defined: the value is whatever the allocator left there.
    ReadBeforeWrite,
    /// `P011` — an array store is completely overwritten before any
    /// element of it is read.
    RedundantStore,
    /// `P012` — an initialization loop whose entire effect is
    /// overwritten before any read.
    DeadInitializationLoop,
}

impl LintCode {
    /// All codes, in code order.
    pub const ALL: [LintCode; 12] = [
        LintCode::AliasedActuals,
        LintCode::ReshapedAcrossCall,
        LintCode::SliceActual,
        LintCode::EquivalenceOverlay,
        LintCode::NonlinearSubscript,
        LintCode::ConservativeClobber,
        LintCode::InfeasibleGuard,
        LintCode::SubscriptOutOfDeclaredBounds,
        LintCode::LoopNeverExecutes,
        LintCode::ReadBeforeWrite,
        LintCode::RedundantStore,
        LintCode::DeadInitializationLoop,
    ];

    /// The stable code, e.g. `"P001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::AliasedActuals => "P001",
            LintCode::ReshapedAcrossCall => "P002",
            LintCode::SliceActual => "P003",
            LintCode::EquivalenceOverlay => "P004",
            LintCode::NonlinearSubscript => "P005",
            LintCode::ConservativeClobber => "P006",
            LintCode::InfeasibleGuard => "P007",
            LintCode::SubscriptOutOfDeclaredBounds => "P008",
            LintCode::LoopNeverExecutes => "P009",
            LintCode::ReadBeforeWrite => "P010",
            LintCode::RedundantStore => "P011",
            LintCode::DeadInitializationLoop => "P012",
        }
    }

    /// The human slug, e.g. `"aliased-actuals"`.
    pub fn slug(self) -> &'static str {
        match self {
            LintCode::AliasedActuals => "aliased-actuals",
            LintCode::ReshapedAcrossCall => "reshaped-across-call",
            LintCode::SliceActual => "slice-actual",
            LintCode::EquivalenceOverlay => "equivalence-overlay",
            LintCode::NonlinearSubscript => "nonlinear-subscript",
            LintCode::ConservativeClobber => "conservative-clobber",
            LintCode::InfeasibleGuard => "infeasible-guard",
            LintCode::SubscriptOutOfDeclaredBounds => "subscript-out-of-declared-bounds",
            LintCode::LoopNeverExecutes => "loop-never-executes",
            LintCode::ReadBeforeWrite => "read-before-write",
            LintCode::RedundantStore => "redundant-store",
            LintCode::DeadInitializationLoop => "dead-initialization-loop",
        }
    }

    /// Parses a stable code (`"P007"`) or slug (`"infeasible-guard"`).
    pub fn parse(s: &str) -> Option<LintCode> {
        LintCode::ALL
            .iter()
            .copied()
            .find(|c| c.code().eq_ignore_ascii_case(s) || c.slug() == s)
    }
}

impl std::fmt::Display for LintCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code(), self.slug())
    }
}

/// One diagnostic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lint {
    /// Stable code.
    pub code: LintCode,
    /// Routine the lint is anchored in.
    pub routine: String,
    /// 1-based source line (0 = declaration-level, no single line).
    pub line: u32,
    /// Human-readable explanation; deterministic, derived only from
    /// the AST.
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}: [{}] {}", self.routine, self.code, self.message)
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.routine, self.line, self.code, self.message
            )
        }
    }
}

/// Computes every lint for a checked program. `interprocedural`
/// mirrors the analysis option: with it off, every CALL earns a `P006`
/// conservative-clobber witness. `value_range` mirrors the value-range
/// pass: with it on, the flow-sensitive range walk contributes
/// P007/P008/P009. `content` mirrors the array-content pass: with it
/// on, the initialization walk contributes P010/P011/P012. The result
/// is sorted by `(routine, line, code, message)` and deduplicated —
/// byte-identical regardless of job count or cache state.
pub fn lint_program(
    program: &Program,
    sema: &ProgramSema,
    interprocedural: bool,
    value_range: bool,
    content: bool,
) -> Vec<Lint> {
    let mut lints = Vec::new();
    for r in &program.routines {
        let Some(table) = sema.tables.get(&r.name) else {
            continue;
        };
        lint_equivalences(r, &mut lints);
        walk_stmts(&r.body, &mut |stmt| {
            lint_stmt(program, sema, r, table, stmt, interprocedural, &mut lints);
        });
        if value_range {
            lint_ranges(r, table, &mut lints);
        }
        if content {
            lint_content(r, table, &mut lints);
        }
    }
    lints.sort_by(|a, b| {
        (a.routine.as_str(), a.line, a.code, a.message.as_str()).cmp(&(
            b.routine.as_str(),
            b.line,
            b.code,
            b.message.as_str(),
        ))
    });
    lints.dedup();
    lints
}

/// P007/P008/P009: runs the value-range walk (`vrange::routine_facts`)
/// over one routine and renders each proved fact as a lint. The walk is
/// a standalone AST pass under its own budget, so — like every other
/// rule here — the output is independent of job count and cache state;
/// budget exhaustion silently drops facts, never invents them.
fn lint_ranges(r: &Routine, table: &SymbolTable, lints: &mut Vec<Lint>) {
    let mut dims = vrange::DeclaredDims::new();
    for (name, _) in &r.arrays {
        if let Some(b) = table.declared_bounds(name) {
            dims.insert(name.clone(), b);
        }
    }
    let budget = vrange::Budget::new(vrange::DEFAULT_BUDGET);
    for fact in vrange::routine_facts(r, &dims, &budget) {
        let (code, message) = match fact.kind {
            vrange::RangeFactKind::InfeasibleGuard { cond, always } => (
                LintCode::InfeasibleGuard,
                format!(
                    "condition ({cond}) is provably {}; the {} branch never executes",
                    if always { "true" } else { "false" },
                    if always { "ELSE" } else { "THEN" },
                ),
            ),
            vrange::RangeFactKind::SubscriptOutOfBounds {
                array,
                dim,
                subscript,
                range,
                declared,
            } => {
                let lo = declared.0.map_or("*".to_string(), |v| v.to_string());
                let hi = declared.1.map_or("*".to_string(), |v| v.to_string());
                (
                    LintCode::SubscriptOutOfDeclaredBounds,
                    format!(
                        "subscript {subscript} of {array} proved in {range}, \
                         outside declared dimension {dim} ({lo}:{hi})"
                    ),
                )
            }
            vrange::RangeFactKind::LoopNeverExecutes { var, lo, hi } => (
                LintCode::LoopNeverExecutes,
                format!("DO {var} never executes: lower bound in {lo}, upper bound in {hi}"),
            ),
        };
        lints.push(Lint {
            code,
            routine: r.name.clone(),
            line: fact.line,
            message,
        });
    }
}

/// P010/P011/P012: runs the array-content initialization walk
/// (`content::lint_routine`) over one routine. Like the range walk, it
/// is a standalone AST pass under its own budget: deterministic across
/// jobs and caches, and budget exhaustion only silences lints.
fn lint_content(r: &Routine, table: &SymbolTable, lints: &mut Vec<Lint>) {
    let budget = vrange::Budget::new(vrange::DEFAULT_BUDGET);
    for l in content::lint_routine(r, table, &budget) {
        let code = match l.kind {
            content::LintKind::ReadBeforeWrite => LintCode::ReadBeforeWrite,
            content::LintKind::RedundantStore => LintCode::RedundantStore,
            content::LintKind::DeadInitializationLoop => LintCode::DeadInitializationLoop,
        };
        lints.push(Lint {
            code,
            routine: r.name.clone(),
            line: l.line,
            message: l.message,
        });
    }
}

fn lint_equivalences(r: &Routine, lints: &mut Vec<Lint>) {
    for group in &r.equivalences {
        let names: Vec<&str> = group.iter().map(|(n, _)| n.as_str()).collect();
        lints.push(Lint {
            code: LintCode::EquivalenceOverlay,
            routine: r.name.clone(),
            line: 0,
            message: format!("EQUIVALENCE overlays {}", names.join(", ")),
        });
    }
}

fn lint_stmt(
    program: &Program,
    sema: &ProgramSema,
    r: &Routine,
    table: &SymbolTable,
    stmt: &Stmt,
    interprocedural: bool,
    lints: &mut Vec<Lint>,
) {
    let mut push = |code: LintCode, message: String| {
        lints.push(Lint {
            code,
            routine: r.name.clone(),
            line: stmt.line,
            message,
        });
    };

    if let StmtKind::Call(callee, args) = &stmt.kind {
        let params: &[String] = program.routine(callee).map_or(&[], |c| &c.params);
        let c = classify_call(sema, &r.name, callee, params, args);
        for p in &c.pairs {
            let how = match &p.reason {
                crate::AliasReason::SameActual(n) => format!("both pass {n}"),
                crate::AliasReason::StorageOverlap(x, y) => {
                    format!("{x} and {y} may share storage")
                }
            };
            push(
                LintCode::AliasedActuals,
                format!(
                    "actuals #{} and #{} of CALL {callee} {}-alias ({how})",
                    p.a + 1,
                    p.b + 1,
                    if p.class == crate::AliasClass::Must {
                        "must"
                    } else {
                        "may"
                    },
                ),
            );
        }
        for g in &c.globals {
            push(
                LintCode::AliasedActuals,
                format!(
                    "actual #{} of CALL {callee} ({}) is also reachable by {callee} through COMMON /{}/",
                    g.pos + 1,
                    g.actual,
                    g.block
                ),
            );
        }
        for (pos, actual, fr, ar) in &c.reshaped {
            push(
                LintCode::ReshapedAcrossCall,
                format!(
                    "actual #{} of CALL {callee} reshapes {actual} from rank {ar} to rank {fr}",
                    pos + 1
                ),
            );
        }
        for b in &c.mismatched_commons {
            push(
                LintCode::ReshapedAcrossCall,
                format!("COMMON /{b}/ reachable from CALL {callee} is laid out differently across routines"),
            );
        }
        for (pos, base) in &c.slices {
            push(
                LintCode::SliceActual,
                format!(
                    "actual #{} of CALL {callee} passes a slice of {base}",
                    pos + 1
                ),
            );
        }
        if !interprocedural {
            let reach = sema.common_reach.get(callee);
            let blocks: Vec<String> = reach
                .map(|r| r.iter().map(|b| format!("/{b}/")).collect())
                .unwrap_or_default();
            push(
                LintCode::ConservativeClobber,
                if blocks.is_empty() {
                    format!("CALL {callee} summarized without interprocedural analysis; clobbers its array actuals")
                } else {
                    format!(
                        "CALL {callee} summarized without interprocedural analysis; clobbers its array actuals and COMMON {}",
                        blocks.join(", ")
                    )
                },
            );
        }
    }

    // P005: nonlinear subscripts anywhere in the statement.
    let check_subs = |name: &str, subs: &[Expr], push: &mut dyn FnMut(LintCode, String)| {
        if !table.is_array(name) {
            return;
        }
        for s in subs {
            if !is_affine(s, table) {
                push(
                    LintCode::NonlinearSubscript,
                    format!("nonlinear subscript {s} in reference to {name}"),
                );
            }
        }
    };
    each_expr(stmt, &mut |e| {
        if let Expr::Index(name, subs) = e {
            check_subs(name, subs, &mut push);
        }
    });
    if let StmtKind::Assign(LValue::Element(name, subs), _) = &stmt.kind {
        check_subs(name, subs, &mut push);
    }
}

/// Pre-order walk over nested statements.
fn walk_stmts<'a>(body: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        f(s);
        match &s.kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            StmtKind::LogicalIf(_, inner) => {
                f(inner);
            }
            StmtKind::Do { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Visits every expression of one statement (not nested statements,
/// except the body of a logical IF which is part of the same line).
fn each_expr<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &stmt.kind {
        StmtKind::Assign(lv, rhs) => {
            if let LValue::Element(_, subs) = lv {
                for s in subs {
                    s.walk(f);
                }
            }
            rhs.walk(f);
        }
        StmtKind::If { cond, .. } => cond.walk(f),
        StmtKind::LogicalIf(cond, inner) => {
            cond.walk(f);
            each_expr(inner, f);
        }
        StmtKind::Do { lo, hi, step, .. } => {
            lo.walk(f);
            hi.walk(f);
            if let Some(s) = step {
                s.walk(f);
            }
        }
        StmtKind::Call(_, args) => {
            for a in args {
                a.walk(f);
            }
        }
        _ => {}
    }
}

/// Is a subscript affine: a sum of `const * var` and `const` terms?
fn is_affine(e: &Expr, t: &SymbolTable) -> bool {
    match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) | Expr::Var(_) => true,
        Expr::Un(_, a) => is_affine(a, t),
        Expr::Bin(op, a, b) => match op {
            fortran::BinOp::Add | fortran::BinOp::Sub => is_affine(a, t) && is_affine(b, t),
            fortran::BinOp::Mul => {
                (is_const(a, t) && is_affine(b, t)) || (is_const(b, t) && is_affine(a, t))
            }
            _ => is_const(a, t) && is_const(b, t),
        },
        Expr::Index(..) => false,
    }
}

/// Is an expression a compile-time constant (literals and PARAMETERs)?
fn is_const(e: &Expr, t: &SymbolTable) -> bool {
    match e {
        Expr::Int(_) | Expr::Real(_) | Expr::Logical(_) => true,
        Expr::Var(n) => t.constant(n).is_some(),
        Expr::Un(_, a) => is_const(a, t),
        Expr::Bin(_, a, b) => is_const(a, t) && is_const(b, t),
        Expr::Index(..) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fortran::{analyze, parse_program};

    fn lints_of(src: &str, interprocedural: bool) -> Vec<Lint> {
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        lint_program(&p, &sema, interprocedural, true, true)
    }

    #[test]
    fn aliased_call_and_clobber_lints() {
        let src = "
      PROGRAM t
      REAL a(10)
      CALL f(a, a)
      END
      SUBROUTINE f(x, y)
      REAL x(10), y(10)
      x(1) = y(1)
      END
";
        let l = lints_of(src, true);
        assert_eq!(l.len(), 1, "{l:?}");
        assert_eq!(l[0].code, LintCode::AliasedActuals);
        assert_eq!(l[0].routine, "t");
        assert_eq!(l[0].line, 4);
        // With interprocedural analysis off, a P006 witness appears too.
        let l = lints_of(src, false);
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P001", "P006"]);
    }

    #[test]
    fn equivalence_and_nonlinear_lints() {
        let l = lints_of(
            "
      PROGRAM t
      REAL a(10), b(4), c(10)
      EQUIVALENCE (a(3), b(1))
      DO i = 1, 10
        c(i*i) = a(i)
      ENDDO
      END
",
            true,
        );
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P004", "P005"]);
        assert!(l[1].message.contains("(i*i)"), "{}", l[1].message);
    }

    #[test]
    fn indirect_subscript_is_nonlinear() {
        let l = lints_of(
            "
      PROGRAM t
      REAL a(10)
      INTEGER idx(10)
      DO i = 1, 10
        a(idx(i)) = 0.0
      ENDDO
      END
",
            true,
        );
        // P005 for the indirect subscript — and P010, because idx is a
        // local array read without ever being written.
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P005", "P010"], "{l:?}");
    }

    #[test]
    fn affine_subscripts_stay_quiet() {
        let l = lints_of(
            "
      PROGRAM t
      PARAMETER (n = 5)
      REAL a(100)
      DO i = 1, 10
        a(2*i + n - 1) = 0.0
      ENDDO
      END
",
            true,
        );
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn range_lints_fire_with_value_range_on() {
        let src = "
      PROGRAM t
      REAL a(100)
      INTEGER n, m, i
      n = 150
      a(n) = 0.0
      IF (n .GT. 200) THEN
        a(1) = 1.0
      ENDIF
      m = 0
      DO i = 1, m
        a(i) = 2.0
      ENDDO
      END
";
        let l = lints_of(src, true);
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P008", "P007", "P009"], "{l:?}");
        assert!(l[0]
            .message
            .contains("outside declared dimension 1 (1:100)"));
        assert!(l[1].message.contains("provably false"));
        assert!(l[2].message.contains("never executes"));
        // With the value-range pass off, none of P007–P009 appear.
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        assert!(lint_program(&p, &sema, true, false, false).is_empty());
    }

    #[test]
    fn content_lints_fire_with_content_on() {
        let src = "
      PROGRAM t
      REAL a(10), b(10), c(10)
      INTEGER i
      c(1) = 1.0
      c(1) = 2.0
      DO i = 1, 10
        b(i) = a(i)
      ENDDO
      b(1) = c(1)
      END
";
        let l = lints_of(src, true);
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P011", "P010"], "{l:?}");
        // P011: c(1) stored on line 5 and overwritten on line 6 unread.
        assert_eq!(l[0].line, 5);
        assert!(
            l[0].message.contains("overwritten before it is ever read"),
            "{}",
            l[0].message
        );
        // P010: a read in the loop without any prior store.
        assert!(
            l[1].message.contains("read before any element is written"),
            "{}",
            l[1].message
        );
        // With the content pass off, none of P010–P012 appear.
        let p = parse_program(src).unwrap();
        let sema = analyze(&p).unwrap();
        assert!(lint_program(&p, &sema, true, false, false).is_empty());
    }

    #[test]
    fn dead_initialization_loop_lint() {
        let src = "
      PROGRAM t
      INTEGER a(10), s, i
      DO i = 1, 10
        a(i) = 0
      ENDDO
      DO i = 1, 10
        a(i) = i + 1
      ENDDO
      s = a(5)
      END
";
        let l = lints_of(src, true);
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P012"], "{l:?}");
        assert!(
            l[0].message.contains("initializes a to 0"),
            "{}",
            l[0].message
        );

        // The clean twin — a read between the loops — stays quiet.
        let quiet = lints_of(
            "
      PROGRAM t
      INTEGER a(10), s, i
      DO i = 1, 10
        a(i) = 0
      ENDDO
      s = a(5)
      DO i = 1, 10
        a(i) = i + 1
      ENDDO
      s = s + a(5)
      END
",
            true,
        );
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn lint_code_parse_round_trips() {
        for c in LintCode::ALL {
            assert_eq!(LintCode::parse(c.code()), Some(c));
            assert_eq!(LintCode::parse(c.slug()), Some(c));
        }
        assert_eq!(LintCode::parse("p007"), Some(LintCode::InfeasibleGuard));
        assert_eq!(LintCode::parse("P042"), None);
    }

    #[test]
    fn lints_are_sorted_and_deduped() {
        let l = lints_of(
            "
      PROGRAM t
      REAL a(10)
      DO i = 1, 10
        a(i*i) = a(i*i) + 1.0
      ENDDO
      CALL f(a, a)
      END
      SUBROUTINE f(x, y)
      REAL x(10), y(10)
      x(1) = y(1)
      END
",
            true,
        );
        // One P005 (deduped across read+write of the same expr), one P001.
        let codes: Vec<&str> = l.iter().map(|x| x.code.code()).collect();
        assert_eq!(codes, vec!["P005", "P001"]);
        let mut sorted = l.clone();
        sorted.sort_by(|a, b| {
            (a.routine.as_str(), a.line, a.code, a.message.as_str()).cmp(&(
                b.routine.as_str(),
                b.line,
                b.code,
                b.message.as_str(),
            ))
        });
        assert_eq!(l, sorted);
    }
}
