//! Call-site alias analysis over storage association, plus `panolint`.
//!
//! The paper's SUM_call translation assumes Fortran's no-alias
//! convention: every formal is bound to a distinct array and no actual
//! is simultaneously visible to the callee through COMMON. Real codes
//! violate this (`CALL F(A, A)`, COMMON arrays passed as actuals,
//! EQUIVALENCE overlays), so this crate classifies, for every CALL,
//! each formal/formal and formal/global pair as *must-alias*,
//! *may-alias* or *no-alias* using the storage classes computed by
//! `fortran::sema` ([`classify_call`]). `dataflow` consumes the
//! verdicts to degrade its substitution plan soundly; the [`lint`]
//! module turns the same facts — plus other "we conservatively assume
//! X" decisions — into stable, machine-readable diagnostics.

#![warn(missing_docs)]

mod classify;
pub mod lint;

pub use classify::{
    classify_call, AliasClass, AliasReason, CallAliasing, FormalPair, GlobalOverlap,
};
pub use lint::{lint_program, Lint, LintCode};
