//! Array privatization and loop parallelization (§3.2).
//!
//! Given the per-loop dependence sets computed by the dataflow analysis
//! ([`dataflow::LoopAnalysis`]), this crate renders the paper's verdicts:
//!
//! * **loop-carried flow dependence** exists iff `UE_i ∩ MOD_<i ≠ ∅`,
//! * **loop-carried output dependence** iff `MOD_i ∩ (MOD_<i ∪ MOD_>i) ≠ ∅`,
//! * **loop-carried anti dependence** iff `UE_i ∩ MOD_>i ≠ ∅`,
//! * an array is a **privatization candidate** when its accesses do not
//!   involve the loop index (iterations overwrite the same elements), and
//!   **privatizable** when additionally no loop-carried flow dependence
//!   exists,
//! * a loop is **parallelizable after privatization** when every
//!   remaining dependence sits on a privatizable array and every scalar
//!   written in the body is itself privatizable (not upwards exposed).
//!
//! All tests are conservative: "dependence exists" really means "cannot be
//! disproved" — exactly the compile-time stance of the paper.

#![warn(missing_docs)]

use dataflow::{ContentNote, LoopAnalysis, RangeNote};
use gar::GarList;
use serde::Serialize;
use vrange::{eval_sym, Budget, Interval, RangeEnv, ValueRange, DEFAULT_BUDGET};

/// One step of the decision trace behind a verdict (DESIGN.md §4f).
///
/// A [`LoopVerdict`]'s `provenance` is the ordered chain of region
/// operations that decided it: candidate screening, every loop-carried
/// intersection test with the surviving GAR (guard included) when the
/// intersection is non-empty, scalar/reduction classification, budget
/// degradation, and a final `decide` entry naming the deciding
/// intersection or degradation. Built purely from the [`LoopAnalysis`]
/// sets, so it is byte-identical across worker counts and cache
/// settings.
#[derive(Clone, Debug, Serialize)]
pub struct ProvEntry {
    /// Operation kind: `candidate`, `intersect`, `scalar`,
    /// `premature_exit`, `degraded`, `range_refute`, `range_compare`
    /// or `decide`.
    pub op: String,
    /// The array or scalar concerned (empty for loop-level entries).
    pub subject: String,
    /// What was tested, e.g. `UE_i ∩ MOD_<i`, with the surviving GAR
    /// and its guard when the test failed to prove emptiness.
    pub detail: String,
    /// Outcome of the step: `empty`, `nonempty`, `yes`, `no`,
    /// `reduction`, `private`, `serializes`, `parallel_as_is`,
    /// `parallel_after_privatization` or `serial`.
    pub result: String,
}

impl ProvEntry {
    /// One-line rendering for `--explain` and the golden provenance
    /// file: `intersect w: MOD_i ∩ MOD_<i = nonempty — ...`.
    pub fn render(&self) -> String {
        let subject = if self.subject.is_empty() {
            String::new()
        } else {
            format!(" {}", self.subject)
        };
        if self.detail.is_empty() {
            format!("{}{}: {}", self.op, subject, self.result)
        } else {
            format!("{}{}: {} = {}", self.op, subject, self.detail, self.result)
        }
    }
}

/// Dependence / privatization verdict for one array in one loop.
#[derive(Clone, Debug, Serialize)]
pub struct ArrayVerdict {
    /// The array name.
    pub array: String,
    /// Written at all in the loop body.
    pub written: bool,
    /// Privatization candidate: accessed regions do not involve the loop
    /// index.
    pub candidate: bool,
    /// Loop-carried flow dependence cannot be disproved.
    pub flow_dep: bool,
    /// Loop-carried output dependence cannot be disproved.
    pub output_dep: bool,
    /// Loop-carried anti dependence cannot be disproved.
    pub anti_dep: bool,
    /// Candidate with no loop-carried flow dependence.
    pub privatizable: bool,
    /// The array is used after the loop: a privatized copy must write its
    /// last value back (§3.2.1 live analysis).
    pub needs_copy_out: bool,
}

/// Why a loop fails to parallelize.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub enum Blocker {
    /// A flow dependence on the named array.
    ArrayFlowDep(String),
    /// An output/anti dependence on a non-privatizable array.
    ArrayStorageDep(String),
    /// A scalar that is both written and upwards exposed.
    ScalarDep(String),
    /// The loop has a premature exit (multi-exit DO).
    PrematureExit,
}

impl Blocker {
    /// The array this blocker concerns, if it is an array blocker.
    pub fn array(&self) -> Option<&str> {
        match self {
            Blocker::ArrayFlowDep(a) | Blocker::ArrayStorageDep(a) => Some(a),
            _ => None,
        }
    }
}

/// Dependence class of a concrete witness (mirrors the three
/// loop-carried tests above).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize)]
pub enum DepClass {
    /// `UE_i ∩ MOD_<i`: value flows from an earlier iteration.
    Flow,
    /// `DE_i ∩ MOD_>i`: a later iteration overwrites a read value.
    Anti,
    /// `MOD_i ∩ (MOD_<i ∪ MOD_>i)`: two iterations write one element.
    Output,
}

impl std::fmt::Display for DepClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DepClass::Flow => "flow",
            DepClass::Anti => "anti",
            DepClass::Output => "output",
        })
    }
}

/// A concrete witness for a negative verdict: one element of one array,
/// touched by two conflicting iterations, with source lines. Produced by
/// the dynamic race oracle and attached to the corresponding
/// [`LoopVerdict`]; the static analysis alone only proves *existence* of
/// a dependence, the witness pins it to real accesses.
#[derive(Clone, Debug, Serialize)]
pub struct Diagnostic {
    /// The array involved.
    pub array: String,
    /// Dependence class of the conflict.
    pub class: DepClass,
    /// Fortran subscripts of the conflicting element.
    pub element: Vec<i64>,
    /// Induction-variable value of the earlier conflicting iteration.
    pub earlier_iter: i64,
    /// Induction-variable value of the later conflicting iteration.
    pub later_iter: i64,
    /// 1-based source line of the earlier access (0 = unknown).
    pub earlier_line: u32,
    /// 1-based source line of the later access (0 = unknown).
    pub later_line: u32,
}

impl Diagnostic {
    /// Human-readable one-line rendering, e.g.
    /// `a(4): flow dependence — iter 2 (line 7) -> iter 3 (line 9)`.
    pub fn render(&self) -> String {
        let subs = self
            .element
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{}({}): {} dependence — iter {} (line {}) -> iter {} (line {})",
            self.array,
            subs,
            self.class,
            self.earlier_iter,
            self.earlier_line,
            self.later_iter,
            self.later_line
        )
    }
}

/// The full verdict for one loop.
#[derive(Clone, Debug, Serialize)]
pub struct LoopVerdict {
    /// Enclosing routine.
    pub routine: String,
    /// Loop index variable.
    pub var: String,
    /// 1-based source line of the DO statement (0 if synthetic).
    pub line: u32,
    /// Stable loop id (`routine/do var#sg`).
    pub id: String,
    /// Nesting depth.
    pub depth: usize,
    /// Per-array verdicts.
    pub arrays: Vec<ArrayVerdict>,
    /// Arrays that must be privatized for the loop to parallelize.
    pub privatized: Vec<String>,
    /// Scalars that must be privatized (written, not upwards exposed).
    pub private_scalars: Vec<String>,
    /// Scalars recognized as reductions (`s = s + e`): parallelizable with
    /// a reduction transform (an extension beyond the paper, standard in
    /// Polaris-era parallelizers).
    pub reductions: Vec<String>,
    /// Parallel with no transformation at all.
    pub parallel_as_is: bool,
    /// Parallel once the `privatized` arrays and `private_scalars` get
    /// per-iteration copies.
    pub parallel_after_privatization: bool,
    /// What blocks parallelization (empty iff parallelizable).
    pub blockers: Vec<Blocker>,
    /// Concrete dynamic witnesses for the blockers, when the race oracle
    /// has run (see the `raceoracle` crate). Empty for positive verdicts
    /// and for statically-judged-only runs.
    pub diagnostics: Vec<Diagnostic>,
    /// Whether the underlying analysis was widened by a resource budget
    /// (fuel, state cap or deadline — see `dataflow::fuel`). A degraded
    /// verdict is sound but conservative: it may say "serial" for a loop
    /// a full-budget run proves parallel, never the reverse.
    pub degraded: bool,
    /// The ordered decision trace (never empty): every region operation
    /// that fed the verdict, ending in a `decide` entry that names the
    /// deciding intersection or degradation. Additive JSON key; see
    /// DESIGN.md §4f.
    pub provenance: Vec<ProvEntry>,
}

/// Does any piece's *region* mention the variable? (Guards may mention the
/// index — e.g. `MOD_<i` — without the accesses themselves varying.)
fn regions_contain_var(list: &GarList, var: &str) -> bool {
    // Guards count too: a write under `IF (k .LE. 4)` reaches different
    // elements on different iterations even when the subscripts are
    // index-free, so per-iteration sets are not uniform and copy-out
    // from the last iteration would drop earlier iterations' writes.
    list.gars().iter().any(|g| g.contains_var(var))
}

/// Runs one loop-carried intersection test and records it in the
/// provenance chain: the sets tested, and — when emptiness cannot be
/// proved — the surviving GAR with its guard (the guard that failed to
/// refute the dependence). Returns whether a dependence survives.
fn probe(prov: &mut Vec<ProvEntry>, subject: &str, label: &str, a: &GarList, b: &GarList) -> bool {
    let inter = a.intersect(b);
    let dep = !inter.definitely_empty();
    let detail = match inter.gars().first() {
        Some(g) if dep => format!("{label}; surviving GAR {g}"),
        _ => label.to_string(),
    };
    prov.push(ProvEntry {
        op: "intersect".to_string(),
        subject: subject.to_string(),
        detail,
        result: if dep { "nonempty" } else { "empty" }.to_string(),
    });
    trace::add("intersections", 1);
    if dep {
        trace::add("intersections_nonempty", 1);
    }
    dep
}

/// Renders one value-range contribution recorded at analysis time as a
/// provenance entry (`range_refute` / `range_compare`, DESIGN.md §4g).
fn range_note_entry(note: &RangeNote) -> ProvEntry {
    match note {
        RangeNote::Refute { cond, always } => ProvEntry {
            op: "range_refute".to_string(),
            subject: String::new(),
            detail: cond.clone(),
            result: if *always { "always" } else { "never" }.to_string(),
        },
        RangeNote::Compare {
            lhs,
            rhs,
            detail,
            result,
        } => ProvEntry {
            op: "range_compare".to_string(),
            subject: String::new(),
            detail: format!("{lhs} ? {rhs}; {detail}"),
            result: result.clone(),
        },
    }
}

fn content_note_entry(note: &ContentNote) -> ProvEntry {
    match note {
        ContentNote::Refute { array, detail } => ProvEntry {
            op: "content_refute".to_string(),
            subject: array.clone(),
            detail: detail.clone(),
            result: "ue_i = {}".to_string(),
        },
        ContentNote::FullDef { array, detail } => ProvEntry {
            op: "content_full_def".to_string(),
            subject: array.clone(),
            detail: detail.clone(),
            result: "fully defined".to_string(),
        },
    }
}

/// Re-installs the loop's proved scalar bounds as a [`sym::bounds`]
/// comparison oracle for the duration of the judge's intersection
/// tests. The analyzer snapshotted the bounds on the [`LoopAnalysis`],
/// so cached replays reach the same Δ-unknown decisions as a cold run.
fn install_range_oracle(la: &LoopAnalysis) -> Option<sym::bounds::OracleGuard> {
    if la.range_bounds.is_empty() || sym::bounds::oracle_active() {
        return None;
    }
    let mut env = RangeEnv::new();
    for (name, (lo, hi)) in &la.range_bounds {
        env.set(
            name.clone(),
            ValueRange::of_interval(Interval::new(*lo, *hi)),
        );
    }
    let budget = Budget::new(DEFAULT_BUDGET);
    Some(sym::bounds::OracleGuard::install(Box::new(
        move |diff: &sym::Expr| {
            let iv = eval_sym(diff, &env, &budget).interval;
            if iv.is_empty() {
                return None;
            }
            let ord = if iv.as_const() == Some(0) {
                sym::SymOrdering::Equal
            } else if iv.hi.is_some_and(|h| h < 0) {
                sym::SymOrdering::Less
            } else if iv.lo.is_some_and(|l| l > 0) {
                sym::SymOrdering::Greater
            } else {
                return None;
            };
            Some((ord, format!("{diff} in {iv}")))
        },
    )))
}

/// Judges one analyzed loop.
pub fn judge_loop(la: &LoopAnalysis) -> LoopVerdict {
    let _span = trace::span_with(|| format!("judge:{}", la.id()));
    let mut arrays = Vec::new();
    let mut blockers = Vec::new();
    let mut privatized = Vec::new();
    let mut prov = Vec::new();

    // What the value-range pass contributed while the loop was
    // summarized, replayed from the analysis so cached verdicts render
    // identical provenance.
    for note in &la.range_notes {
        prov.push(range_note_entry(note));
    }
    // Likewise for the content pass (UE refutations, full definition).
    for note in &la.content_notes {
        prov.push(content_note_entry(note));
    }
    let range_guard = install_range_oracle(la);

    for (name, sets) in &la.arrays {
        let written = !sets.mod_i.is_empty();
        // Arrays whose storage overlaps another name (EQUIVALENCE or
        // COMMON layout) are never privatization candidates: a private
        // copy would sever the overlay partners' view of the bytes.
        let candidate = written
            && !la.overlaid.contains(name)
            && !regions_contain_var(&sets.mod_i, &la.var)
            && !regions_contain_var(&sets.ue_i, &la.var);
        let why = if !written {
            "not written in the loop"
        } else if la.overlaid.contains(name) {
            "storage overlay (COMMON/EQUIVALENCE partner)"
        } else if regions_contain_var(&sets.mod_i, &la.var)
            || regions_contain_var(&sets.ue_i, &la.var)
        {
            "accessed regions vary with the loop index"
        } else {
            "written; accessed regions independent of the loop index"
        };
        prov.push(ProvEntry {
            op: "candidate".to_string(),
            subject: name.clone(),
            detail: why.to_string(),
            result: if candidate { "yes" } else { "no" }.to_string(),
        });
        let mark = sym::bounds::log_mark();
        let flow_dep = probe(&mut prov, name, "UE_i ∩ MOD_<i", &sets.ue_i, &sets.mod_lt);
        let out_lt = probe(&mut prov, name, "MOD_i ∩ MOD_<i", &sets.mod_i, &sets.mod_lt);
        let out_gt = probe(&mut prov, name, "MOD_i ∩ MOD_>i", &sets.mod_i, &sets.mod_gt);
        let output_dep = out_lt || out_gt;
        // §3.2.2: when anti dependences are considered separately, the
        // downwards-exposed use set DE_i replaces UE_i.
        let anti_dep = probe(&mut prov, name, "DE_i ∩ MOD_>i", &sets.de_i, &sets.mod_gt);
        // Δ-unknown comparisons the reinstalled range oracle decided
        // inside this array's four tests.
        if range_guard.is_some() {
            for d in sym::bounds::decisions_since(mark) {
                prov.push(ProvEntry {
                    op: "range_compare".to_string(),
                    subject: name.clone(),
                    detail: format!("{} ? {}; {}", d.lhs, d.rhs, d.detail),
                    result: d.result.to_string(),
                });
            }
        }
        let privatizable = candidate && !flow_dep;
        let needs_copy_out = la.live_after.contains(name);

        if flow_dep {
            blockers.push(Blocker::ArrayFlowDep(name.clone()));
        } else if output_dep || anti_dep {
            if privatizable {
                privatized.push(name.clone());
            } else {
                blockers.push(Blocker::ArrayStorageDep(name.clone()));
            }
        }

        arrays.push(ArrayVerdict {
            array: name.clone(),
            written,
            candidate,
            flow_dep,
            output_dep,
            anti_dep,
            privatizable,
            needs_copy_out,
        });
    }

    // Scalars: anything written in the body must be private (not upwards
    // exposed) or it serializes the loop. The index variable is implicitly
    // private.
    let mut private_scalars = Vec::new();
    let mut reductions = Vec::new();
    for s in &la.scalar_mod {
        if s == &la.var {
            continue;
        }
        let (class, detail) = if la.reductions.contains(s) {
            reductions.push(s.clone());
            ("reduction", "recognized reduction (s = s op e)")
        } else if la.scalar_ue.contains(s) {
            blockers.push(Blocker::ScalarDep(s.clone()));
            ("serializes", "written and upwards exposed")
        } else {
            private_scalars.push(s.clone());
            ("private", "written, not upwards exposed")
        };
        prov.push(ProvEntry {
            op: "scalar".to_string(),
            subject: s.clone(),
            detail: detail.to_string(),
            result: class.to_string(),
        });
    }

    if la.premature_exit {
        blockers.push(Blocker::PrematureExit);
        prov.push(ProvEntry {
            op: "premature_exit".to_string(),
            subject: String::new(),
            detail: "multi-exit DO: iterations cannot be reordered".to_string(),
            result: "serializes".to_string(),
        });
    }

    if la.degraded {
        prov.push(ProvEntry {
            op: "degraded".to_string(),
            subject: String::new(),
            detail: "resource budget widened summaries to unknown over-approximations".to_string(),
            result: "conservative".to_string(),
        });
    }

    let parallel_after = blockers.is_empty();
    let parallel_as_is = parallel_after
        && privatized.is_empty()
        && private_scalars.is_empty()
        && reductions.is_empty();

    // The final entry names the deciding fact: for serial loops the
    // first blocking intersection (or the degradation that made it
    // non-refutable), for parallel loops the emptiness of every test.
    let (result, detail) = if !parallel_after {
        let named = match &blockers[0] {
            Blocker::ArrayFlowDep(a) | Blocker::ArrayStorageDep(a) => prov
                .iter()
                .find(|e| e.op == "intersect" && &e.subject == a && e.result == "nonempty")
                .map(|e| format!("{} ({a}) nonempty", intersection_label(&e.detail))),
            Blocker::ScalarDep(s) => Some(format!("scalar {s} written and upwards exposed")),
            Blocker::PrematureExit => Some("premature loop exit".to_string()),
        }
        .unwrap_or_else(|| "loop-carried dependence".to_string());
        let detail = if la.degraded {
            format!("degradation: budget widening left {named} non-refutable")
        } else {
            named
        };
        ("serial", detail)
    } else if parallel_as_is {
        (
            "parallel_as_is",
            "all loop-carried intersections empty".to_string(),
        )
    } else {
        (
            "parallel_after_privatization",
            format!(
                "all remaining dependences on privatizable storage \
                 (arrays [{}], scalars [{}], reductions [{}])",
                privatized.join(", "),
                private_scalars.join(", "),
                reductions.join(", ")
            ),
        )
    };
    prov.push(ProvEntry {
        op: "decide".to_string(),
        subject: String::new(),
        detail,
        result: result.to_string(),
    });

    LoopVerdict {
        routine: la.routine.clone(),
        var: la.var.clone(),
        line: la.line,
        id: la.id(),
        depth: la.depth,
        arrays,
        privatized,
        private_scalars,
        reductions,
        parallel_as_is,
        parallel_after_privatization: parallel_after,
        blockers,
        diagnostics: Vec::new(),
        degraded: la.degraded,
        provenance: prov,
    }
}

/// The set-expression part of an `intersect` entry's detail (before the
/// `; surviving GAR …` suffix).
fn intersection_label(detail: &str) -> &str {
    detail.split(';').next().unwrap_or(detail)
}

/// Judges every loop of an analysis run.
pub fn judge_all(loops: &[LoopAnalysis]) -> Vec<LoopVerdict> {
    loops.iter().map(judge_loop).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::{Analyzer, Options};

    fn verdicts(src: &str, opts: Options) -> Vec<LoopVerdict> {
        let program = fortran::parse_program(src).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        let h = hsg::build_hsg(&program).unwrap();
        let mut az = Analyzer::new(&program, &sema, &h, opts);
        az.run();
        judge_all(&az.loops)
    }

    fn find<'a>(vs: &'a [LoopVerdict], routine: &str, var: &str) -> &'a LoopVerdict {
        vs.iter()
            .find(|v| v.routine == routine && v.var == var)
            .unwrap_or_else(|| panic!("loop {routine}/{var} not found"))
    }

    #[test]
    fn simple_parallel_loop() {
        // a(i) = b(i): each iteration owns its element, parallel as-is.
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100), b(100)
      INTEGER i
      DO i = 1, 100
        a(i) = b(i)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(v.parallel_as_is, "{v:?}");
        assert!(v.blockers.is_empty());
    }

    #[test]
    fn true_recurrence_blocks() {
        // a(i) = a(i-1): genuine flow dependence.
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 2, 100
        a(i) = a(i-1)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(!v.parallel_after_privatization);
        assert!(v
            .blockers
            .iter()
            .any(|b| matches!(b, Blocker::ArrayFlowDep(a) if a == "a")));
    }

    #[test]
    fn work_array_privatizes() {
        let vs = verdicts(
            "
      PROGRAM t
      REAL w(10), a(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = 1.0
        ENDDO
        DO k = 1, 10
          a(i) = a(i) + w(k)
        ENDDO
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(!v.parallel_as_is);
        assert!(v.parallel_after_privatization, "{v:?}");
        assert_eq!(v.privatized, vec!["w".to_string()]);
        let w = v.arrays.iter().find(|a| a.array == "w").unwrap();
        assert!(w.candidate && w.privatizable && w.output_dep);
        assert!(!w.flow_dep);
        // `a` has no loop-carried dependence at all (a(i) only).
        let a = v.arrays.iter().find(|a| a.array == "a").unwrap();
        assert!(!a.flow_dep && !a.output_dep && !a.anti_dep);
    }

    #[test]
    fn upward_exposed_work_array_blocks() {
        // w used before written: values flow across iterations.
        let vs = verdicts(
            "
      PROGRAM t
      REAL w(10), s
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          s = s + w(k)
        ENDDO
        DO k = 1, 10
          w(k) = s
        ENDDO
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(!v.parallel_after_privatization);
        assert!(v
            .blockers
            .iter()
            .any(|b| matches!(b, Blocker::ArrayFlowDep(a) if a == "w")));
    }

    #[test]
    fn sum_reduction_recognized() {
        // s accumulates across iterations: recognized as a reduction, so
        // the loop parallelizes with a reduction transform.
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100), s
      INTEGER i
      DO i = 1, 100
        s = s + a(i)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(v.parallel_after_privatization, "{v:?}");
        assert!(!v.parallel_as_is);
        assert_eq!(v.reductions, vec!["s".to_string()]);
    }

    #[test]
    fn non_reduction_scalar_dependence_blocks() {
        // s carried across iterations in a non-reduction form.
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100), s
      INTEGER i
      DO i = 1, 100
        s = s * s + a(i)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(!v.parallel_after_privatization);
        assert!(v
            .blockers
            .iter()
            .any(|b| matches!(b, Blocker::ScalarDep(s) if s == "s")));
        assert!(v.reductions.is_empty());
    }

    #[test]
    fn reduction_value_used_in_body_blocks() {
        // The running value of s feeds the array: order matters, not a
        // plain reduction.
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100), s
      INTEGER i
      DO i = 1, 100
        s = s + a(i)
        a(i) = s
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(!v.parallel_after_privatization, "{v:?}");
    }

    #[test]
    fn private_scalar_ok() {
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100), tmp
      INTEGER i
      DO i = 1, 100
        tmp = 2.0
        a(i) = tmp * tmp
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(v.parallel_after_privatization, "{v:?}");
        assert!(v.private_scalars.contains(&"tmp".to_string()));
    }

    #[test]
    fn copy_out_detection() {
        let vs = verdicts(
            "
      PROGRAM t
      REAL w(10), a(100), q
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = 1.0
        ENDDO
        a(i) = w(5)
      ENDDO
      q = w(3)
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        let w = v.arrays.iter().find(|a| a.array == "w").unwrap();
        assert!(w.privatizable);
        assert!(w.needs_copy_out, "w is read after the loop");
    }

    #[test]
    fn premature_exit_blocks() {
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 1, 100
        IF (a(i) .GT. 0.0) goto 9
        a(i) = 1.0
      ENDDO
9     CONTINUE
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(v.blockers.contains(&Blocker::PrematureExit));
        assert!(!v.parallel_after_privatization);
    }

    #[test]
    fn provenance_ends_in_decide() {
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100), b(100)
      INTEGER i
      DO i = 1, 100
        a(i) = b(i)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        assert!(!v.provenance.is_empty());
        let last = v.provenance.last().unwrap();
        assert_eq!(last.op, "decide");
        assert_eq!(last.result, "parallel_as_is");
        assert_eq!(last.detail, "all loop-carried intersections empty");
        assert!(v
            .provenance
            .iter()
            .any(|e| e.op == "intersect" && e.subject == "a" && e.result == "empty"));
    }

    #[test]
    fn provenance_names_blocking_intersection_with_surviving_gar() {
        let vs = verdicts(
            "
      PROGRAM t
      REAL a(100)
      INTEGER i
      DO i = 2, 100
        a(i) = a(i-1)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "t", "i");
        let flow = v
            .provenance
            .iter()
            .find(|e| e.op == "intersect" && e.detail.starts_with("UE_i ∩ MOD_<i"))
            .expect("flow intersection recorded");
        assert_eq!(flow.result, "nonempty");
        assert!(
            flow.detail.contains("surviving GAR"),
            "nonempty test must carry its witness GAR: {}",
            flow.detail
        );
        let last = v.provenance.last().unwrap();
        assert_eq!(last.result, "serial");
        assert!(
            last.detail.contains("UE_i ∩ MOD_<i (a) nonempty"),
            "decide must name the deciding intersection: {}",
            last.detail
        );
    }

    #[test]
    fn provenance_is_deterministic() {
        let src = "
      PROGRAM t
      REAL w(10), a(100)
      INTEGER i, k
      DO i = 1, 100
        DO k = 1, 10
          w(k) = 1.0
        ENDDO
        a(i) = w(5)
      ENDDO
      END
";
        let render = |vs: &[LoopVerdict]| {
            vs.iter()
                .flat_map(|v| v.provenance.iter().map(ProvEntry::render))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = render(&verdicts(src, Options::default()));
        let b = render(&verdicts(src, Options::default()));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fig1c_verdict_end_to_end() {
        let vs = verdicts(
            "
      PROGRAM ocean
      REAL A(1000)
      INTEGER n, m, i
      REAL x
      DO i = 1, n
        x = 3.5
        call in(A, x, m)
        call out(A, x, m)
      ENDDO
      END
      SUBROUTINE in(B, x, mm)
      REAL B(*)
      INTEGER mm, j
      REAL x
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        B(j) = 0.0
      ENDDO
      END
      SUBROUTINE out(B, x, mm)
      REAL B(*)
      INTEGER mm, j
      REAL x, y
      IF (x .GT. 64.0) RETURN
      DO j = 1, mm
        y = B(j)
      ENDDO
      END
",
            Options::default(),
        );
        let v = find(&vs, "ocean", "i");
        assert!(v.parallel_after_privatization, "{v:?}");
        assert!(v.privatized.contains(&"a".to_string()));
    }
}
