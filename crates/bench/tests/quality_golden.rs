//! The quality trajectory is *committed*: `reports/QUALITY_benchsuite.json`
//! must match what the analyzer produces today, byte for byte. A change
//! in any kernel's verdicts — a lost parallel loop, a new degradation
//! cause, a shifted precision ratio — fails this test until the file is
//! regenerated (`cargo run -p bench-tables --bin quality_report`) and
//! the diff is reviewed and committed alongside the code change.

use std::path::PathBuf;

fn committed_path() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("reports");
    p.push("QUALITY_benchsuite.json");
    p
}

#[test]
fn committed_quality_report_matches_regenerated() {
    let committed = std::fs::read_to_string(committed_path()).expect(
        "reports/QUALITY_benchsuite.json missing — run \
         `cargo run -p bench-tables --bin quality_report` and commit it",
    );
    let regenerated =
        serde_json::to_string_pretty(&bench_tables::quality_report()).expect("serialize");
    assert_eq!(
        committed.trim_end(),
        regenerated.trim_end(),
        "quality trajectory drifted — if the verdict change is intended, \
         regenerate with `cargo run -p bench-tables --bin quality_report` \
         and commit the diff"
    );
}

#[test]
fn quality_report_is_deterministic_and_fully_precise() {
    let a = serde_json::to_string_pretty(&bench_tables::quality_report()).unwrap();
    let b = serde_json::to_string_pretty(&bench_tables::quality_report()).unwrap();
    assert_eq!(a, b, "quality report must be run-to-run deterministic");

    let v: serde::Value = serde_json::from_str(&a).unwrap();
    let totals = v.get("totals").expect("totals");
    // At full budget the suite analyzes without a single degradation:
    // every serial verdict is a proven dependence, never a widening.
    assert_eq!(
        totals
            .get("loops_serial_degraded")
            .and_then(serde::Value::as_u64),
        Some(0),
        "full-budget benchsuite run must not degrade"
    );
    assert_eq!(
        totals.get("precision_ratio").and_then(serde::Value::as_str),
        Some("1.000")
    );
    let loops_total = totals
        .get("loops_total")
        .and_then(serde::Value::as_u64)
        .expect("loops_total");
    assert!(loops_total > 0, "suite must contain loops");
    let kernels = v
        .get("kernels")
        .and_then(serde::Value::as_array)
        .expect("kernels");
    assert_eq!(kernels.len(), benchsuite::kernels().len());
}
