//! The ledger's suite-wide invariant: **every verdict-flipping
//! degradation is accounted**. For each benchsuite kernel and each
//! generated fuzz program, a verdict the engine marks `degraded` must
//! coincide with verdict-degrading `PrecisionEvent`s in the report, the
//! report's loop split must agree with the verdicts it was built from,
//! and a fuel-starved cache-less run must account for 100% of the loops
//! it flips from parallel (full budget) to serial. The report itself is
//! part of the determinism contract: byte-identical with and without a
//! summary cache attached.

use dataflow::cache::MemoryCache;
use panorama::{driver, FuelLimits};
use std::sync::Arc;

/// Deterministic generator (same recurrence as the raceoracle corpus).
struct Lcg(u64);
impl Lcg {
    fn next(&mut self, n: u64) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) % n
    }
}

/// One fuzz program: an outer i loop writing a work array under a
/// randomly chosen shape (full / guarded / partial / none) and reading
/// it back, with an optional init loop, an optional call into a helper
/// subroutine (exercises interprocedural summaries and the sum_call
/// degradation path) and an optional trailing liveness read.
fn gen_program(rng: &mut Lcg) -> String {
    let wsize = [8, 12, 16][rng.next(3) as usize];
    let n = [20, 40][rng.next(2) as usize];
    let write = rng.next(4);
    let read = rng.next(3);
    let init = rng.next(2) == 0;
    let call = rng.next(3) == 0;
    let live_after = rng.next(2) == 0;
    let mut s = String::new();
    s.push_str("      PROGRAM fz\n");
    s.push_str(&format!("      REAL w({wsize}), b({wsize}), r({n})\n"));
    s.push_str("      REAL acc\n      INTEGER i, k\n");
    s.push_str(&format!("      DO k = 1, {wsize}\n"));
    s.push_str("        b(k) = float(k)\n      ENDDO\n");
    if init {
        s.push_str(&format!("      DO k = 1, {wsize}\n"));
        s.push_str("        w(k) = 0.0\n      ENDDO\n");
    }
    s.push_str(&format!("      DO i = 1, {n}\n"));
    match write {
        0 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          w(k) = b(k) + float(i)\n        ENDDO\n");
        }
        1 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          IF (b(k) .GT. 3.0) THEN\n");
            s.push_str("            w(k) = b(k) + float(i)\n");
            s.push_str("          ENDIF\n        ENDDO\n");
        }
        2 => {
            s.push_str(&format!("        DO k = 2, {wsize}\n"));
            s.push_str("          w(k) = b(k) + float(i)\n        ENDDO\n");
        }
        _ => {}
    }
    if call {
        s.push_str(&format!("        CALL wfill(w, {wsize})\n"));
    }
    s.push_str("        acc = 0.0\n");
    match read {
        0 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          acc = acc + w(k)\n        ENDDO\n");
        }
        1 => {
            s.push_str(&format!("        DO k = 1, {wsize}\n"));
            s.push_str("          IF (b(k) .GT. 3.0) THEN\n");
            s.push_str("            acc = acc + w(k)\n");
            s.push_str("          ENDIF\n        ENDDO\n");
        }
        _ => {}
    }
    s.push_str("        r(i) = acc + float(i)\n");
    s.push_str("      ENDDO\n");
    if live_after {
        s.push_str("      r(1) = r(1) + w(2)\n");
    }
    s.push_str("      END\n");
    if call {
        s.push_str("      SUBROUTINE wfill(a, m)\n");
        s.push_str("      INTEGER m, j\n      REAL a(m)\n");
        s.push_str("      DO j = 1, m\n        a(j) = a(j) + 1.0\n      ENDDO\n");
        s.push_str("      END\n");
    }
    s
}

fn run(src: &str, limits: FuelLimits) -> driver::Outcome {
    let req = driver::Request {
        precision: true,
        limits,
        ..driver::Request::new(src)
    };
    driver::run(&req).expect("analysis failed")
}

/// The core invariant, checked against every run in this suite.
fn check_accounted(label: &str, out: &driver::Outcome) {
    let p = out.precision.as_ref().expect("precision requested");
    let verdicts = &out.analysis.verdicts;
    // The report's loop split is exactly the verdict set it summarizes.
    assert_eq!(
        p.loops_total as usize,
        verdicts.len(),
        "{label}: loops_total"
    );
    let parallel = verdicts
        .iter()
        .filter(|v| v.parallel_after_privatization)
        .count();
    let serial_degraded = verdicts
        .iter()
        .filter(|v| !v.parallel_after_privatization && v.degraded)
        .count();
    assert_eq!(
        p.loops_parallel as usize, parallel,
        "{label}: loops_parallel"
    );
    assert_eq!(
        p.loops_serial_degraded as usize, serial_degraded,
        "{label}: loops_serial_degraded"
    );
    assert_eq!(
        p.loops_serial_dependence as usize,
        verdicts.len() - parallel - serial_degraded,
        "{label}: loops_serial_dependence"
    );
    // Accounting: a degraded verdict without a verdict-degrading event
    // in the ledger (or an overflow drop) is a silent precision loss —
    // exactly what panoledger exists to make impossible.
    if verdicts.iter().any(|v| v.degraded) {
        assert!(
            p.degrading_events() > 0 || p.events_dropped > 0,
            "{label}: degraded verdicts with an empty ledger"
        );
    }
    // And the converse for the engine-wide widening flag: no verdict
    // may claim degradation when the analysis never widened.
    if !out.analysis.degraded() {
        assert!(
            verdicts.iter().all(|v| !v.degraded),
            "{label}: degraded verdict in a non-degraded analysis"
        );
    }
}

fn starved() -> FuelLimits {
    FuelLimits {
        steps: Some(1),
        ..FuelLimits::unlimited()
    }
}

#[test]
fn benchsuite_full_budget_is_fully_accounted() {
    for k in benchsuite::kernels() {
        let out = run(k.source, FuelLimits::unlimited());
        check_accounted(k.loop_label, &out);
        let p = out.precision.as_ref().unwrap();
        assert_eq!(
            p.loops_serial_degraded, 0,
            "{}: full budget must not degrade",
            k.loop_label
        );
        assert_eq!(p.ratio(), "1.000", "{}", k.loop_label);
    }
}

#[test]
fn benchsuite_starved_flips_are_fully_accounted() {
    let mut flips = 0usize;
    for k in benchsuite::kernels() {
        let full = run(k.source, FuelLimits::unlimited());
        let poor = run(k.source, starved());
        check_accounted(k.loop_label, &poor);
        let p = poor.precision.as_ref().unwrap();
        // 100% of serial flips accounted: every loop that was parallel
        // at full budget but serial when starved must carry the
        // degraded flag, and the ledger must hold degrading events.
        for fv in &full.analysis.verdicts {
            if !fv.parallel_after_privatization {
                continue;
            }
            let Some(pv) = poor.analysis.verdicts.iter().find(|v| v.id == fv.id) else {
                continue; // loop not even discovered under starvation
            };
            if !pv.parallel_after_privatization {
                flips += 1;
                assert!(
                    pv.degraded,
                    "{}: {} flipped serial without the degraded flag",
                    k.loop_label, pv.id
                );
                assert!(
                    p.degrading_events() > 0,
                    "{}: flipped verdicts with no degrading events",
                    k.loop_label
                );
            }
        }
    }
    assert!(flips > 0, "starvation never flipped a benchsuite loop");
}

type BudgetFn = fn() -> FuelLimits;

#[test]
fn fuzz_corpus_is_fully_accounted_under_every_budget() {
    let mut rng = Lcg(0x9a4d_f00d);
    let budgets: &[(&str, BudgetFn)] = &[
        ("full", FuelLimits::unlimited),
        ("starved", starved),
        ("range1", || FuelLimits {
            range_budget: Some(1),
            ..FuelLimits::unlimited()
        }),
        ("content1", || FuelLimits {
            content_budget: Some(1),
            ..FuelLimits::unlimited()
        }),
    ];
    let mut degraded_runs = 0usize;
    for case in 0..40 {
        let src = gen_program(&mut rng);
        for (name, limits) in budgets {
            let out = run(&src, limits());
            check_accounted(&format!("fuzz {case} ({name})"), &out);
            if out.analysis.degraded() {
                degraded_runs += 1;
            }
        }
    }
    assert!(
        degraded_runs > 0,
        "no fuzz run ever degraded — starvation has no teeth"
    );
}

#[test]
fn report_is_identical_with_and_without_a_cache() {
    for k in benchsuite::kernels().iter().take(4) {
        let req = driver::Request {
            precision: true,
            ..driver::Request::new(k.source)
        };
        let plain = driver::run(&req).unwrap();
        let cache: Arc<MemoryCache> = Arc::new(MemoryCache::new());
        // Warm the cache with a non-precision run so replay would kick
        // in if precision requests did not bypass it.
        let warm = driver::Request {
            precision: false,
            ..driver::Request::new(k.source)
        };
        driver::run_with_cache(&warm, Some(cache.clone())).unwrap();
        let cached = driver::run_with_cache(&req, Some(cache)).unwrap();
        let a = serde_json::to_string(&plain.precision.unwrap().json()).unwrap();
        let b = serde_json::to_string(&cached.precision.unwrap().json()).unwrap();
        assert_eq!(
            a, b,
            "{}: precision report depends on cache state",
            k.loop_label
        );
    }
}
