//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary prints a human-readable table to stdout and writes a
//! machine-readable JSON report under `reports/` so EXPERIMENTS.md numbers
//! stay regenerable and diffable.

#![warn(missing_docs)]

use benchsuite::Kernel;
use panorama::{driver, Analysis, Options};
use serde::Serialize;
use std::path::PathBuf;

/// Runs the analyzer on a kernel with the given toggles.
pub fn analyze_kernel(k: &Kernel, opts: Options) -> Analysis {
    let req = driver::Request {
        opts,
        ..driver::Request::new(k.source)
    };
    driver::run(&req)
        .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", k.loop_label))
        .analysis
}

/// Are all the kernel's Table 2 arrays privatizable under `opts`?
pub fn privatizes_all(k: &Kernel, opts: Options) -> bool {
    let a = analyze_kernel(k, opts);
    k.privatizable
        .iter()
        .all(|arr| driver::array_privatizable(&a, k.routine, k.var, arr))
}

/// Detected technique needs: a technique is needed iff turning it off
/// breaks privatization while the full set succeeds.
pub fn detect_needs(k: &Kernel) -> (bool, bool, bool) {
    let t1 = !privatizes_all(
        k,
        Options {
            symbolic: false,
            ..Options::default()
        },
    );
    let t2 = !privatizes_all(
        k,
        Options {
            if_conditions: false,
            ..Options::default()
        },
    );
    let t3 = !privatizes_all(
        k,
        Options {
            interprocedural: false,
            ..Options::default()
        },
    );
    (t1, t2, t3)
}

/// Writes a JSON report into `reports/<name>.json` (repo root).
pub fn write_report<T: Serialize>(name: &str, value: &T) {
    let dir = report_dir();
    std::fs::create_dir_all(&dir).expect("create reports dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    eprintln!("(report written to {})", path.display());
}

fn report_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → repo root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("reports");
    p
}

/// Formats Yes/No cells.
pub fn yn(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}
