//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Every binary prints a human-readable table to stdout and writes a
//! machine-readable JSON report under `reports/` so EXPERIMENTS.md numbers
//! stay regenerable and diffable.

#![warn(missing_docs)]

use benchsuite::Kernel;
use panorama::{driver, Analysis, Options};
use serde::Serialize;
use std::path::PathBuf;

/// Runs the analyzer on a kernel with the given toggles.
pub fn analyze_kernel(k: &Kernel, opts: Options) -> Analysis {
    let req = driver::Request {
        opts,
        ..driver::Request::new(k.source)
    };
    driver::run(&req)
        .unwrap_or_else(|e| panic!("{}: analysis failed: {e}", k.loop_label))
        .analysis
}

/// Are all the kernel's Table 2 arrays privatizable under `opts`?
pub fn privatizes_all(k: &Kernel, opts: Options) -> bool {
    let a = analyze_kernel(k, opts);
    k.privatizable
        .iter()
        .all(|arr| driver::array_privatizable(&a, k.routine, k.var, arr))
}

/// Detected technique needs: a technique is needed iff turning it off
/// breaks privatization while the full set succeeds.
pub fn detect_needs(k: &Kernel) -> (bool, bool, bool) {
    let t1 = !privatizes_all(
        k,
        Options {
            symbolic: false,
            ..Options::default()
        },
    );
    let t2 = !privatizes_all(
        k,
        Options {
            if_conditions: false,
            ..Options::default()
        },
    );
    let t3 = !privatizes_all(
        k,
        Options {
            interprocedural: false,
            ..Options::default()
        },
    );
    (t1, t2, t3)
}

/// Writes a JSON report into `reports/<name>.json` (repo root).
pub fn write_report<T: Serialize>(name: &str, value: &T) {
    let dir = report_dir();
    std::fs::create_dir_all(&dir).expect("create reports dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize report");
    std::fs::write(&path, json).expect("write report");
    eprintln!("(report written to {})", path.display());
}

fn report_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench → repo root is two levels up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("reports");
    p
}

/// The committed quality trajectory (`reports/QUALITY_benchsuite.json`):
/// every benchsuite kernel analyzed under `--precision-report`, with the
/// per-loop verdicts and the precision ledger attached. The payload is
/// fully deterministic — no dates, commits or timings — so CI can
/// regenerate it and `diff` byte-for-byte against the committed file;
/// any lost parallel loop, flipped verdict or new degradation cause
/// shows up as a diff.
pub fn quality_report() -> serde::Value {
    use serde::Value;
    let mut kernels_json = Vec::new();
    let mut loops = [0u64; 4]; // total, parallel, serial_dependence, serial_degraded
    let mut causes: std::collections::BTreeMap<&'static str, u64> =
        std::collections::BTreeMap::new();
    for k in benchsuite::kernels() {
        let req = driver::Request {
            precision: true,
            ..driver::Request::new(k.source)
        };
        let out =
            driver::run(&req).unwrap_or_else(|e| panic!("{}: analysis failed: {e}", k.loop_label));
        let report = out.precision.expect("precision requested");
        loops[0] += report.loops_total;
        loops[1] += report.loops_parallel;
        loops[2] += report.loops_serial_dependence;
        loops[3] += report.loops_serial_degraded;
        for (c, n) in &report.counts {
            *causes.entry(c.as_str()).or_insert(0) += n;
        }
        let loops_json = out
            .analysis
            .verdicts
            .iter()
            .map(|v| {
                Value::Object(vec![
                    ("id".to_string(), Value::Str(v.id.clone())),
                    ("line".to_string(), Value::UInt(u64::from(v.line))),
                    ("parallel_as_is".to_string(), Value::Bool(v.parallel_as_is)),
                    (
                        "parallel_after_privatization".to_string(),
                        Value::Bool(v.parallel_after_privatization),
                    ),
                    ("degraded".to_string(), Value::Bool(v.degraded)),
                    (
                        "privatized".to_string(),
                        Value::Array(v.privatized.iter().cloned().map(Value::Str).collect()),
                    ),
                    (
                        "reductions".to_string(),
                        Value::Array(v.reductions.iter().cloned().map(Value::Str).collect()),
                    ),
                ])
            })
            .collect();
        kernels_json.push(Value::Object(vec![
            ("program".to_string(), Value::Str(k.program.to_string())),
            (
                "loop_label".to_string(),
                Value::Str(k.loop_label.to_string()),
            ),
            ("loops".to_string(), Value::Array(loops_json)),
            ("precision".to_string(), report.json()),
        ]));
    }
    Value::Object(vec![
        ("suite".to_string(), Value::Str("benchsuite".to_string())),
        ("schema_version".to_string(), Value::UInt(1)),
        ("kernels".to_string(), Value::Array(kernels_json)),
        (
            "totals".to_string(),
            Value::Object(vec![
                ("loops_total".to_string(), Value::UInt(loops[0])),
                ("loops_parallel".to_string(), Value::UInt(loops[1])),
                ("loops_serial_dependence".to_string(), Value::UInt(loops[2])),
                ("loops_serial_degraded".to_string(), Value::UInt(loops[3])),
                (
                    "precision_ratio".to_string(),
                    Value::Str(ratio_3(loops[0] - loops[3], loops[0])),
                ),
                (
                    "causes".to_string(),
                    Value::Object(
                        causes
                            .iter()
                            .map(|(c, n)| (c.to_string(), Value::UInt(*n)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// `num / den` to three fixed decimals, round-half-up, in integers —
/// the same formula `PrecisionReport::ratio` uses, so the suite-wide
/// total in the quality report is comparable to the per-kernel ratios.
fn ratio_3(num: u64, den: u64) -> String {
    if den == 0 {
        return "1.000".to_string();
    }
    let scaled = (num * 1000 + den / 2) / den;
    format!("{}.{:03}", scaled / 1000, scaled % 1000)
}

/// Formats Yes/No cells.
pub fn yn(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}
