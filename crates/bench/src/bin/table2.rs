//! Regenerates **Table 2**: the privatizable arrays of every loop and
//! whether the analyzer privatizes them automatically. The paper's single
//! `no` (MDG `interf` RL, the Fig. 1(a) case) must reproduce — and flip to
//! `yes` under the ∀-extension (§5.2's future work, our `forall_ext`).
//!
//! ```text
//! cargo run -p bench-tables --bin table2
//! ```

use bench_tables::{analyze_kernel, write_report};
use benchsuite::kernels;
use panorama::{driver, Options};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    program: String,
    loop_label: String,
    array: String,
    paper_status: &'static str,
    base_status: &'static str,
    forall_status: &'static str,
    matches_paper: bool,
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<8} {:<13} {:<10} {:>7} {:>9} {:>9}",
        "Program", "Loop", "Array", "Paper", "Base", "Forall"
    );
    println!("{}", "-".repeat(64));
    for k in kernels() {
        let base = analyze_kernel(&k, Options::default());
        let ext = analyze_kernel(&k, Options::full());
        let status = |a: &panorama::Analysis, arr: &str| -> &'static str {
            if driver::array_privatizable(a, k.routine, k.var, arr) {
                "yes"
            } else {
                "no"
            }
        };
        for (arr, paper) in k
            .privatizable
            .iter()
            .map(|a| (*a, "yes"))
            .chain(k.hard.iter().map(|a| (*a, "no")))
        {
            let b = status(&base, arr);
            let f = status(&ext, arr);
            let matches = b == paper;
            println!(
                "{:<8} {:<13} {:<10} {:>7} {:>9} {:>9}{}",
                k.program,
                k.loop_label,
                arr.to_uppercase(),
                paper,
                b,
                f,
                if matches { "" } else { "   << MISMATCH" }
            );
            rows.push(Row {
                program: k.program.to_string(),
                loop_label: k.loop_label.to_string(),
                array: arr.to_string(),
                paper_status: paper,
                base_status: b,
                forall_status: f,
                matches_paper: matches,
            });
        }
    }
    let n_match = rows.iter().filter(|r| r.matches_paper).count();
    println!(
        "\n{} / {} array statuses match the paper's Table 2",
        n_match,
        rows.len()
    );
    write_report("table2", &rows);
}
