//! `bench_diff` — compares benchmark runs against the committed
//! `BENCH_*.json` trajectory.
//!
//! ```text
//! bench_diff compare BASELINE CURRENT [--tolerance FACTOR]
//!     For every bench present in both inputs, fail (exit 1) when
//!     current_median > baseline_median * FACTOR (default 3.0 — a
//!     cross-machine sanity band that catches order-of-magnitude
//!     regressions, not single-digit noise).
//!
//! bench_diff ratio INPUT NUM DEN [--max RATIO]
//!     Fail when INPUT's bench NUM is more than RATIO times its bench
//!     DEN (default 1.10). Same-run ratios are machine-independent;
//!     this is how CI pins the ledger/trace disabled-path overhead.
//!
//! bench_diff parse INPUT
//!     Print the normalized {"benches": {...}} JSON for INPUT.
//! ```
//!
//! Inputs are auto-detected: either a committed `BENCH_*.json`
//! trajectory file (`{"benches": {name: {"median_ns": n, ...}}}`) or
//! raw criterion-shim output (`bench NAME: median T per iter (N
//! samples)` lines, as emitted by `cargo bench`).

use serde::Value;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff compare BASELINE CURRENT [--tolerance FACTOR]\n\
         \x20      bench_diff ratio INPUT NUM DEN [--max RATIO]\n\
         \x20      bench_diff parse INPUT"
    );
    std::process::exit(2);
}

/// One parsed benchmark: median nanoseconds and sample count.
#[derive(Clone, Copy, Debug)]
struct Bench {
    median_ns: u64,
    samples: u64,
}

/// Parses one criterion-shim output line:
/// `bench NAME: median 14.776 ms per iter (20 samples)`.
fn parse_criterion_line(line: &str) -> Option<(String, Bench)> {
    let rest = line.trim().strip_prefix("bench ")?;
    let (name, rest) = rest.split_once(": median ")?;
    let (time, rest) = rest.split_once(" per iter (")?;
    let samples: u64 = rest.strip_suffix(" samples)")?.trim().parse().ok()?;
    let (value, unit) = time.trim().split_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let scale = match unit {
        "ns" => 1.0,
        "µs" | "us" => 1e3,
        "ms" => 1e6,
        "s" => 1e9,
        _ => return None,
    };
    Some((
        name.to_string(),
        Bench {
            median_ns: (value * scale).round() as u64,
            samples,
        },
    ))
}

/// Loads either input format into a name → bench map.
fn load(path: &str) -> Result<BTreeMap<String, Bench>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    // A trajectory file is a JSON object with a "benches" key.
    if let Ok(v) = serde_json::from_str(&text) {
        if let Some(Value::Object(benches)) = v.get("benches").cloned() {
            let mut out = BTreeMap::new();
            for (name, b) in &benches {
                let median = b
                    .get("median_ns")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("{path}: bench {name} has no median_ns"))?;
                let samples = b.get("samples").and_then(Value::as_u64).unwrap_or(0);
                out.insert(
                    name.clone(),
                    Bench {
                        median_ns: median,
                        samples,
                    },
                );
            }
            return Ok(out);
        }
    }
    // Otherwise treat it as raw criterion output.
    let out: BTreeMap<String, Bench> = text.lines().filter_map(parse_criterion_line).collect();
    if out.is_empty() {
        return Err(format!(
            "{path}: neither a BENCH_*.json trajectory nor criterion output"
        ));
    }
    Ok(out)
}

fn benches_json(benches: &BTreeMap<String, Bench>) -> Value {
    Value::Object(vec![(
        "benches".to_string(),
        Value::Object(
            benches
                .iter()
                .map(|(name, b)| {
                    (
                        name.clone(),
                        Value::Object(vec![
                            ("median_ns".to_string(), Value::UInt(b.median_ns)),
                            ("samples".to_string(), Value::UInt(b.samples)),
                        ]),
                    )
                })
                .collect(),
        ),
    )])
}

fn flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} needs a value");
        usage();
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

fn compare(baseline_path: &str, current_path: &str, tolerance: f64) -> Result<bool, String> {
    let baseline = load(baseline_path)?;
    let current = load(current_path)?;
    let mut ok = true;
    let mut shared = 0usize;
    for (name, base) in &baseline {
        let Some(cur) = current.get(name) else {
            println!("bench_diff: {name}: missing from {current_path} (skipped)");
            continue;
        };
        shared += 1;
        let ratio = cur.median_ns as f64 / (base.median_ns.max(1)) as f64;
        let verdict = if ratio > tolerance { "REGRESSED" } else { "ok" };
        println!(
            "bench_diff: {name}: {} -> {} ns ({ratio:.2}x, band {tolerance:.2}x) {verdict}",
            base.median_ns, cur.median_ns
        );
        if ratio > tolerance {
            ok = false;
        }
    }
    if shared == 0 {
        return Err(format!(
            "no shared benches between {baseline_path} and {current_path}"
        ));
    }
    Ok(ok)
}

fn ratio(path: &str, num: &str, den: &str, max: f64) -> Result<bool, String> {
    let benches = load(path)?;
    let n = benches
        .get(num)
        .ok_or_else(|| format!("{path}: no bench named {num}"))?;
    let d = benches
        .get(den)
        .ok_or_else(|| format!("{path}: no bench named {den}"))?;
    let r = n.median_ns as f64 / (d.median_ns.max(1)) as f64;
    let ok = r <= max;
    println!(
        "bench_diff: {num} / {den} = {} / {} ns = {r:.3}x (max {max:.3}x) {}",
        n.median_ns,
        d.median_ns,
        if ok { "ok" } else { "EXCEEDED" }
    );
    Ok(ok)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "compare" => {
            let tolerance = flag_value(&mut args, "--tolerance")
                .map_or(3.0, |v| v.parse().unwrap_or_else(|_| usage()));
            let [baseline, current] = args.as_slice() else {
                usage();
            };
            compare(baseline, current, tolerance)
        }
        "ratio" => {
            let max = flag_value(&mut args, "--max")
                .map_or(1.10, |v| v.parse().unwrap_or_else(|_| usage()));
            let [input, num, den] = args.as_slice() else {
                usage();
            };
            ratio(input, num, den, max)
        }
        "parse" => {
            let [input] = args.as_slice() else { usage() };
            match load(input) {
                Ok(benches) => match serde_json::to_string_pretty(&benches_json(&benches)) {
                    Ok(text) => {
                        println!("{text}");
                        Ok(true)
                    }
                    Err(e) => Err(format!("serialize: {e}")),
                },
                Err(e) => Err(e),
            }
        }
        _ => usage(),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_criterion_lines() {
        let (name, b) = parse_criterion_line(
            "bench ledger_overhead/disabled: median 14.776 ms per iter (20 samples)",
        )
        .unwrap();
        assert_eq!(name, "ledger_overhead/disabled");
        assert_eq!(b.median_ns, 14_776_000);
        assert_eq!(b.samples, 20);
        let (_, us) =
            parse_criterion_line("bench x: median 1.500 µs per iter (3 samples)").unwrap();
        assert_eq!(us.median_ns, 1_500);
        let (_, s) = parse_criterion_line("bench x: median 2.000 s per iter (1 samples)").unwrap();
        assert_eq!(s.median_ns, 2_000_000_000);
        assert!(parse_criterion_line("not a bench line").is_none());
        assert!(parse_criterion_line("bench x: no samples (closure never called iter)").is_none());
    }

    #[test]
    fn json_round_trips_through_parse() {
        let mut benches = BTreeMap::new();
        benches.insert(
            "a/b".to_string(),
            Bench {
                median_ns: 123,
                samples: 20,
            },
        );
        let text = serde_json::to_string(&benches_json(&benches));
        let v: Value = serde_json::from_str(&text.unwrap()).unwrap();
        assert_eq!(
            v.get("benches")
                .unwrap()
                .get("a/b")
                .unwrap()
                .get("median_ns")
                .unwrap()
                .as_u64(),
            Some(123)
        );
    }
}
