//! Regenerates **Figure 4**: Panorama vs a conventional compiler on
//! elapsed time and memory, per benchmark program.
//!
//! The paper compared against Sun's `f77 -O` on a SPARC 2; we have no f77,
//! so the comparison target is the *conventional-compile proxy* (parse +
//! semantic analysis + HSG + conventional dependence tests + code walks;
//! DESIGN.md §3). The claim to reproduce is the *shape*: the full
//! symbolic analysis stays within a small factor of a conventional
//! compilation, while using more memory for summaries.
//!
//! ```text
//! cargo run -p bench-tables --bin fig4 [--release for stable numbers]
//! ```

use bench_tables::write_report;
use benchsuite::kernels;
use panorama::{analyze_source, conventional_compile_proxy, parse_only, Options};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

#[derive(Serialize)]
struct Row {
    program: String,
    parser_us: u128,
    conventional_us: u128,
    panorama_us: u128,
    panorama_over_conventional: f64,
    parse_memory_proxy: usize,
    panorama_memory_proxy: usize,
}

fn best_of<F: FnMut() -> Duration>(mut f: F, n: usize) -> Duration {
    (0..n).map(|_| f()).min().unwrap()
}

fn main() {
    // Group the kernels per benchmark program, concatenating sources so
    // each bar covers a whole "program" like the paper's.
    let mut programs: BTreeMap<&str, String> = BTreeMap::new();
    for k in kernels() {
        programs.entry(k.program).or_default().push_str(k.source);
    }

    let mut rows = Vec::new();
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>8}   {:>10} {:>10}",
        "Program", "parser", "conv-proxy", "panorama", "ratio", "mem(parse)", "mem(pan)"
    );
    println!("{}", "-".repeat(80));
    for (program, src) in &programs {
        let t_parse = best_of(|| parse_only(src).unwrap(), 5);
        let t_conv = best_of(|| conventional_compile_proxy(src).unwrap(), 5);
        let mut mem = 0usize;
        let t_pan = best_of(
            || {
                let a = analyze_source(src, Options::default()).unwrap();
                mem = a.memory_proxy();
                a.times.total()
            },
            5,
        );
        // Parse-only memory proxy: statement count (AST footprint stand-in).
        let parsed = fortran::parse_program(src).unwrap();
        let parse_mem: usize = parsed.routines.iter().map(|r| r.body.len() * 4).sum();

        let ratio = t_pan.as_secs_f64() / t_conv.as_secs_f64().max(1e-9);
        println!(
            "{:<8} {:>8}us {:>10}us {:>10}us {:>8.2}   {:>10} {:>10}",
            program,
            t_parse.as_micros(),
            t_conv.as_micros(),
            t_pan.as_micros(),
            ratio,
            parse_mem,
            mem
        );
        rows.push(Row {
            program: program.to_string(),
            parser_us: t_parse.as_micros(),
            conventional_us: t_conv.as_micros(),
            panorama_us: t_pan.as_micros(),
            panorama_over_conventional: ratio,
            parse_memory_proxy: parse_mem,
            panorama_memory_proxy: mem,
        });
    }
    let worst = rows
        .iter()
        .map(|r| r.panorama_over_conventional)
        .fold(0.0f64, f64::max);
    println!(
        "\nshape check: panorama / conventional stays within {worst:.1}x across programs\n\
         (the paper reports Panorama faster than f77 -O; our proxy has no optimizer,\n\
          so parity-to-small-factor is the comparable claim). Memory is larger for\n\
          panorama, as in the paper."
    );
    write_report("fig4", &rows);
}
