//! Regenerates **Figure 5**: the worked backward propagation for the
//! Fig. 1(b) kernel — per-node `ue_in`/`mod_in` sets, the loop-level
//! `UE_i`, `MOD_<i`, their intersection, and the privatizability verdict.
//!
//! ```text
//! cargo run -p bench-tables --bin fig5
//! ```

use bench_tables::write_report;
use benchsuite::fig1_kernels;
use panorama::{analyze_source, Options};
use serde::Serialize;

#[derive(Serialize)]
struct Report {
    trace: Vec<String>,
    ue_i: String,
    mod_lt: String,
    intersection_empty: bool,
    privatizable: bool,
}

fn main() {
    let (_, routine, var, array, src) = fig1_kernels()
        .into_iter()
        .find(|(tag, ..)| *tag == "1b")
        .unwrap();

    let a = analyze_source(
        src,
        Options {
            trace: true,
            ..Options::default()
        },
    )
    .expect("analysis");

    println!("=== Figure 5: backward propagation over the Fig. 1(b) HSG ===\n");
    println!("{}", a.hsg.dump_routine(routine));
    println!("--- per-node sets (backward order) ---");
    for line in &a.trace {
        if line.starts_with(routine) {
            println!("  {line}");
        }
    }

    let la = a.loop_analysis(routine, var).expect("outer loop");
    let sets = &la.arrays[array];
    let inter = sets.ue_i.intersect(&sets.mod_lt);
    let v = a.verdict(routine, var).unwrap();
    let av = v.arrays.iter().find(|x| x.array == array).unwrap();

    println!("\n--- A. UE_i and MOD_i of the outer loop (iteration i) ---");
    println!("  ue_i({array})   = {}", sets.ue_i);
    println!("  mod_i({array})  = {}", sets.mod_i);
    println!("\n--- B. Is array {array} privatizable? ---");
    println!("  mod_<i({array}) = {}", sets.mod_lt);
    println!("  ue_i ∩ mod_<i  = {}", inter);
    println!(
        "  => {} ({})",
        if inter.definitely_empty() {
            "EMPTY — A is privatizable"
        } else {
            "NOT empty"
        },
        if av.privatizable {
            "verdict: privatizable"
        } else {
            "verdict: not privatizable"
        }
    );

    write_report(
        "fig5",
        &Report {
            trace: a.trace.clone(),
            ue_i: sets.ue_i.to_string(),
            mod_lt: sets.mod_lt.to_string(),
            intersection_empty: inter.definitely_empty(),
            privatizable: av.privatizable,
        },
    );
}
