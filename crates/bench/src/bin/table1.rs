//! Regenerates **Table 1**: loops, speedups, % of sequential time, and the
//! privatization techniques each loop needs (T1 symbolic, T2 IF-condition,
//! T3 interprocedural).
//!
//! Speedups are measured on the deterministic P=8 processor simulation
//! (the Alliant FX/8 substitute — see DESIGN.md §3); technique needs are
//! *detected* by ablation and compared against the paper's column values.
//!
//! ```text
//! cargo run -p bench-tables --bin table1
//! ```

use bench_tables::{detect_needs, write_report, yn};
use benchsuite::kernels;
use interp::simulate_speedup;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    program: String,
    loop_label: String,
    paper_speedup: f64,
    measured_speedup_p8: f64,
    paper_pct_seq: f64,
    measured_loop_fraction_pct: f64,
    t1_needed: bool,
    t2_needed: bool,
    t3_needed: bool,
    t1_paper: bool,
    t2_paper: bool,
    t3_paper: bool,
    matches_paper: bool,
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<8} {:<13} {:>7} {:>8} {:>6} {:>7}   {:<17} {:<17}",
        "Program",
        "Loop",
        "SpdupP",
        "SpdupSim",
        "%SeqP",
        "%SeqSim",
        "Needed (measured)",
        "Needed (paper)"
    );
    println!("{}", "-".repeat(100));
    for k in kernels() {
        // Simulated speedup on 8 virtual processors.
        let program = fortran::parse_program(k.source).unwrap();
        let sema = fortran::analyze(&program).unwrap();
        let machine = interp::Machine::new(&program, &sema);
        let sim = simulate_speedup(&machine, k.routine, k.var, 8).expect("simulation");

        let (t1, t2, t3) = detect_needs(&k);
        let matches = (t1, t2, t3) == (k.needs.t1, k.needs.t2, k.needs.t3);

        println!(
            "{:<8} {:<13} {:>7.1} {:>8.2} {:>6.0} {:>7.1}   T1={:<3} T2={:<3} T3={:<3} T1={:<3} T2={:<3} T3={:<3}{}",
            k.program,
            k.loop_label,
            k.paper_speedup,
            sim.speedup,
            k.paper_pct_seq,
            100.0 * sim.loop_fraction,
            yn(t1),
            yn(t2),
            yn(t3),
            yn(k.needs.t1),
            yn(k.needs.t2),
            yn(k.needs.t3),
            if matches { "" } else { "   << MISMATCH" }
        );
        rows.push(Row {
            program: k.program.to_string(),
            loop_label: k.loop_label.to_string(),
            paper_speedup: k.paper_speedup,
            measured_speedup_p8: sim.speedup,
            paper_pct_seq: k.paper_pct_seq,
            measured_loop_fraction_pct: 100.0 * sim.loop_fraction,
            t1_needed: t1,
            t2_needed: t2,
            t3_needed: t3,
            t1_paper: k.needs.t1,
            t2_paper: k.needs.t2,
            t3_paper: k.needs.t3,
            matches_paper: matches,
        });
    }
    let all_match = rows.iter().all(|r| r.matches_paper);
    println!(
        "\ntechnique matrix {} the paper's Table 1",
        if all_match {
            "MATCHES"
        } else {
            "does NOT match"
        }
    );
    println!(
        "note: %SeqSim is the loop's fraction of *this kernel's* runtime; the paper's\n%Seq is over the whole original benchmark, so only the speedup shape is comparable."
    );
    write_report("table1", &rows);
}
