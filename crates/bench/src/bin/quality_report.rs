//! Regenerates `reports/QUALITY_benchsuite.json` — the committed
//! quality trajectory: every benchsuite kernel's loop verdicts plus
//! the precision ledger from a `--precision-report` run. CI's
//! `quality-golden` job reruns this binary and diffs the output
//! against the committed file, so a lost parallel loop, a flipped
//! verdict or a new degradation cause fails the build.

fn main() {
    let report = bench_tables::quality_report();
    match serde_json::to_string_pretty(&report) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("(cannot render report: {e})"),
    }
    bench_tables::write_report("QUALITY_benchsuite", &report);
}
