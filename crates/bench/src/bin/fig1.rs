//! Regenerates the **Figure 1** motivating examples: for each of the three
//! kernels, report whether array A privatizes under the base analysis and
//! under the ∀-extension. The paper's claims: (b) and (c) are handled by
//! the GAR analysis; (a) needs ∀/∃ quantifiers (§5.2) — their
//! implementation could not do it, our `forall_ext` can.
//!
//! ```text
//! cargo run -p bench-tables --bin fig1
//! ```

use bench_tables::write_report;
use benchsuite::fig1_kernels;
use panorama::{driver, Options};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    figure: String,
    base_privatizable: bool,
    forall_privatizable: bool,
    expected_base: bool,
}

fn main() {
    let mut rows = Vec::new();
    println!(
        "{:<8} {:>16} {:>18} {:>16}",
        "Figure", "base analysis", "forall extension", "paper (base)"
    );
    println!("{}", "-".repeat(64));
    for (tag, routine, var, array, src) in fig1_kernels() {
        let check = |opts: Options| -> bool {
            let req = driver::Request {
                opts,
                ..driver::Request::new(src)
            };
            let out = driver::run(&req).expect("analysis");
            driver::array_privatizable(&out.analysis, routine, var, array)
        };
        let base = check(Options::default());
        let ext = check(Options::full());
        // Paper: (a) not handled by the implementation; (b), (c) handled.
        let expected_base = tag != "1a";
        println!(
            "{:<8} {:>16} {:>18} {:>16}{}",
            format!("Fig {tag}"),
            base,
            ext,
            expected_base,
            if base == expected_base {
                ""
            } else {
                "   << MISMATCH"
            }
        );
        rows.push(Row {
            figure: tag.to_string(),
            base_privatizable: base,
            forall_privatizable: ext,
            expected_base,
        });
    }
    write_report("fig1", &rows);
}
