//! Criterion benches behind Fig. 4's practicality claim: whole-program
//! analysis time per benchmark, parser baseline, conventional-compile
//! proxy, and the technique ablations (DESIGN.md §5).

use benchsuite::kernels;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dataflow::{MemoryCache, SummaryCache};
use panorama::{
    analyze_source, analyze_source_with_cache, conventional_compile_proxy, parse_only, Options,
};
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

fn program_sources() -> BTreeMap<&'static str, String> {
    let mut programs: BTreeMap<&str, String> = BTreeMap::new();
    for k in kernels() {
        programs.entry(k.program).or_default().push_str(k.source);
    }
    programs
}

fn bench_phases(c: &mut Criterion) {
    let programs = program_sources();
    let mut g = c.benchmark_group("fig4_phases");
    for (name, src) in &programs {
        g.bench_with_input(BenchmarkId::new("parser", name), src, |b, src| {
            b.iter(|| parse_only(black_box(src)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("conventional", name), src, |b, src| {
            b.iter(|| conventional_compile_proxy(black_box(src)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("panorama", name), src, |b, src| {
            b.iter(|| analyze_source(black_box(src), Options::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let programs = program_sources();
    let all: String = programs.values().cloned().collect::<Vec<_>>().join("\n");
    let mut g = c.benchmark_group("ablations");
    for (tag, opts) in [
        ("full", Options::default()),
        ("forall", Options::full()),
        (
            "no_guards",
            Options {
                if_conditions: false,
                ..Options::default()
            },
        ),
        (
            "no_symbolic",
            Options {
                symbolic: false,
                ..Options::default()
            },
        ),
        (
            "no_interproc",
            Options {
                interprocedural: false,
                ..Options::default()
            },
        ),
        ("conventional_only", Options::conventional()),
        (
            "content",
            Options {
                content: true,
                ..Options::default()
            },
        ),
    ] {
        g.bench_function(tag, |b| {
            b.iter(|| analyze_source(black_box(&all), opts).unwrap())
        });
    }
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Analysis time vs. program size: the practicality claim must hold as
    // programs grow (near-linear in routines for this access structure).
    let mut g = c.benchmark_group("scaling");
    for n in [1usize, 4, 16, 64] {
        let src = benchsuite::synthetic_program(n, 100);
        g.bench_with_input(BenchmarkId::new("routines", n), &src, |b, src| {
            b.iter(|| analyze_source(black_box(src), Options::default()).unwrap())
        });
    }
    g.finish();
}

fn bench_cache_and_trace(c: &mut Criterion) {
    // Cold vs. warm throughput and trace overhead over the whole suite:
    // the three numbers BENCH_*.json tracks across PRs.
    let programs = program_sources();
    let all: String = programs.values().cloned().collect::<Vec<_>>().join("\n");
    let mut g = c.benchmark_group("cache");
    g.bench_function("cold", |b| {
        b.iter(|| {
            let cache: Arc<dyn SummaryCache> = Arc::new(MemoryCache::new());
            analyze_source_with_cache(black_box(&all), Options::default(), Some(cache)).unwrap()
        })
    });
    let warm: Arc<dyn SummaryCache> = Arc::new(MemoryCache::new());
    analyze_source_with_cache(&all, Options::default(), Some(Arc::clone(&warm))).unwrap();
    g.bench_function("warm", |b| {
        b.iter(|| {
            analyze_source_with_cache(black_box(&all), Options::default(), Some(Arc::clone(&warm)))
                .unwrap()
        })
    });
    g.bench_function("trace", |b| {
        b.iter(|| {
            analyze_source(
                black_box(&all),
                Options {
                    trace: true,
                    ..Options::default()
                },
            )
            .unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_phases, bench_ablations, bench_scaling, bench_cache_and_trace
}
criterion_main!(benches);
