//! Criterion benches for the panogen emission backend (DESIGN.md §4h):
//! cost of clause selection + directive emission + plan lowering on top
//! of an existing analysis, and the threaded executor against its
//! serial baseline. Tracked across PRs in `BENCH_codegen.json`.

use benchsuite::kernels;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interp::Machine;
use panorama::{analyze_source, Analysis, Options};
use std::collections::BTreeMap;
use std::hint::black_box;

fn program_sources() -> BTreeMap<&'static str, String> {
    let mut programs: BTreeMap<&str, String> = BTreeMap::new();
    for k in kernels() {
        programs.entry(k.program).or_default().push_str(k.source);
    }
    programs
}

fn transform(a: &Analysis) -> codegen::Transform {
    codegen::transform(&a.program, &a.sema, &a.loops, &a.verdicts)
}

fn bench_transform(c: &mut Criterion) {
    // Emission rides a finished analysis, so the analysis runs once
    // outside the timed region: these numbers are the marginal cost of
    // `--emit-openmp` over a plain analysis run.
    let analyses: Vec<(&str, Analysis)> = program_sources()
        .iter()
        .map(|(name, src)| (*name, analyze_source(src, Options::full()).unwrap()))
        .collect();
    let mut g = c.benchmark_group("codegen");
    for (name, a) in &analyses {
        g.bench_with_input(BenchmarkId::new("transform", name), a, |b, a| {
            b.iter(|| transform(black_box(a)))
        });
    }
    g.bench_function("transform_suite", |b| {
        b.iter(|| {
            for (_, a) in &analyses {
                black_box(transform(black_box(a)));
            }
        })
    });
    g.finish();
}

fn bench_parallel_exec(c: &mut Criterion) {
    // Serial interpretation vs. the lowered ParallelPlan on the first
    // benchsuite kernel that plans a loop: the executor's overhead and
    // scaling are part of the emission contract.
    let (label, a, t) = kernels()
        .into_iter()
        .find_map(|k| {
            let a = analyze_source(k.source, Options::full()).unwrap();
            let t = transform(&a);
            let planned = t.loops.iter().any(|l| l.planned);
            planned.then_some((k.loop_label, a, t))
        })
        .expect("no benchsuite kernel plans a loop");
    let machine = Machine::new(&a.program, &a.sema);
    let mut g = c.benchmark_group("parallel_exec");
    g.bench_function(format!("serial/{label}"), |b| {
        b.iter(|| machine.run().unwrap())
    });
    for threads in [2usize, 4] {
        g.bench_function(format!("threads{threads}/{label}"), |b| {
            b.iter(|| machine.run_parallel(black_box(&t.plan), threads).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_transform, bench_parallel_exec
}
criterion_main!(benches);
