//! Micro-benchmarks of the GAR machinery: region set operations,
//! predicate simplification and loop expansion — the per-operation costs
//! that make Fig. 4's totals plausible.

use criterion::{criterion_group, criterion_main, Criterion};
use gar::{expand_gar, Gar, GarList, LoopCtx};
use pred::Pred;
use rand::{rngs::StdRng, Rng, SeedableRng};
use region::{Range, Region};
use std::hint::black_box;
use sym::Expr;

fn random_region(rng: &mut StdRng) -> Region {
    let lo: i64 = rng.random_range(-20..20);
    let len: i64 = rng.random_range(0..40);
    let symbolic = rng.random_bool(0.4);
    if symbolic {
        Region::from_ranges([Range::contiguous(
            Expr::var("a") + Expr::from(lo),
            Expr::var("a") + Expr::from(lo + len),
        )])
    } else {
        Region::from_ranges([Range::contiguous(Expr::from(lo), Expr::from(lo + len))])
    }
}

fn random_guard(rng: &mut StdRng) -> Pred {
    match rng.random_range(0..3) {
        0 => Pred::tru(),
        1 => Pred::le(Expr::var("a"), Expr::from(rng.random_range(-5i64..20))),
        _ => Pred::le(Expr::from(rng.random_range(-5i64..20)), Expr::var("a")),
    }
}

fn bench_gar_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let lists: Vec<GarList> = (0..64)
        .map(|_| {
            GarList::from_gars(
                (0..3).map(|_| Gar::new(random_guard(&mut rng), random_region(&mut rng))),
            )
        })
        .collect();

    let mut g = c.benchmark_group("gar_ops");
    g.bench_function("union", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let r = lists[k % 64].union(&lists[(k + 17) % 64]);
            k += 1;
            black_box(r)
        })
    });
    g.bench_function("intersect", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let r = lists[k % 64].intersect(&lists[(k + 31) % 64]);
            k += 1;
            black_box(r)
        })
    });
    g.bench_function("subtract", |b| {
        let mut k = 0usize;
        b.iter(|| {
            let r = lists[k % 64].subtract(&lists[(k + 13) % 64]);
            k += 1;
            black_box(r)
        })
    });
    g.finish();
}

fn bench_pred_ops(c: &mut Criterion) {
    let p = Pred::le(Expr::from(1), Expr::var("i"))
        .and(&Pred::le(Expr::var("i"), Expr::var("n")))
        .and(&Pred::le(Expr::var("n"), Expr::from(100)));
    let q = Pred::le(Expr::var("i"), Expr::from(102));
    let mut g = c.benchmark_group("pred_ops");
    g.bench_function("and_simplify", |b| {
        b.iter(|| black_box(p.and(black_box(&q))))
    });
    g.bench_function("implies_transitive", |b| {
        b.iter(|| black_box(p.implies(black_box(&q))))
    });
    g.bench_function("not_cnf", |b| b.iter(|| black_box(p.not())));
    g.finish();
}

fn bench_expansion(c: &mut Criterion) {
    // The §4.1 example: [c <= i+1 <= d, (1:i)] expanded over a <= i <= b.
    let guard = Pred::le(Expr::var("c"), Expr::var("i") + Expr::from(1))
        .and(&Pred::le(Expr::var("i") + Expr::from(1), Expr::var("d")));
    let gar = Gar::new(
        guard,
        Region::from_ranges([Range::contiguous(Expr::from(1), Expr::var("i"))]),
    );
    let ctx = LoopCtx::new("i", Expr::var("a"), Expr::var("b"));
    c.bench_function("expansion_paper_example", |b| {
        b.iter(|| black_box(expand_gar(black_box(&gar), black_box(&ctx))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_gar_ops, bench_pred_ops, bench_expansion
}
criterion_main!(benches);
